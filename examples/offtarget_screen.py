"""Guide-RNA off-target screening: the workload the paper's intro
motivates.

A CRISPR experiment wants guides that cut their intended target and
nothing else.  This example plants an on-target site plus several decoy
off-targets (with point mismatches and a DNA-bulge variant) in a
synthetic genome, screens three candidate guides genome-wide — including
the bulge-aware search the original tool ships as ``cas-offinder-bulge``
— and ranks the guides by their off-target risk.

Run with::

    python examples/offtarget_screen.py
"""

import numpy as np

from repro import Query, SearchRequest, search, synthetic_assembly
from repro.core.bulge import bulge_search
from repro.genome.assembly import Assembly, Chromosome

PAM_PATTERN = "NNNNNNNNNNNNNNNNNNNNNRG"
ON_TARGET = "GTCACCTCCAATGACTAGGG"           # the site we want to cut


def plant(sequence: np.ndarray, position: int, site: str) -> None:
    codes = np.frombuffer(site.encode(), dtype=np.uint8)
    sequence[position:position + codes.size] = codes


def build_genome() -> Assembly:
    base = synthetic_assembly("hg19", scale=0.0005, seed=11,
                              chromosomes=["chr19", "chr20", "chr21"])
    chr19 = base["chr19"].sequence.copy()
    chr20 = base["chr20"].sequence.copy()
    chr21 = base["chr21"].sequence.copy()
    # The on-target site (perfect match + AGG PAM) on chr19.
    plant(chr19, 5000, ON_TARGET + "AGG")
    # A 2-mismatch decoy on chr20.
    plant(chr20, 8000, "GTCACCTCCAATGACTAcct"[:18].upper() + "CT" + "TGG")
    # A close 1-mismatch decoy on chr21.
    plant(chr21, 3000, "GTCACCTCCAATGACTAGCG" + "AGG")
    # A DNA-bulge decoy: one extra base inside the protospacer.
    plant(chr21, 9000, "GTCACCTCCTAATGACTAGGG" + "AGG")
    return Assembly("screening-genome", [Chromosome("chr19", chr19),
                                         Chromosome("chr20", chr20),
                                         Chromosome("chr21", chr21)])


def main() -> None:
    genome = build_genome()
    guides = [ON_TARGET,
              "ACGGCGCCAGCGTCAGCGAC",      # unrelated candidate 1
              "GGCCGACCTGTCGCTGACGC"]      # unrelated candidate 2

    print("== mismatch-only screen (<= 3 mismatches) ==")
    request = SearchRequest(
        PAM_PATTERN, [Query(g + "NNN", 3) for g in guides])
    result = search(genome, request)
    per_guide = {g: [] for g in guides}
    for hit in result.sorted_hits():
        per_guide[hit.query[:20]].append(hit)
    for guide, hits in per_guide.items():
        exact = sum(1 for h in hits if h.mismatches == 0)
        close = sum(1 for h in hits if 0 < h.mismatches <= 2)
        print(f"  {guide}: {exact} exact site(s), {close} off-target(s) "
              f"within 2 mismatches, {len(hits)} total")
        for hit in hits[:4]:
            print(f"    {hit.to_tsv()}")

    print()
    print("== bulge-aware screen (1 DNA / 1 RNA bulge, <= 2 mm) ==")
    # The bulge wrapper takes the guide without PAM; its pattern's guide
    # region must equal the guide length exactly.
    bulge_pattern = "N" * len(ON_TARGET) + "RG"
    bulge_hits = bulge_search(genome, bulge_pattern, [ON_TARGET], 2,
                              dna_bulge=1, rna_bulge=1)
    for bulge_hit in bulge_hits:
        hit = bulge_hit.hit
        print(f"  {bulge_hit.bulge_type:3} size={bulge_hit.bulge_size} "
              f"{hit.chrom}:{hit.position} {hit.strand} "
              f"mm={hit.mismatches} {hit.site}")

    print()
    risky = {g: sum(1 for h in per_guide[g]
                    if 0 < h.mismatches <= 2) for g in guides}
    ranked = sorted(guides, key=lambda g: risky[g])
    print("guide ranking by close off-targets (fewest first):")
    for rank, guide in enumerate(ranked, 1):
        marker = " <- designed on-target" if guide == ON_TARGET else ""
        print(f"  {rank}. {guide} ({risky[guide]} close "
              f"off-targets){marker}")


if __name__ == "__main__":
    main()
