"""Quickstart: search a genome for Cas9 off-target sites.

Runs the paper's evaluation request (the Cas-OFFinder README example:
SpCas9 NRG PAM, three 20-nt guides, up to 4 mismatches) against a
synthetic hg19-profile assembly, then prints the hits and a workload
summary.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import example_request, search, synthetic_assembly
from repro.core.records import HEADER
from repro.genome.assembly import Assembly, Chromosome


def plant_known_sites(assembly, request):
    """Plant each query's on-target site plus a 2-mismatch decoy.

    A random genome of a few Mbp contains no 4-mismatch neighbours of a
    20-nt guide (the real hg19 does, via homology); planting known sites
    gives the quickstart visible output while keeping the search honest.
    """
    chroms = []
    for index, chrom in enumerate(assembly.chromosomes):
        seq = chrom.sequence.copy()
        if index < len(request.queries):
            guide = request.queries[index].sequence[:20]
            site = (guide + "AGG").encode()
            pos = len(seq) // 3
            seq[pos:pos + len(site)] = np.frombuffer(site, np.uint8)
            decoy = (guide[:5] + "TT" + guide[7:] + "TGG").encode()
            pos2 = 2 * len(seq) // 3
            seq[pos2:pos2 + len(decoy)] = np.frombuffer(decoy, np.uint8)
        chroms.append(Chromosome(chrom.name, seq))
    return Assembly(assembly.name + "+planted", chroms)


def main() -> None:
    # ~3 Mbp synthetic stand-in for hg19 (scale up for bigger runs).
    assembly = synthetic_assembly("hg19", scale=0.001, seed=7)
    assembly = plant_known_sites(assembly, example_request())
    print(f"assembly: {assembly.name}  "
          f"({assembly.total_length:,} bases, "
          f"{len(assembly.chromosomes)} chromosomes)")

    request = example_request()
    print(f"pattern:  {request.pattern}")
    for query in request.queries:
        print(f"query:    {query.sequence}  "
              f"(<= {query.max_mismatches} mismatches)")

    result = search(assembly, request)

    print()
    print(HEADER)
    for hit in result.sorted_hits():
        print(hit.to_tsv())

    workload = result.workload
    print()
    print(f"scanned {workload.positions_scanned:,} positions in "
          f"{workload.chunk_count} chunks")
    print(f"finder selected {workload.candidates:,} candidate sites "
          f"({workload.candidate_density:.1%} of positions)")
    print(f"{len(result.hits)} off-target sites at or under threshold")
    print(f"wall time: {result.wall_time_s:.2f}s "
          f"(api={result.api}, work-group size "
          f"{result.work_group_size})")


if __name__ == "__main__":
    main()
