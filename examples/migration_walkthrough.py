"""The OpenCL -> SYCL migration, step by step (Sections II.C and III).

Runs the *same* search kernel through both runtime front-ends, printing
each programming step as it happens.  This is Tables I-VI of the paper as
executable code: 13 explicit steps in OpenCL (platform/device/context/
queue/buffer/program/kernel/args/launch/read/events/release) collapse to
8 SYCL constructs (selector, queue, buffer, lambda, submit, accessor,
event, destructor).

Run with::

    python examples/migration_walkthrough.py
"""

import numpy as np

from repro.analysis.productivity import (count_opencl_steps,
                                         count_sycl_steps)
from repro.core.patterns import compile_pattern
from repro.kernels import opencl_kernels, sycl_kernels
from repro.runtime import opencl as ocl
from repro.runtime.sycl import (Buffer, LocalAccessor, NdRange, Queue,
                                Range, TARGET_CONSTANT, gpu_selector,
                                sycl_read, sycl_read_write, sycl_write)

GENOME = ("ACGTTAGGACGGTAGCCGTAGGTTAGCAGGAATTCCGGACGTAGGCATGGA"
          "CCTTAGGACGTACGAGGTTTAAGGCCAGGTACGTAAGGACGT")
PATTERN = "NNNNRG"
WG = 8


def run_opencl(chr_codes, pattern):
    """The original application's style: every step explicit."""
    plen = pattern.plen
    scan_len = chr_codes.size - plen + 1
    traced = []

    def step(name, call, *args, **kwargs):
        traced.append(name)
        print(f"  [{len(traced):2}] {name}")
        return call(*args, **kwargs)

    platforms = step("clGetPlatformIDs", ocl.clGetPlatformIDs)
    devices = step("clGetDeviceIDs", ocl.clGetDeviceIDs, platforms[0],
                   ocl.CL_DEVICE_TYPE_GPU)
    context = step("clCreateContext", ocl.clCreateContext, [devices[0]])
    queue = step("clCreateCommandQueue", ocl.clCreateCommandQueue,
                 context, devices[0])
    chr_mem = step("clCreateBuffer", ocl.clCreateBuffer, context,
                   ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
                   chr_codes.nbytes, chr_codes)
    pat_mem = ocl.clCreateBuffer(
        context, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
        pattern.comp.nbytes, pattern.comp)
    idx_mem = ocl.clCreateBuffer(
        context, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
        pattern.comp_index.nbytes, pattern.comp_index)
    loci_mem = ocl.clCreateBuffer(context, ocl.CL_MEM_WRITE_ONLY,
                                  scan_len * 4, dtype=np.uint32)
    flag_mem = ocl.clCreateBuffer(context, ocl.CL_MEM_WRITE_ONLY,
                                  scan_len, dtype=np.uint8)
    count_host = np.zeros(1, dtype=np.uint32)
    count_mem = ocl.clCreateBuffer(
        context, ocl.CL_MEM_READ_WRITE | ocl.CL_MEM_COPY_HOST_PTR, 4,
        count_host)
    program = step("clCreateProgram", ocl.clCreateProgram, context, {
        "finder": ocl.KernelDefinition(
            opencl_kernels.finder,
            [ocl.KernelParam("chr", "global", "r"),
             ocl.KernelParam("pat", "constant"),
             ocl.KernelParam("pat_index", "constant"),
             ocl.KernelParam("plen", "scalar"),
             ocl.KernelParam("scan_len", "scalar"),
             ocl.KernelParam("loci", "global", "w"),
             ocl.KernelParam("flag", "global", "w"),
             ocl.KernelParam("entrycount", "global", "rw"),
             ocl.KernelParam("l_pat", "local"),
             ocl.KernelParam("l_pat_index", "local")])})
    step("clBuildProgram", ocl.clBuildProgram, program, "-O3")
    kernel = step("clCreateKernel", ocl.clCreateKernel, program,
                  "finder")
    args = (chr_mem, pat_mem, idx_mem, plen, scan_len, loci_mem,
            flag_mem, count_mem, ocl.LocalArg(np.uint8, plen * 2),
            ocl.LocalArg(np.int32, plen * 2))
    for index, value in enumerate(args):
        ocl.clSetKernelArg(kernel, index, value)
    traced.append("clSetKernelArg")
    print(f"  [{len(traced):2}] clSetKernelArg (x{len(args)})")
    padded = (scan_len + WG - 1) // WG * WG
    event = step("clEnqueueNDRangeKernel", ocl.clEnqueueNDRangeKernel,
                 queue, kernel, padded, WG)
    step("clEnqueueReadBuffer", ocl.clEnqueueReadBuffer, queue,
         count_mem, count_host)
    n = int(count_host[0])
    loci_host = np.zeros(max(1, n), dtype=np.uint32)
    if n:
        ocl.clEnqueueReadBuffer(queue, loci_mem, loci_host,
                                size_bytes=n * 4)
    step("clWaitForEvents", ocl.clWaitForEvents, [event])
    traced.append("clReleaseMemObject")
    print(f"  [{len(traced):2}] clRelease* (buffers, kernel, program, "
          "queue, context)")
    for mem in (chr_mem, pat_mem, idx_mem, loci_mem, flag_mem,
                count_mem):
        ocl.clReleaseMemObject(mem)
    ocl.clReleaseKernel(kernel)
    ocl.clReleaseProgram(program)
    ocl.clReleaseCommandQueue(queue)
    ocl.clReleaseContext(context)
    print(f"  -> distinct Table I steps exercised: "
          f"{count_opencl_steps(traced)}")
    return sorted(loci_host[:n].tolist())


def run_sycl(chr_codes, pattern):
    """The migrated application's style (Section III)."""
    plen = pattern.plen
    scan_len = chr_codes.size - plen + 1
    padded = (scan_len + WG - 1) // WG * WG
    traced = []

    def step(construct, label):
        traced.append(construct)
        print(f"  [{len(traced):2}] {label}")

    step("device_selector", "device selector (gpu_selector)")
    queue = Queue(gpu_selector)
    step("queue", "queue")
    loci_host = np.zeros(scan_len, dtype=np.uint32)
    count_host = np.zeros(1, dtype=np.uint32)
    step("buffer", "buffers (chr, pat, pat_index, loci, flag, count)")
    with Buffer(chr_codes, name="chr", write_back=False) as chr_buf, \
            Buffer(pattern.comp, write_back=False) as pat_buf, \
            Buffer(pattern.comp_index, write_back=False) as idx_buf, \
            Buffer(loci_host) as loci_buf, \
            Buffer(count=scan_len, dtype=np.uint8) as flag_buf, \
            Buffer(count_host) as count_buf:

        def command_group(h):
            a_chr = chr_buf.get_access(h, sycl_read)
            a_pat = pat_buf.get_access(h, sycl_read, TARGET_CONSTANT)
            a_idx = idx_buf.get_access(h, sycl_read, TARGET_CONSTANT)
            a_loci = loci_buf.get_access(h, sycl_write)
            a_flag = flag_buf.get_access(h, sycl_write)
            a_count = count_buf.get_access(h, sycl_read_write)
            l_pat = LocalAccessor(np.uint8, plen * 2, h)
            l_idx = LocalAccessor(np.int32, plen * 2, h)
            h.parallel_for(NdRange(Range(padded), Range(WG)),
                           sycl_kernels.finder,
                           args=(a_chr, a_pat, a_idx, plen, scan_len,
                                 a_loci, a_flag, a_count, l_pat, l_idx))

        step("accessor", "accessors (device, constant, local)")
        step("parallel_for", "kernel lambda (parallel_for)")
        step("submit", "queue.submit(command group)")
        event = queue.submit(command_group)
        step("event_wait", "event.wait()")
        event.wait()
    step("buffer_close", "buffer destructors (implicit write-back)")
    n = int(count_host[0])
    print(f"  -> distinct collapsed steps exercised: "
          f"{count_sycl_steps(traced)}")
    return sorted(loci_host[:n].tolist())


def main() -> None:
    chr_codes = np.frombuffer(GENOME.encode(), dtype=np.uint8).copy()
    pattern = compile_pattern(PATTERN)

    print(f"genome ({chr_codes.size} bases): {GENOME}")
    print(f"pattern: {PATTERN}\n")
    print("OpenCL application (before migration):")
    ocl_sites = run_opencl(chr_codes, pattern)
    print("\nSYCL application (after migration):")
    sycl_sites = run_sycl(chr_codes, pattern)

    print(f"\ncandidate PAM sites (OpenCL): {ocl_sites}")
    print(f"candidate PAM sites (SYCL):   {sycl_sites}")
    assert ocl_sites == sycl_sites, "migration must preserve results"
    print("results identical — the migration preserved semantics.")


if __name__ == "__main__":
    main()
