"""The paper's performance study (Section IV), end to end.

Measures the real workload on scaled synthetic hg19/hg38 assemblies,
extrapolates it to full-genome size, and regenerates every evaluation
artifact: Table VIII (OpenCL vs SYCL elapsed), the hotspot profile,
Figure 2 (kernel time per optimization level), Table IX (optimized
application) and Table X (ISA-level resource usage).

Run with::

    python examples/performance_study.py [scale]

where ``scale`` (default 0.0005) is the fraction of real genome size to
synthesize — larger is higher fidelity, slower.
"""

import sys

from repro.analysis.profiling import profile_modeled
from repro.analysis.reporting import (render_fig2, render_table8,
                                      render_table9, render_table10)
from repro.core.config import example_request
from repro.core.pipeline import search
from repro.devices.codegen import analyze_comparer
from repro.devices.occupancy import reported_occupancy
from repro.devices.specs import MI60, PAPER_GPUS
from repro.devices.timing import model_elapsed
from repro.genome.synthetic import synthetic_assembly
from repro.kernels.variants import VARIANT_ORDER


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.0005
    request = example_request()

    print(f"measuring workloads at scale {scale} "
          f"(~{int(3.1e9 * scale):,} bases per assembly)...")
    profiles = {}
    for dataset in ("hg19", "hg38"):
        assembly = synthetic_assembly(dataset, scale=scale)
        result = search(assembly, request)
        profiles[dataset] = result.workload.scaled(1.0 / scale)
        print(f"  {dataset}: density "
              f"{result.workload.candidate_density:.3f}, "
              f"avg trips "
              f"{result.workload.queries[0].avg_trips_forward:.1f}, "
              f"measured in {result.wall_time_s:.1f}s")

    print()
    table8 = {}
    table9 = {}
    fig2 = {}
    for dataset, workload in profiles.items():
        for name, spec in PAPER_GPUS.items():
            ocl = model_elapsed(spec, workload, "opencl")
            sycl_series = [model_elapsed(spec, workload, "sycl",
                                         variant=v)
                           for v in VARIANT_ORDER]
            table8[(name, dataset)] = (ocl.elapsed_s,
                                       sycl_series[0].elapsed_s)
            table9[(name, dataset)] = (sycl_series[0].elapsed_s,
                                       sycl_series[3].elapsed_s)
            fig2[(name, dataset)] = [m.comparer_s for m in sycl_series]
    print(render_table8(table8))

    print()
    print("hotspot profile (modeled, SYCL base):")
    for name, spec in PAPER_GPUS.items():
        profile = profile_modeled(spec, profiles["hg19"])
        print(f"  {name:6}: comparer = "
              f"{profile.comparer_share_of_kernel:.1%} of kernel time, "
              f"{profile.comparer_share_of_elapsed:.1%} of elapsed "
              f"(paper: ~98 % and 50-80 %)")

    print()
    print(render_fig2(fig2))
    print()
    print(render_table9(table9))

    print()
    rows10 = {}
    for variant in VARIANT_ORDER:
        usage = analyze_comparer(variant)
        rows10[variant] = (usage.code_bytes, usage.vgprs, usage.sgprs,
                           reported_occupancy(usage.vgprs, MI60))
    print(render_table10(rows10))

    print()
    opt3 = model_elapsed(MI60, profiles["hg19"], "sycl", variant="opt3")
    opt4 = model_elapsed(MI60, profiles["hg19"], "sycl", variant="opt4")
    print("the opt4 story: caching LDS reads shrinks code to "
          f"{rows10['opt4'][0]} B but costs registers "
          f"({rows10['opt3'][1]} -> {rows10['opt4'][1]} VGPRs), dropping "
          f"physical waves {opt3.waves_per_simd} -> "
          f"{opt4.waves_per_simd} per SIMD; the latency-bound kernel "
          f"slows {opt3.comparer_s:.0f}s -> {opt4.comparer_s:.0f}s "
          f"({opt4.comparer_s / opt3.comparer_s:.2f}x) — the paper's "
          "register/occupancy trade-off.")


if __name__ == "__main__":
    main()
