#!/usr/bin/env bash
# One-command verification: the tier-1 suite, then an explicit pass over
# the fault-marked failover/recovery tests, then the query-service tests
# with a 5-second load-generator smoke. The fault and service tests also
# run as part of the default suite; the extra passes keep them green even
# when developers filter the first run (e.g. `-m "not slow"` via
# PYTEST_ADDOPTS).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src
# Whatever happens above, never leave orphaned repro-shm-* segments in
# /dev/shm (a killed shard worker or interrupted smoke can strand them).
trap 'python -m repro.service.shards --cleanup' EXIT
python -m pytest -x -q "$@"
python -m pytest -x -q -m fault "$@"
python -m pytest -x -q tests/test_service.py tests/test_packed_service.py \
    tests/test_shard_rings.py tests/test_router.py tests/test_design.py \
    tests/test_variants.py "$@"
python -m repro.service.client --smoke --clients 4 --duration 5 --packed
python -m repro.service.client --smoke --clients 4 --duration 5 --no-packed
# Sharded smokes: the result-ring hot path, then a 4-record ring that
# forces the overflow (pickle) fallback on every batch.
python -m repro.service.client --smoke --clients 4 --duration 5 --packed \
    --shards 2 --adaptive
python -m repro.service.client --smoke --clients 4 --duration 5 --packed \
    --shards 2 --ring-records 4
# Guide-design smoke: a served `design` request must be byte-identical
# to the in-process reference, with every candidate query covered by
# exactly one batched comparer pass (no per-guide rescans).
python -m repro.design --smoke
# Variant smoke: one comparer batch per variant search, served and
# 2-shard responses byte-identical to in-process, a TOML enzyme config
# served end to end; its sharded leg runs under the shm leak guard.
python -m repro.variants --smoke
# Routing-tier smoke: 3 subprocess backends behind a router, one
# SIGKILLed mid-load, one zero-downtime rollover, SIGTERM drain of the
# survivors; asserts byte-identity against a single-process server and
# a routed `design` request checked before and after the rollover.
python -m repro.service.router --smoke --duration 6
# Every smoke above closed its tier; any surviving segment is a leak
# and fails verification before the trap's cleanup can mask it.
python -m repro.service.shards --guard
