#!/usr/bin/env bash
# One-command verification: the tier-1 suite, then an explicit pass over
# the fault-marked failover/recovery tests. The fault tests also run as
# part of the default suite; the second pass keeps them green even when
# developers filter the first run (e.g. `-m "not slow"` via PYTEST_ADDOPTS).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src
python -m pytest -x -q "$@"
python -m pytest -x -q -m fault "$@"
