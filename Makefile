PYTHON ?= python

.PHONY: test fault service router design variants verify

# Tier-1 suite (includes the fault-marked tests).
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Only the fault-injection / failover equivalence tests.
fault:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m fault

# Query-service tests plus load-generator smokes: packed and byte
# comparer modes, 2-shard worker-process runs over the result rings
# (normal and forced-overflow), then a hard failure on any leaked shm
# segment before the cleanup sweep.
service:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_service.py \
		tests/test_packed_service.py tests/test_shard_rings.py
	PYTHONPATH=src $(PYTHON) -m repro.service.client --smoke \
		--clients 4 --duration 5 --packed
	PYTHONPATH=src $(PYTHON) -m repro.service.client --smoke \
		--clients 4 --duration 5 --no-packed
	PYTHONPATH=src $(PYTHON) -m repro.service.client --smoke \
		--clients 4 --duration 5 --packed --shards 2 --adaptive
	PYTHONPATH=src $(PYTHON) -m repro.service.client --smoke \
		--clients 4 --duration 5 --packed --shards 2 --ring-records 4
	PYTHONPATH=src $(PYTHON) -m repro.service.shards --guard
	PYTHONPATH=src $(PYTHON) -m repro.service.shards --cleanup

# Routing-tier tests plus the fleet smoke: 3 subprocess backends, one
# induced SIGKILL, one zero-downtime rollover, graceful SIGTERM drain;
# byte-identity against a single-process server and zero leaked
# processes/ready files/shm segments are asserted throughout.
router:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_router.py
	PYTHONPATH=src $(PYTHON) -m repro.service.router --smoke --duration 6
	PYTHONPATH=src $(PYTHON) -m repro.service.shards --guard

# Guide-design tests plus the design smoke: in-process reference vs a
# served design request, byte-identity and the single-scan comparer
# proof (one batch covering every candidate query) asserted.
design:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_design.py \
		tests/test_scoring.py
	PYTHONPATH=src $(PYTHON) -m repro.design --smoke

# Variant-aware search tests plus the variants smoke: single-batch
# comparer accounting, served/sharded byte-identity against the
# in-process payload, and a TOML enzyme config served end to end.
variants:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_variants.py
	PYTHONPATH=src $(PYTHON) -m repro.variants --smoke
	PYTHONPATH=src $(PYTHON) -m repro.service.shards --guard

# Tier-1 suite plus explicit fault and service passes, one command.
verify:
	./scripts/verify.sh
