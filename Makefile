PYTHON ?= python

.PHONY: test fault verify

# Tier-1 suite (includes the fault-marked tests).
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Only the fault-injection / failover equivalence tests.
fault:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m fault

# Tier-1 suite plus an explicit fault pass, one command.
verify:
	./scripts/verify.sh
