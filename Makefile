PYTHON ?= python

.PHONY: test fault service verify

# Tier-1 suite (includes the fault-marked tests).
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Only the fault-injection / failover equivalence tests.
fault:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q -m fault

# Query-service tests plus a 5-second load-generator smoke run.
service:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/test_service.py
	PYTHONPATH=src $(PYTHON) -m repro.service.client --smoke \
		--clients 4 --duration 5

# Tier-1 suite plus explicit fault and service passes, one command.
verify:
	./scripts/verify.sh
