"""Pseudo-ISA for the GCN/CDNA-like compiler model.

Table X of the paper explains the optimization results "at the level of
instruction-set architecture": total instruction bytes, scalar and vector
general-purpose register counts, and occupancy.  This module defines the
instruction stream representation those analyses run over.

The encoding model follows GCN/CDNA conventions: most scalar and vector
ALU operations encode in 4 bytes; memory operations (SMEM/VMEM/LDS),
operations with 32-bit literals, and long-format VALU ops encode in 8
bytes.  Virtual registers come in scalar (uniform per wave) and vector
(per lane) classes; the register allocator
(:mod:`repro.devices.regalloc`) assigns physical registers per class.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class RegClass(enum.Enum):
    SGPR = "s"
    VGPR = "v"


@dataclass(frozen=True)
class VirtualReg:
    """A virtual register; ``width`` counts 32-bit physical registers
    (e.g. a 64-bit address pair has width 2)."""

    id: int
    cls: RegClass
    width: int = 1
    name: str = ""

    def __repr__(self) -> str:
        return f"{self.cls.value}{self.id}" + (f":{self.name}"
                                               if self.name else "")


class Opcode(enum.Enum):
    """Instruction categories, with their encoded size in bytes."""

    SALU = ("salu", 4)            # scalar ALU
    SALU_LIT = ("salu_lit", 8)    # scalar ALU with 32-bit literal
    VALU = ("valu", 4)            # vector ALU
    VALU_LIT = ("valu_lit", 8)    # vector ALU with literal / VOP3
    SMEM = ("smem", 8)            # scalar memory (kernel args, constants)
    VMEM_LOAD = ("vmem_load", 8)  # vector global load
    VMEM_STORE = ("vmem_store", 8)
    VMEM_ATOMIC = ("vmem_atomic", 8)
    LDS_READ = ("lds_read", 8)
    LDS_WRITE = ("lds_write", 8)
    BRANCH = ("branch", 4)
    BARRIER = ("barrier", 4)
    WAITCNT = ("waitcnt", 4)
    END = ("end", 4)

    def __init__(self, label: str, size: int):
        self.label = label
        self.size = size


#: Issue cost in cycles per wavefront for each opcode category (wave64
#: VALU ops issue over 4 cycles on 16-lane SIMDs; scalar ops 1 cycle).
ISSUE_CYCLES: Dict[Opcode, float] = {
    Opcode.SALU: 1, Opcode.SALU_LIT: 1,
    Opcode.VALU: 4, Opcode.VALU_LIT: 4,
    Opcode.SMEM: 1,
    Opcode.VMEM_LOAD: 4, Opcode.VMEM_STORE: 4, Opcode.VMEM_ATOMIC: 4,
    Opcode.LDS_READ: 4, Opcode.LDS_WRITE: 4,
    Opcode.BRANCH: 1, Opcode.BARRIER: 1, Opcode.WAITCNT: 1,
    Opcode.END: 1,
}


@dataclass
class Instruction:
    """One pseudo-ISA instruction."""

    opcode: Opcode
    defs: Tuple[VirtualReg, ...] = ()
    uses: Tuple[VirtualReg, ...] = ()
    comment: str = ""

    @property
    def size(self) -> int:
        return self.opcode.size


class Program:
    """An instruction stream with virtual-register bookkeeping."""

    def __init__(self, name: str):
        self.name = name
        self.instructions: List[Instruction] = []
        self._vreg_ids = itertools.count(0)
        #: Registers pinned live for the whole program (kernel arguments
        #: and values the compiler keeps resident across the body).
        self.pinned: List[VirtualReg] = []
        #: Shared local memory bytes the kernel statically declares.
        self.lds_bytes: int = 0

    # -- construction -----------------------------------------------------

    def vreg(self, cls: RegClass, width: int = 1,
             name: str = "") -> VirtualReg:
        return VirtualReg(next(self._vreg_ids), cls, width, name)

    def sreg(self, width: int = 1, name: str = "") -> VirtualReg:
        return self.vreg(RegClass.SGPR, width, name)

    def vgpr(self, width: int = 1, name: str = "") -> VirtualReg:
        return self.vreg(RegClass.VGPR, width, name)

    def emit(self, opcode: Opcode, defs: Sequence[VirtualReg] = (),
             uses: Sequence[VirtualReg] = (), comment: str = "",
             count: int = 1) -> None:
        for _ in range(count):
            self.instructions.append(
                Instruction(opcode, tuple(defs), tuple(uses), comment))

    def pin(self, reg: VirtualReg) -> VirtualReg:
        self.pinned.append(reg)
        return reg

    # -- analyses ----------------------------------------------------------

    @property
    def code_bytes(self) -> int:
        """Total encoded size in bytes (Table X's "Code length")."""
        return sum(inst.size for inst in self.instructions)

    def live_ranges(self) -> Dict[VirtualReg, Tuple[int, int]]:
        """[first occurrence, last occurrence] per virtual register.

        Pinned registers extend over the whole program.
        """
        ranges: Dict[VirtualReg, Tuple[int, int]] = {}
        for index, inst in enumerate(self.instructions):
            for reg in (*inst.defs, *inst.uses):
                if reg in ranges:
                    first, _ = ranges[reg]
                    ranges[reg] = (first, index)
                else:
                    ranges[reg] = (index, index)
        end = max(len(self.instructions) - 1, 0)
        for reg in self.pinned:
            first = ranges.get(reg, (0, 0))[0] if reg in ranges else 0
            ranges[reg] = (0, end)
        return ranges

    def instruction_mix(self) -> Dict[str, int]:
        mix: Dict[str, int] = {}
        for inst in self.instructions:
            mix[inst.opcode.label] = mix.get(inst.opcode.label, 0) + 1
        return mix

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return (f"Program({self.name!r}, {len(self.instructions)} insts, "
                f"{self.code_bytes} B)")
