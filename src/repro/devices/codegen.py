"""Compiler model: lower kernel variants to pseudo-ISA streams.

This module reproduces the *mechanisms* behind Table X.  Each comparer
variant is lowered to a GCN/CDNA-like instruction stream whose shape
follows what the real compiler emits for the real kernels:

* **aliasing (base)** — without ``__restrict`` the compiler must assume
  the output stores may alias the inputs, so it re-emits loads (and the
  ``s_waitcnt`` instructions guarding them) after every store cluster;
  opt1 deletes those.
* **repeated global reads (base/opt1)** — ``loci[i]``/``flag[i]`` are
  re-loaded at each use site, each with its own address arithmetic;
  opt2 hoists them into registers.
* **serial staging (base..opt2)** — the work-item-0 fetch loop over
  ``2 * plen`` elements has a compile-time trip count, so the compiler
  unrolls it pairwise into a long prologue whose in-flight loads also
  keep destination registers live across the barrier; opt3's cooperative
  loop has a runtime trip count, is not unrolled, and drops both the
  code and the overlap registers.
* **register-cached LDS reads (opt4)** — caching the pattern character
  per comparison collapses the chain's residual LDS reads to one per
  iteration, shrinking code by ~17 % but keeping the cached values and
  or-tree partials live across the software-pipelined unrolled body —
  the VGPR jump that costs a wave of occupancy.

The emission constants below were calibrated once against Table X's
published numbers for the 23-base evaluation pattern and then frozen;
tests assert the *trends* (monotone code shrink, the register cliff at
opt3, the jump at opt4) plus a ±15 % envelope, not bit-exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from .isa import Opcode, Program, RegClass

#: Paper order of the comparer variants (duplicated from
#: :mod:`repro.kernels.variants`, which is imported lazily inside the
#: compile entry points to avoid a package import cycle).
VARIANT_ORDER = ["base", "opt1", "opt2", "opt3", "opt4"]

#: Comparisons in the mismatch chain (10 ambiguity codes + 4 concrete);
#: each compares against a literal character, so it encodes in 8 bytes.
CHAIN_COMPARISONS = 14

#: Compiler unroll factor for the compare loop (the gathers of all
#: unrolled iterations are software-pipelined ahead of the chains).
COMPARE_UNROLL = 8

#: Without manual caching the compiler partially CSEs the chain's
#: ``l_comp[k]`` reads down to this many LDS reads per iteration; the
#: opt4 source change gets it to exactly one.
UNCACHED_LDS_READS_PER_ITER = 5

#: Elements per unrolled copy of the serial staging loop (the compiler
#: unrolls the compile-time-constant 2*plen trip count pairwise).
SERIAL_STAGING_PAIR = 2

#: Redundant load+waitcnt pairs the compiler emits per strand without
#: __restrict.
NO_RESTRICT_RELOAD_PAIRS = 8

#: VGPRs kept live across the barrier by the unrolled serial staging's
#: in-flight loads (base..opt2 only).
SERIAL_STAGING_OVERLAP_VGPRS = 9

#: Kernel-argument SGPR pairs the compiler keeps resident for the whole
#: kernel when the serial staging loop needs them (base..opt2); with the
#: cooperative fetch it sinks all but the two base descriptors.
ARG_SGPR_PAIRS_RESIDENT = 8
ARG_SGPR_PAIRS_RESIDENT_COOP = 2

#: Buffer addresses the kernel holds as flat VGPR pairs, plus persistent
#: per-item scalars (i, li, strand counters) — the baseline pressure.
RESIDENT_VGPR_ADDR_PAIRS = 15
PERSISTENT_VGPR_SCALARS = 3

#: Or-tree partial results kept live per unrolled iteration by opt4's
#: cached chain.
OPT4_PARTIALS_PER_ITER = 4


def _emit_prologue(prog: Program, variant) -> Dict[str, object]:
    """Kernel-argument loads, id computation, resident flat addresses."""
    resident_pairs = (ARG_SGPR_PAIRS_RESIDENT_COOP
                      if variant.cooperative_fetch
                      else ARG_SGPR_PAIRS_RESIDENT)
    for index in range(resident_pairs):
        pair = prog.sreg(width=2, name=f"arg{index}")
        prog.emit(Opcode.SMEM, defs=[pair], comment="load kernel arg pair")
        prog.pin(pair)
    # Non-resident argument pairs: loaded, moved into flat VGPR
    # addresses, then dead.
    for index in range(10 - resident_pairs):
        pair = prog.sreg(width=2, name=f"targ{index}")
        prog.emit(Opcode.SMEM, defs=[pair], comment="transient arg pair")
    scalars = prog.sreg(width=2, name="scalars")
    prog.emit(Opcode.SMEM, defs=[scalars], comment="plen/threshold/cnt")
    # Flat addresses for the buffers the body dereferences per item.
    for index in range(RESIDENT_VGPR_ADDR_PAIRS):
        addr = prog.vgpr(width=2, name=f"flat{index}")
        prog.emit(Opcode.VALU, defs=[addr], comment="materialize flat addr")
        prog.pin(addr)
    for index in range(PERSISTENT_VGPR_SCALARS):
        reg = prog.vgpr(name=f"persist{index}")
        prog.emit(Opcode.VALU, defs=[reg], comment="persistent scalar")
        prog.pin(reg)
    i_reg = prog.pin(prog.vgpr(name="i"))
    li_reg = prog.pin(prog.vgpr(name="li"))
    tid = prog.vgpr(name="tid")
    prog.emit(Opcode.VALU, defs=[tid], comment="workitem id")
    prog.emit(Opcode.SALU, uses=[scalars], comment="group base")
    prog.emit(Opcode.VALU, defs=[i_reg], uses=[tid], comment="global id")
    prog.emit(Opcode.VALU, defs=[li_reg], uses=[i_reg], comment="local id")
    return {"i": i_reg, "li": li_reg, "scalars": scalars}


def _emit_staging(prog: Program, variant, plen: int) -> List:
    """The local-memory fetch: serial-unrolled or cooperative."""
    if variant.cooperative_fetch:
        # Cooperative strided loop; runtime trip count, not unrolled.
        stride = prog.vgpr(name="stride")
        prog.emit(Opcode.VALU, defs=[stride], comment="li stride init")
        addr = prog.vgpr(width=2, name="coop_addr")
        prog.emit(Opcode.VALU_LIT, defs=[addr], comment="coop addr")
        value = prog.vgpr(name="coop_val")
        prog.emit(Opcode.VMEM_LOAD, defs=[value], uses=[addr],
                  comment="load pat char")
        prog.emit(Opcode.LDS_WRITE, uses=[value], comment="store l_comp")
        prog.emit(Opcode.VMEM_LOAD, defs=[value], uses=[addr],
                  comment="load pat index")
        prog.emit(Opcode.LDS_WRITE, uses=[value], comment="store l_index")
        prog.emit(Opcode.VALU, defs=[stride], uses=[stride],
                  comment="advance")
        prog.emit(Opcode.SALU, comment="loop bound check")
        prog.emit(Opcode.BRANCH, comment="coop loop backedge")
        prog.emit(Opcode.WAITCNT, comment="drain staging")
        overlap_regs: List = []
    else:
        # Work-item 0 guard, then the pairwise-unrolled serial copy.
        prog.emit(Opcode.VALU, comment="cmp li==0")
        prog.emit(Opcode.BRANCH, comment="skip staging")
        copies = (2 * plen) // SERIAL_STAGING_PAIR
        for block in range(copies):
            for stream in ("char", "index"):
                value = prog.vgpr(name=f"stage{block}_{stream}")
                prog.emit(Opcode.VMEM_LOAD, defs=[value],
                          comment=f"serial staged {stream} load")
                prog.emit(Opcode.LDS_WRITE, uses=[value],
                          comment=f"serial staged {stream} store")
                prog.emit(Opcode.VALU, comment="advance address")
        prog.emit(Opcode.WAITCNT, comment="drain staging")
        # In-flight destination registers stay allocated until a final
        # waitcnt the scheduler sinks past the barrier.
        # The hoisted flag/loci loads of opt2 insert an early waitcnt
        # that drains part of the staging traffic, so fewer destination
        # registers survive past the barrier there.
        overlap_count = SERIAL_STAGING_OVERLAP_VGPRS
        if variant.cache_global_reads:
            overlap_count -= 2
        overlap_regs = []
        for index in range(overlap_count):
            reg = prog.vgpr(name=f"overlap{index}")
            prog.emit(Opcode.VALU, defs=[reg],
                      comment="in-flight staging value")
            overlap_regs.append(reg)
    prog.emit(Opcode.BARRIER, comment="local fence")
    return overlap_regs


def _emit_flag_test(prog: Program, variant,
                    ctx: Dict[str, object]) -> None:
    i_reg = ctx["i"]
    if variant.cache_global_reads:
        if "flag" not in ctx:
            flag_reg = prog.pin(prog.vgpr(name="flag"))
            addr = prog.vgpr(width=2, name="flag_addr")
            prog.emit(Opcode.VALU_LIT, defs=[addr], uses=[i_reg])
            prog.emit(Opcode.VMEM_LOAD, defs=[flag_reg], uses=[addr],
                      comment="flag[i] (hoisted)")
            prog.emit(Opcode.WAITCNT)
            base_reg = prog.pin(prog.vgpr(name="locibase"))
            prog.emit(Opcode.VALU_LIT, defs=[addr], uses=[i_reg])
            prog.emit(Opcode.VMEM_LOAD, defs=[base_reg], uses=[addr],
                      comment="loci[i] (hoisted)")
            prog.emit(Opcode.WAITCNT)
            ctx["flag"] = flag_reg
            ctx["base"] = base_reg
        prog.emit(Opcode.VALU, uses=[ctx["flag"]], comment="flag cmp")
        prog.emit(Opcode.VALU, uses=[ctx["flag"]], comment="flag cmp 2")
    else:
        for _ in range(2):  # flag re-loaded for each comparison value
            addr = prog.vgpr(width=2, name="flag_addr")
            value = prog.vgpr(name="flag_val")
            prog.emit(Opcode.VALU_LIT, defs=[addr], uses=[i_reg])
            prog.emit(Opcode.VMEM_LOAD, defs=[value], uses=[addr],
                      comment="flag[i]")
            prog.emit(Opcode.WAITCNT)
            prog.emit(Opcode.VALU, uses=[value], comment="flag cmp")
    prog.emit(Opcode.BRANCH, comment="skip strand")


def _emit_compare_loop(prog: Program, variant,
                       ctx: Dict[str, object], strand: str):
    """The software-pipelined unrolled compare loop for one strand."""
    i_reg = ctx["i"]
    counter = prog.vgpr(name=f"mm_{strand}")
    prog.emit(Opcode.VALU, defs=[counter], comment="mm_count = 0")
    # Issue phase: indexes, addresses and gathers for every unrolled
    # iteration go out back-to-back; their registers stay live until the
    # consume phase reads them.
    pipelined = []
    for unrolled in range(COMPARE_UNROLL):
        idx = prog.vgpr(name=f"k{strand}{unrolled}")
        prog.emit(Opcode.LDS_READ, defs=[idx], comment="l_comp_index[j]")
        if variant.cache_global_reads:
            site_addr = prog.vgpr(width=2, name=f"addr{strand}{unrolled}")
            prog.emit(Opcode.VALU, defs=[site_addr],
                      uses=[ctx["base"], idx], comment="chr + base + k")
        else:
            loci_addr = prog.vgpr(width=2, name=f"la{strand}{unrolled}")
            loci_val = prog.vgpr(name=f"lv{strand}{unrolled}")
            prog.emit(Opcode.VALU_LIT, defs=[loci_addr], uses=[i_reg])
            prog.emit(Opcode.VMEM_LOAD, defs=[loci_val],
                      uses=[loci_addr], comment="loci[i] (re-read)")
            prog.emit(Opcode.WAITCNT)
            site_addr = prog.vgpr(width=2, name=f"addr{strand}{unrolled}")
            prog.emit(Opcode.VALU, defs=[site_addr],
                      uses=[loci_val, idx], comment="chr + loci[i] + k")
        genome = prog.vgpr(name=f"g{strand}{unrolled}")
        prog.emit(Opcode.VMEM_LOAD, defs=[genome], uses=[site_addr],
                  comment="chr gather")
        pattern = None
        if variant.cache_lds_reads:
            pattern = prog.vgpr(name=f"p{strand}{unrolled}")
            prog.emit(Opcode.LDS_READ, defs=[pattern],
                      comment="l_comp[k] (cached, pipelined)")
        pipelined.append((idx, genome, pattern))
    prog.emit(Opcode.WAITCNT, comment="drain gathers")
    # Consume phase: terminator test + mismatch chain per iteration.
    cached_live = []
    for unrolled, (idx, genome, pattern) in enumerate(pipelined):
        prog.emit(Opcode.VALU, uses=[idx], comment="cmp k==-1")
        prog.emit(Opcode.BRANCH, comment="index terminator")
        if variant.cache_lds_reads:
            partials = []
            for cmp_index in range(CHAIN_COMPARISONS):
                prog.emit(Opcode.VALU_LIT, uses=[pattern, genome],
                          comment=f"chain cmp {cmp_index}")
                if (len(partials) < OPT4_PARTIALS_PER_ITER
                        and cmp_index % 3 == 0):
                    partial = prog.vgpr(
                        name=f"acc{strand}{unrolled}_{cmp_index}")
                    prog.emit(Opcode.VALU, defs=[partial],
                              comment="or-tree partial")
                    partials.append(partial)
                else:
                    prog.emit(Opcode.VALU, comment="or accumulate")
            cached_live.extend([pattern, *partials])
        else:
            reads_left = UNCACHED_LDS_READS_PER_ITER
            for cmp_index in range(CHAIN_COMPARISONS):
                if reads_left and cmp_index % (
                        CHAIN_COMPARISONS
                        // UNCACHED_LDS_READS_PER_ITER) == 0:
                    pattern_tmp = prog.vgpr(
                        name=f"p{strand}{unrolled}_{cmp_index}")
                    prog.emit(Opcode.LDS_READ, defs=[pattern_tmp],
                              comment="l_comp[k] (re-read)")
                    reads_left -= 1
                    last_pattern = pattern_tmp
                prog.emit(Opcode.VALU_LIT, uses=[last_pattern, genome],
                          comment=f"chain cmp {cmp_index}")
                prog.emit(Opcode.VALU, comment="or accumulate")
        prog.emit(Opcode.VALU, defs=[counter], uses=[counter],
                  comment="mm_count++")
        prog.emit(Opcode.VALU_LIT, uses=[counter],
                  comment="cmp threshold")
        prog.emit(Opcode.BRANCH, comment="early exit")
    if cached_live:
        prog.emit(Opcode.VALU, uses=cached_live,
                  comment="reduce or-tree")
    prog.emit(Opcode.SALU, comment="loop bound")
    prog.emit(Opcode.BRANCH, comment="loop backedge")
    return counter


def _emit_epilogue(prog: Program, variant,
                   ctx: Dict[str, object], counter, strand: str) -> None:
    prog.emit(Opcode.VALU_LIT, uses=[counter], comment="mm <= threshold")
    prog.emit(Opcode.BRANCH, comment="skip store")
    slot = prog.vgpr(name=f"slot_{strand}")
    prog.emit(Opcode.VMEM_ATOMIC, defs=[slot], comment="atomic_inc")
    prog.emit(Opcode.WAITCNT)
    for target in ("mm_count", "direction", "mm_loci"):
        addr = prog.vgpr(width=2, name=f"st_{target}")
        prog.emit(Opcode.VALU, defs=[addr], uses=[slot],
                  comment=f"{target} address")
        if variant.cache_global_reads and target == "mm_loci":
            prog.emit(Opcode.VMEM_STORE, uses=[addr, ctx["base"]],
                      comment=f"store {target}")
        else:
            prog.emit(Opcode.VMEM_STORE, uses=[addr],
                      comment=f"store {target}")
    if not variant.restrict:
        # Stores may alias the inputs: re-load and re-synchronize.
        for _ in range(NO_RESTRICT_RELOAD_PAIRS):
            value = prog.vgpr(name="reload")
            prog.emit(Opcode.VMEM_LOAD, defs=[value],
                      comment="aliasing re-load")
            prog.emit(Opcode.WAITCNT, comment="aliasing drain")


@lru_cache(maxsize=None)
def compile_comparer(variant_name: str, plen: int = 23) -> Program:
    """Lower one comparer variant to a pseudo-ISA program."""
    from ..kernels.variants import get_variant
    variant = get_variant(variant_name)
    prog = Program(f"comparer_{variant_name}")
    prog.lds_bytes = 2 * plen * (1 + 4)  # l_comp + l_comp_index
    ctx = _emit_prologue(prog, variant)
    overlap = _emit_staging(prog, variant, plen)
    prog.emit(Opcode.VALU, uses=[ctx["i"]], comment="i < locicnts")
    prog.emit(Opcode.BRANCH, comment="range guard")
    for strand in ("+", "-"):
        _emit_flag_test(prog, variant, ctx)
        counter = _emit_compare_loop(prog, variant, ctx, strand)
        _emit_epilogue(prog, variant, ctx, counter, strand)
        if overlap and strand == "+":
            prog.emit(Opcode.WAITCNT, uses=tuple(overlap),
                      comment="late staging drain")
    prog.emit(Opcode.END, comment="s_endpgm")
    return prog


@lru_cache(maxsize=None)
def compile_finder(plen: int = 23) -> Program:
    """Lower the finder kernel (single variant) for completeness."""
    from ..kernels.variants import get_variant
    prog = Program("finder")
    prog.lds_bytes = 2 * plen * (1 + 4)
    base = get_variant("base")
    ctx = _emit_prologue(prog, base)
    overlap = _emit_staging(prog, base, plen)
    prog.emit(Opcode.VALU, uses=[ctx["i"]], comment="i < scan_len")
    prog.emit(Opcode.BRANCH, comment="range guard")
    for strand in ("+", "-"):
        for unrolled in range(2):
            idx = prog.vgpr(name=f"k{strand}{unrolled}")
            prog.emit(Opcode.LDS_READ, defs=[idx])
            prog.emit(Opcode.VALU, uses=[idx], comment="cmp -1")
            prog.emit(Opcode.BRANCH)
            genome = prog.vgpr(name=f"g{strand}{unrolled}")
            prog.emit(Opcode.VMEM_LOAD, defs=[genome],
                      comment="chr gather")
            prog.emit(Opcode.WAITCNT)
            pattern = prog.vgpr(name=f"p{strand}{unrolled}")
            prog.emit(Opcode.LDS_READ, defs=[pattern])
            prog.emit(Opcode.VALU, uses=[pattern, genome],
                      comment="mask test")
            prog.emit(Opcode.BRANCH, comment="fail strand")
        prog.emit(Opcode.BRANCH, comment="loop backedge")
    prog.emit(Opcode.VMEM_ATOMIC, comment="atomic_inc")
    prog.emit(Opcode.WAITCNT)
    prog.emit(Opcode.VMEM_STORE, comment="store locus", count=2)
    prog.emit(Opcode.END)
    return prog


@dataclass(frozen=True)
class ResourceUsage:
    """Table X's per-variant row: code bytes, registers, occupancy."""

    variant: str
    code_bytes: int
    vgprs: int
    sgprs: int
    lds_bytes: int


@lru_cache(maxsize=None)
def analyze_comparer(variant_name: str, plen: int = 23) -> ResourceUsage:
    """Compile + allocate one variant (codegen → regalloc)."""
    from .regalloc import allocate
    program = compile_comparer(variant_name, plen)
    usage = allocate(program)
    return ResourceUsage(variant=variant_name,
                         code_bytes=program.code_bytes,
                         vgprs=usage.vgprs, sgprs=usage.sgprs,
                         lds_bytes=program.lds_bytes)
