"""Device models: specs (Table VII), pseudo-ISA compiler model
(Table X) and the analytic timing model (Tables VIII/IX, Figure 2)."""

from .codegen import (ResourceUsage, analyze_comparer, compile_comparer,
                      compile_finder)
from .isa import Instruction, Opcode, Program, RegClass, VirtualReg
from .occupancy import (OccupancyReport, occupancy_report,
                        reported_occupancy, waves_per_simd)
from .regalloc import RegisterUsage, allocate, peak_pressure
from .specs import (ALL_DEVICES, DeviceSpec, HOST_CPU, MI60, MI100,
                    PAPER_GPUS, RADEON_VII, TABLE7_HEADER,
                    get_device_spec, table7_rows)
from .timing import (DEFAULT_CALIBRATION, ElapsedTimeModel,
                     SYCL_WORK_GROUP_SIZE, TimingCalibration,
                     model_comparer_cycles, model_elapsed,
                     model_finder_cycles)
from .wavesim import (SimConfig, SimResult, simulate, simulate_variant,
                      throughput_cycles_per_wave)

__all__ = [
    "ALL_DEVICES", "DEFAULT_CALIBRATION", "DeviceSpec",
    "ElapsedTimeModel", "HOST_CPU", "Instruction", "MI100", "MI60",
    "OccupancyReport", "Opcode", "PAPER_GPUS", "Program", "RADEON_VII",
    "RegClass", "RegisterUsage", "ResourceUsage",
    "SYCL_WORK_GROUP_SIZE", "TABLE7_HEADER", "TimingCalibration",
    "VirtualReg", "allocate", "analyze_comparer", "compile_comparer",
    "compile_finder", "get_device_spec", "model_comparer_cycles",
    "model_elapsed", "model_finder_cycles", "occupancy_report",
    "peak_pressure", "reported_occupancy", "table7_rows",
    "waves_per_simd",
    "SimConfig", "SimResult", "simulate", "simulate_variant",
    "throughput_cycles_per_wave",
]
