"""Register allocation over pseudo-ISA programs.

A linear-scan allocator computes, per register class, the peak number of
simultaneously live 32-bit registers — the quantity the hardware
allocates per wave and the one Table X reports.  Reported counts are the
exact peak demand plus the ABI-reserved registers (wave scratch
descriptors, VCC, workgroup/workitem ids), matching how rocprof reports
them; hardware allocation granules only enter the occupancy model
(:mod:`repro.devices.occupancy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .isa import Program, RegClass, VirtualReg

#: ABI-reserved registers included in reported counts.
RESERVED_SGPRS = 4   # VCC pair + workgroup id + scratch wave offset
RESERVED_VGPRS = 1   # workitem id

VGPR_GRANULE = 4
SGPR_GRANULE = 8


@dataclass(frozen=True)
class RegisterUsage:
    """Peak physical register usage of one kernel."""

    vgprs: int
    sgprs: int
    peak_vgpr_virtual: int
    peak_sgpr_virtual: int


def _round_up(value: int, granule: int) -> int:
    return (value + granule - 1) // granule * granule


def peak_pressure(program: Program) -> Dict[RegClass, int]:
    """Peak concurrent 32-bit register demand per class (linear scan).

    Live ranges are [first occurrence, last occurrence] intervals; the
    classic sweep adds ``width`` at each interval start and removes it
    after the end.
    """
    ranges = program.live_ranges()
    events: Dict[RegClass, List[Tuple[int, int]]] = {
        RegClass.SGPR: [], RegClass.VGPR: []}
    for reg, (start, end) in ranges.items():
        events[reg.cls].append((start, reg.width))
        events[reg.cls].append((end + 1, -reg.width))
    peaks: Dict[RegClass, int] = {}
    for cls, evs in events.items():
        evs.sort()
        live = peak = 0
        for _, delta in evs:
            live += delta
            peak = max(peak, live)
        peaks[cls] = peak
    return peaks


def allocate(program: Program) -> RegisterUsage:
    """Compute the reported physical register counts for a program."""
    peaks = peak_pressure(program)
    vgprs = peaks[RegClass.VGPR] + RESERVED_VGPRS
    sgprs = peaks[RegClass.SGPR] + RESERVED_SGPRS
    return RegisterUsage(vgprs=vgprs, sgprs=sgprs,
                         peak_vgpr_virtual=peaks[RegClass.VGPR],
                         peak_sgpr_virtual=peaks[RegClass.SGPR])
