"""GPU device specifications (Table VII of the paper).

The paper evaluates three AMD discrete GPUs.  :data:`RADEON_VII`,
:data:`MI60` and :data:`MI100` carry the published Table VII numbers plus
the micro-architectural constants (wavefront width, SIMDs per compute
unit, register-file and LDS sizes) the occupancy and timing models need.
A :data:`HOST_CPU` pseudo-device is included so the runtime front-ends can
offer a CPU fallback the way real OpenCL/SYCL implementations do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

GIB = 1024 ** 3
MIB = 1024 ** 2


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one compute device.

    The first block of fields reproduces Table VII verbatim; the second
    block holds GCN/CDNA micro-architecture constants used by
    :mod:`repro.devices.occupancy` and :mod:`repro.devices.timing`.
    """

    name: str
    short_name: str
    vendor: str
    device_type: str  # "gpu" or "cpu"

    # --- Table VII columns -------------------------------------------
    global_memory_gb: int
    gpu_clock_mhz: int
    memory_clock_mhz: int
    cores: int                      # stream processors
    l2_cache_mb: int
    peak_bandwidth_gbs: float       # GB/s

    # --- micro-architecture ------------------------------------------
    wavefront_size: int = 64
    simds_per_cu: int = 4
    vgprs_per_simd: int = 256       # 32-bit VGPRs per SIMD per wave slot
    sgprs_per_cu: int = 3200
    lds_per_cu_bytes: int = 64 * 1024
    max_waves_per_simd: int = 10
    #: Sustained fraction of peak memory bandwidth for strided access.
    bandwidth_efficiency: float = 0.75
    #: Average global-memory latency in cycles (scatter/gather pattern).
    memory_latency_cycles: int = 700
    #: LDS access latency in cycles.
    lds_latency_cycles: int = 30
    #: Host<->device interconnect bandwidth, GB/s (PCIe gen3/gen4 x16).
    pcie_bandwidth_gbs: float = 14.0
    #: Fixed per-kernel-launch latency on the device side, microseconds.
    launch_latency_us: float = 8.0

    @property
    def compute_units(self) -> int:
        """Compute units: ``cores / (wavefront lanes per CU)``."""
        return self.cores // self.wavefront_size

    @property
    def gpu_clock_hz(self) -> float:
        return self.gpu_clock_mhz * 1.0e6

    @property
    def global_memory_bytes(self) -> int:
        return self.global_memory_gb * GIB

    @property
    def peak_bandwidth_bytes(self) -> float:
        return self.peak_bandwidth_gbs * 1.0e9

    @property
    def effective_bandwidth_bytes(self) -> float:
        return self.peak_bandwidth_bytes * self.bandwidth_efficiency

    @property
    def peak_valu_lanes(self) -> int:
        """Total vector ALU lanes across the device."""
        return self.cores

    def table7_row(self) -> Tuple:
        """Return this device's Table VII row (paper column order)."""
        return (self.short_name, self.global_memory_gb, self.gpu_clock_mhz,
                self.memory_clock_mhz, self.cores, self.l2_cache_mb,
                self.peak_bandwidth_gbs)


RADEON_VII = DeviceSpec(
    name="AMD Radeon VII",
    short_name="RVII",
    vendor="Advanced Micro Devices, Inc.",
    device_type="gpu",
    global_memory_gb=16,
    gpu_clock_mhz=1800,
    memory_clock_mhz=1000,
    cores=3840,
    l2_cache_mb=8,
    peak_bandwidth_gbs=1024.0,
)

MI60 = DeviceSpec(
    name="AMD Radeon Instinct MI60",
    short_name="MI60",
    vendor="Advanced Micro Devices, Inc.",
    device_type="gpu",
    global_memory_gb=32,
    gpu_clock_mhz=1800,
    memory_clock_mhz=1000,
    cores=4096,
    l2_cache_mb=8,
    peak_bandwidth_gbs=1024.0,
)

MI100 = DeviceSpec(
    name="AMD Instinct MI100",
    short_name="MI100",
    vendor="Advanced Micro Devices, Inc.",
    device_type="gpu",
    global_memory_gb=32,
    gpu_clock_mhz=1502,
    memory_clock_mhz=1200,
    cores=7680,
    l2_cache_mb=8,
    peak_bandwidth_gbs=1228.0,
    pcie_bandwidth_gbs=28.0,        # PCIe gen4 x16
    memory_latency_cycles=650,
)

HOST_CPU = DeviceSpec(
    name="Generic Host CPU",
    short_name="CPU",
    vendor="repro",
    device_type="cpu",
    global_memory_gb=8,
    gpu_clock_mhz=3000,
    memory_clock_mhz=2400,
    cores=16,
    l2_cache_mb=16,
    peak_bandwidth_gbs=40.0,
    wavefront_size=1,
    simds_per_cu=1,
    max_waves_per_simd=2,
)

#: The paper's evaluation devices, keyed by short name, in Table VII order.
PAPER_GPUS: Dict[str, DeviceSpec] = {
    "RVII": RADEON_VII,
    "MI60": MI60,
    "MI100": MI100,
}

#: Every device known to the runtime front-ends.
ALL_DEVICES: Dict[str, DeviceSpec] = dict(PAPER_GPUS, CPU=HOST_CPU)


def get_device_spec(short_name: str) -> DeviceSpec:
    """Look up a device by short name (``"RVII"``, ``"MI60"``, ...)."""
    try:
        return ALL_DEVICES[short_name]
    except KeyError:
        raise KeyError(
            f"unknown device {short_name!r}; known devices: "
            f"{sorted(ALL_DEVICES)}") from None


TABLE7_HEADER = ("Device", "Global memory (GB)", "GPU clock (MHz)",
                 "Memory clock (MHz)", "Cores", "L2 Cache (MB)",
                 "Peak BW (GB/s)")


def table7_rows():
    """All Table VII rows, in the paper's order."""
    return [spec.table7_row() for spec in PAPER_GPUS.values()]
