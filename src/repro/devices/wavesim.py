"""Discrete wave-level simulator: a second opinion on the timing model.

The analytic model (:mod:`repro.devices.timing`) computes kernel time
from closed-form terms.  This module *executes* the pseudo-ISA programs
(:mod:`repro.devices.codegen`) on a cycle-counting model of one SIMD:

* each resident wave steps through the instruction stream;
* the SIMD has one issue port — instructions cost their
  :data:`~repro.devices.isa.ISSUE_CYCLES` on it, and only one wave
  issues at a time;
* memory instructions (SMEM/VMEM/LDS) complete asynchronously after
  their latency; ``s_waitcnt`` blocks the wave until its outstanding
  operations drain;
* ``s_barrier`` synchronizes the waves of a work-group.

Latency hiding therefore *emerges* rather than being assumed: while one
wave waits on a gather, the others issue.  The paper's occupancy story
reproduces directly — with only 2 resident waves (opt4's register
pressure) the issue port starves on memory latency and throughput per
wave roughly halves versus 4 waves (base..opt3).

The simulator is deliberately per-SIMD and per-pass (one full kernel
execution per wave, which matches the comparer whose compare loop is
unrolled past the ~6.5 average trip count); it is used by tests and the
model-validation bench to check the analytic model's ratios, not to
re-derive absolute seconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .isa import ISSUE_CYCLES, Instruction, Opcode, Program
from .specs import DeviceSpec, MI60

#: Completion latencies (cycles) by opcode, beyond issue cost.
DEFAULT_LATENCIES: Dict[Opcode, int] = {
    Opcode.SMEM: 100,
    Opcode.VMEM_LOAD: 700,
    Opcode.VMEM_STORE: 200,
    Opcode.VMEM_ATOMIC: 700,
    Opcode.LDS_READ: 30,
    Opcode.LDS_WRITE: 30,
}


@dataclass
class SimConfig:
    """Simulation parameters."""

    waves: int = 4
    #: Waves per work-group resident on this SIMD (barrier scope).
    waves_per_group: int = 4
    latencies: Dict[Opcode, int] = field(
        default_factory=lambda: dict(DEFAULT_LATENCIES))
    #: Cap on simulated instructions per wave (runaway guard).
    max_instructions: int = 1_000_000


@dataclass
class SimResult:
    """Outcome of simulating one pass of every resident wave."""

    total_cycles: int
    instructions_issued: int
    issue_busy_cycles: int
    stall_cycles: int
    waves: int

    @property
    def cycles_per_wave(self) -> float:
        return self.total_cycles / self.waves

    @property
    def issue_utilization(self) -> float:
        if not self.total_cycles:
            return 0.0
        return self.issue_busy_cycles / self.total_cycles


class _Wave:
    __slots__ = ("index", "pc", "ready_at", "outstanding", "at_barrier",
                 "done")

    def __init__(self, index: int):
        self.index = index
        self.pc = 0
        self.ready_at = 0
        self.outstanding: List[int] = []   # completion times
        self.at_barrier = False
        self.done = False


def simulate(program: Program, config: Optional[SimConfig] = None
             ) -> SimResult:
    """Run one pass of ``config.waves`` waves over ``program``."""
    config = config or SimConfig()
    if config.waves <= 0:
        raise ValueError("need at least one wave")
    instructions = program.instructions
    waves = [_Wave(i) for i in range(config.waves)]
    time = 0
    issued = 0
    busy = 0
    barrier_groups: Dict[int, List[_Wave]] = {}
    for wave in waves:
        group = wave.index // max(1, config.waves_per_group)
        barrier_groups.setdefault(group, []).append(wave)

    def group_of(wave: _Wave) -> List[_Wave]:
        return barrier_groups[wave.index
                              // max(1, config.waves_per_group)]

    guard = config.max_instructions * config.waves
    while True:
        live = [w for w in waves if not w.done]
        if not live:
            break
        if issued > guard:
            raise RuntimeError("simulation exceeded instruction guard")
        # Release barriers whose whole group has arrived.
        for group in barrier_groups.values():
            members = [w for w in group if not w.done]
            if members and all(w.at_barrier for w in members):
                for wave in members:
                    wave.at_barrier = False
                    wave.pc += 1
                    wave.ready_at = max(wave.ready_at, time)
        # Find the issuable wave that has been ready longest.
        candidate: Optional[_Wave] = None
        for wave in live:
            if wave.at_barrier:
                continue
            inst = instructions[wave.pc]
            ready = wave.ready_at
            if inst.opcode is Opcode.WAITCNT and wave.outstanding:
                ready = max(ready, max(wave.outstanding))
            if ready <= time:
                if candidate is None or wave.ready_at < candidate.ready_at:
                    candidate = wave
        if candidate is None:
            # Advance time to the earliest point anything can move.
            next_times = []
            for wave in live:
                if wave.at_barrier:
                    continue
                inst = instructions[wave.pc]
                ready = wave.ready_at
                if inst.opcode is Opcode.WAITCNT and wave.outstanding:
                    ready = max(ready, max(wave.outstanding))
                next_times.append(ready)
            if not next_times:
                raise RuntimeError(
                    "deadlock: every live wave is parked at a barrier "
                    "(work-group mismatch?)")
            time = max(time + 1, min(next_times))
            continue
        wave = candidate
        inst = instructions[wave.pc]
        if inst.opcode is Opcode.BARRIER:
            wave.at_barrier = True
            continue
        if inst.opcode is Opcode.WAITCNT:
            wave.outstanding.clear()
        cost = int(ISSUE_CYCLES[inst.opcode])
        issued += 1
        busy += cost
        completion = time + cost
        latency = config.latencies.get(inst.opcode)
        if latency is not None:
            wave.outstanding.append(completion + latency)
        time = completion
        wave.ready_at = completion
        wave.pc += 1
        if inst.opcode is Opcode.END or wave.pc >= len(instructions):
            wave.done = True
    return SimResult(total_cycles=time, instructions_issued=issued,
                     issue_busy_cycles=busy,
                     stall_cycles=max(0, time - busy),
                     waves=config.waves)


def simulate_variant(variant: str, waves: int,
                     waves_per_group: Optional[int] = None,
                     plen: int = 23) -> SimResult:
    """Simulate one comparer variant with a given residency."""
    from .codegen import compile_comparer
    program = compile_comparer(variant, plen)
    config = SimConfig(waves=waves,
                       waves_per_group=(waves_per_group
                                        if waves_per_group is not None
                                        else waves))
    return simulate(program, config)


def throughput_cycles_per_wave(variant: str,
                               spec: DeviceSpec = MI60,
                               work_group_size: int = 256,
                               plen: int = 23) -> float:
    """Cycles per wave at the variant's own occupancy on ``spec``.

    Residency comes from the register/occupancy pipeline, so opt4's
    wave loss shows up exactly as it does in the analytic model.
    """
    from .codegen import analyze_comparer
    from .occupancy import waves_per_simd
    usage = analyze_comparer(variant, plen)
    waves = waves_per_simd(usage.vgprs, usage.sgprs, usage.lds_bytes,
                           work_group_size, spec)
    waves_per_group = max(1, min(waves,
                                 work_group_size // spec.wavefront_size))
    result = simulate_variant(variant, waves, waves_per_group, plen)
    return result.cycles_per_wave
