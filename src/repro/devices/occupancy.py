"""Occupancy model (the last row of Table X, and the waves that hide
memory latency in the timing model).

Two related quantities are computed:

* :func:`reported_occupancy` — the number the AMD tooling prints for
  these kernels ("occupancy is a measure of parallel work that a GPU
  could perform at a given time on a compute unit").  It is the
  VGPR-limited wave count on the tooling's per-CU scale, capped at the
  architecture's 10 waves: ``min(10, pool / align(vgprs, 4))`` with a
  3-SIMD-equivalent pool of 768 VGPR slots, which reproduces the paper's
  10/10/10/10/9 ladder for the measured register counts.
* :func:`waves_per_simd` — the *physical* wave slots per SIMD available
  for latency hiding, which is what the timing model consumes.  VGPR
  files allocate per-wave blocks at a coarse granule in wave64 mode, so
  57–64 VGPRs leave 4 concurrent waves per SIMD while 80+ VGPRs leave
  only 2 — the cliff behind opt4's near-doubling of kernel time despite
  the reported occupancy only dropping from 10 to 9 (the paper: "there
  is a performance trade-off between register usage and occupancy").

LDS and work-group-size limits are also enforced; for these kernels
(230 B of LDS) they never bind.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import DeviceSpec

#: Reported-occupancy VGPR pool (tooling scale; see module docstring).
REPORTED_VGPR_POOL = 768
REPORTED_VGPR_ALIGN = 4

#: Physical per-wave VGPR allocation granule in wave64 mode.
PHYSICAL_VGPR_GRANULE = 32


def _round_up(value: int, granule: int) -> int:
    return (value + granule - 1) // granule * granule


@dataclass(frozen=True)
class OccupancyReport:
    """Occupancy from every limiting resource."""

    reported: int
    waves_per_simd: int
    vgpr_limited_waves: int
    sgpr_limited_waves: int
    lds_limited_waves: int


def reported_occupancy(vgprs: int, spec: DeviceSpec) -> int:
    """The tooling's occupancy number (Table X's last row)."""
    if vgprs <= 0:
        raise ValueError(f"vgprs must be positive, got {vgprs}")
    waves = REPORTED_VGPR_POOL // _round_up(vgprs, REPORTED_VGPR_ALIGN)
    return min(spec.max_waves_per_simd, waves)


def waves_per_simd(vgprs: int, sgprs: int, lds_bytes: int,
                   work_group_size: int, spec: DeviceSpec) -> int:
    """Physical concurrent waves per SIMD (latency-hiding capacity)."""
    report = occupancy_report(vgprs, sgprs, lds_bytes, work_group_size,
                              spec)
    return report.waves_per_simd


def occupancy_report(vgprs: int, sgprs: int, lds_bytes: int,
                     work_group_size: int, spec: DeviceSpec
                     ) -> OccupancyReport:
    """Full occupancy breakdown for one kernel on one device."""
    if vgprs <= 0 or sgprs <= 0:
        raise ValueError("register counts must be positive")
    if work_group_size <= 0:
        raise ValueError(
            f"work-group size must be positive, got {work_group_size}")
    vgpr_waves = spec.vgprs_per_simd // _round_up(vgprs,
                                                  PHYSICAL_VGPR_GRANULE)
    sgpr_waves = (spec.sgprs_per_cu // spec.simds_per_cu) \
        // max(sgprs, 16)
    if lds_bytes > 0:
        groups_per_cu = spec.lds_per_cu_bytes // max(lds_bytes, 1)
        waves_per_group = max(
            1, work_group_size // spec.wavefront_size)
        lds_waves = max(1, groups_per_cu * waves_per_group
                        // spec.simds_per_cu)
    else:
        lds_waves = spec.max_waves_per_simd
    physical = max(1, min(vgpr_waves, sgpr_waves, lds_waves,
                          spec.max_waves_per_simd))
    return OccupancyReport(
        reported=reported_occupancy(vgprs, spec),
        waves_per_simd=physical,
        vgpr_limited_waves=vgpr_waves,
        sgpr_limited_waves=sgpr_waves,
        lds_limited_waves=lds_waves)
