"""Analytic timing model: Tables VIII and IX, Figure 2.

The model re-costs a measured :class:`~repro.core.workload.WorkloadProfile`
on a modeled GPU.  Its *relative* behaviour is mechanistic — every effect
the paper measures falls out of structure:

* **per-iteration latency** — the compare loop's dependent loads cost
  ``latency / waves_per_simd`` cycles per wave-iteration.  The base
  kernel pays an extra (L2-resident) ``loci[i]`` re-load per iteration
  (removed by opt2) and aliasing re-loads (removed by opt1);
* **staging serialization** — base..opt2's work-item-0 fetch stalls the
  whole work-group for the staging duration, a per-group cost amortized
  over the group's items.  This is also where the OpenCL/SYCL asymmetry
  of Table VIII comes from: the OpenCL runtime picks 64-item groups, so
  it pays the staging cost four times as often as SYCL's 256-item
  groups;
* **occupancy cliff** — opt4's register pressure halves the physical
  waves per SIMD (:mod:`repro.devices.occupancy`), doubling the
  latency-bound term — the paper's "kernel execution time almost
  doubles".

Absolute scale cannot be derived without the authors' testbed; a single
global constant (:data:`TimingCalibration.kernel_scale`) anchors the
model to the paper's MI60/hg19 SYCL-base measurement (~50 s elapsed) and
is shared by every device, API, variant and dataset, so it cancels out
of every comparison the benches assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..core.workload import WorkloadProfile
from .codegen import analyze_comparer
from .occupancy import waves_per_simd
from .specs import DeviceSpec

#: Work-group size the SYCL application pins (Section IV.A).
SYCL_WORK_GROUP_SIZE = 256


@dataclass(frozen=True)
class TimingCalibration:
    """Constants of the analytic model.

    ``kernel_scale`` is the single anchoring constant (see module
    docstring); everything else is a micro-architectural estimate.
    """

    #: Global anchor: modeled kernel cycles -> wall seconds multiplier.
    kernel_scale: float = 260.0
    #: DRAM gather latency for the chr[] accesses (cycles).
    gather_latency: float = 700.0
    #: L2-resident re-load latency (loci[i], aliasing re-loads; cycles).
    l2_latency: float = 130.0
    #: Aliasing re-loads per compare iteration without __restrict.
    alias_reloads_per_iter: float = 0.2
    #: Issue cycles per compare iteration (chain + loop overhead).
    issue_cycles_per_iter: float = 160.0
    #: Issue-cycle reduction for opt2 (fewer address ops) and opt4
    #: (collapsed LDS reads).
    issue_cycles_opt2: float = 148.0
    issue_cycles_opt4: float = 120.0
    #: Divergence: a wave runs the max trip count over 64 lanes; ratio
    #: of wave trip count to mean lane trip count.
    wave_divergence: float = 1.3
    #: Outstanding loads the serial staging thread sustains.
    staging_outstanding: float = 14.0
    #: Finder cost per scanned position (cycles per wave-position).
    finder_cycles_per_position: float = 40.0
    #: Host-side genome read/parse seconds per byte (chunk loop).
    host_seconds_per_byte: float = 4.0e-9
    #: Host per-chunk fixed overhead (result collection, bookkeeping).
    host_seconds_per_chunk: float = 2.0e-3
    #: Per-kernel-launch API overhead (seconds).
    launch_overhead_opencl: float = 60.0e-6
    launch_overhead_sycl: float = 25.0e-6


DEFAULT_CALIBRATION = TimingCalibration()


@dataclass(frozen=True)
class ElapsedTimeModel:
    """Modeled time breakdown for one (device, api, variant, dataset)."""

    device: str
    api: str
    variant: str
    dataset: str
    work_group_size: int
    waves_per_simd: int
    finder_s: float
    comparer_s: float
    transfer_s: float
    host_s: float
    launch_overhead_s: float

    @property
    def kernel_s(self) -> float:
        return self.finder_s + self.comparer_s

    @property
    def elapsed_s(self) -> float:
        return (self.kernel_s + self.transfer_s + self.host_s
                + self.launch_overhead_s)

    @property
    def comparer_share_of_kernel(self) -> float:
        return self.comparer_s / self.kernel_s if self.kernel_s else 0.0

    @property
    def kernel_share_of_elapsed(self) -> float:
        return self.kernel_s / self.elapsed_s if self.elapsed_s else 0.0


def _simds(spec: DeviceSpec) -> int:
    return spec.compute_units * spec.simds_per_cu


def model_comparer_cycles(spec: DeviceSpec, workload: WorkloadProfile,
                          variant: str, work_group_size: int,
                          cal: TimingCalibration = DEFAULT_CALIBRATION,
                          ) -> Dict[str, float]:
    """Per-SIMD cycle count of all comparer launches of one run.

    Returns a breakdown dict with ``main``, ``staging`` and ``total``
    per-SIMD cycles, plus the wave count for diagnostics.
    """
    resources = analyze_comparer(variant, workload.pattern_length)
    waves = waves_per_simd(resources.vgprs, resources.sgprs,
                           resources.lds_bytes, work_group_size, spec)
    lanes = spec.wavefront_size
    restrict = variant != "base"
    cache_globals = variant in ("opt2", "opt3", "opt4")
    coop_fetch = variant in ("opt3", "opt4")
    cache_lds = variant == "opt4"

    # Per-wave-iteration latency-bound cycles.
    latency = cal.gather_latency / waves
    if not cache_globals:
        latency += cal.l2_latency / waves          # loci[i] re-read
    if not restrict:
        latency += (cal.alias_reloads_per_iter
                    * cal.l2_latency / waves)      # aliasing re-loads
    if cache_lds:
        issue = cal.issue_cycles_opt4
    elif cache_globals:
        issue = cal.issue_cycles_opt2
    else:
        issue = cal.issue_cycles_per_iter
    per_iteration = max(latency, issue)

    # Wave iterations over all queries (each query launches once per
    # chunk; totals are already summed over chunks).
    total_wave_iterations = 0.0
    for query in workload.queries:
        strand_iters = (workload.candidates_forward
                        * query.avg_trips_forward
                        + workload.candidates_reverse
                        * query.avg_trips_reverse)
        total_wave_iterations += (strand_iters / lanes
                                  * cal.wave_divergence)
    main_cycles = total_wave_iterations * per_iteration / _simds(spec)

    # Staging: per-group cost, paid once per work-group per launch.
    elements = 2 * workload.pattern_length * 2   # char + index streams
    if coop_fetch:
        rounds = max(1.0, elements / (2 * work_group_size))
        staging_duration = rounds * 2 * cal.l2_latency / waves
    else:
        staging_duration = (elements * cal.l2_latency
                            / cal.staging_outstanding)
    groups = 0.0
    for _query in workload.queries:
        groups += workload.candidates / work_group_size
    staging_cycles = groups * staging_duration / _simds(spec)

    total = main_cycles + staging_cycles
    return {"main": main_cycles, "staging": staging_cycles,
            "total": total, "waves_per_simd": waves,
            "per_iteration": per_iteration}


def model_finder_cycles(spec: DeviceSpec, workload: WorkloadProfile,
                        work_group_size: int,
                        cal: TimingCalibration = DEFAULT_CALIBRATION,
                        ) -> float:
    """Per-SIMD cycles of all finder launches (sequential-access scan)."""
    waves = workload.positions_scanned / spec.wavefront_size
    return waves * cal.finder_cycles_per_position / _simds(spec)


def model_elapsed(spec: DeviceSpec, workload: WorkloadProfile, api: str,
                  variant: str = "base",
                  work_group_size: Optional[int] = None,
                  cal: TimingCalibration = DEFAULT_CALIBRATION,
                  ) -> ElapsedTimeModel:
    """Full elapsed-time model for one configuration.

    ``api`` selects the work-group-size policy when ``work_group_size``
    is None: the OpenCL application lets the runtime pick (the wavefront
    size, 64), the SYCL application pins 256.
    """
    if api not in ("opencl", "sycl"):
        raise ValueError(f"unknown api {api!r}")
    if api == "opencl" and variant != "base":
        raise ValueError("the paper's kernel optimizations are explored "
                         "in the SYCL application only")
    if work_group_size is None:
        work_group_size = (SYCL_WORK_GROUP_SIZE if api == "sycl"
                           else spec.wavefront_size)
    comparer = model_comparer_cycles(spec, workload, variant,
                                     work_group_size, cal)
    finder_cycles = model_finder_cycles(spec, workload, work_group_size,
                                        cal)
    to_seconds = cal.kernel_scale / spec.gpu_clock_hz
    finder_s = finder_cycles * to_seconds
    comparer_s = comparer["total"] * to_seconds
    transfer_s = ((workload.bytes_h2d + workload.bytes_d2h)
                  / (spec.pcie_bandwidth_gbs * 1.0e9))
    host_s = (workload.bytes_h2d * cal.host_seconds_per_byte
              + workload.chunk_count * cal.host_seconds_per_chunk)
    launches = workload.chunk_count * (1 + len(workload.queries))
    overhead = (cal.launch_overhead_opencl if api == "opencl"
                else cal.launch_overhead_sycl)
    return ElapsedTimeModel(
        device=spec.short_name, api=api, variant=variant,
        dataset=workload.dataset, work_group_size=work_group_size,
        waves_per_simd=int(comparer["waves_per_simd"]),
        finder_s=finder_s, comparer_s=comparer_s, transfer_s=transfer_s,
        host_s=host_s, launch_overhead_s=launches * overhead)
