"""repro — reproduction of "Experience Migrating OpenCL to SYCL: A Case
Study on Searches for Potential Off-Target Sites of Cas9 RNA-Guided
Endonucleases on AMD GPUs" (Jin & Vetter, SOCC 2023).

The package builds the paper's whole stack in Python:

* :mod:`repro.core` — the Cas-OFFinder algorithm: IUPAC patterns, the
  ``finder``/``comparer`` kernels, and host pipelines in both the
  OpenCL and SYCL programming styles;
* :mod:`repro.runtime` — the two runtime models the migration is
  between (explicit 13-step OpenCL API, 8-step SYCL API) over a shared
  ND-range executor with work-groups, barriers, local memory and
  atomics;
* :mod:`repro.genome` — FASTA I/O, chunking, synthetic hg19/hg38
  stand-ins and the 2-bit encoding;
* :mod:`repro.devices` — models of the three evaluation GPUs: specs
  (Table VII), a pseudo-ISA compiler + register allocator + occupancy
  model (Table X) and an analytic timing model (Tables VIII/IX,
  Figure 2);
* :mod:`repro.analysis` — productivity (Table I), hotspot profiling and
  table renderers.

Quick start::

    from repro import search, example_request, synthetic_assembly
    assembly = synthetic_assembly("hg19", scale=0.0005)
    result = search(assembly, example_request())
    for hit in result.sorted_hits():
        print(hit.to_tsv())
"""

from .core import (OffTargetHit, OpenCLCasOffinder, PipelineResult,
                   Query, SearchRequest, SyclCasOffinder, bulge_search,
                   example_request, reference_search, search, sort_hits,
                   write_hits)
from .genome import Assembly, read_fasta, synthetic_assembly, write_fasta

__version__ = "1.0.0"

__all__ = [
    "Assembly", "OffTargetHit", "OpenCLCasOffinder", "PipelineResult",
    "Query", "SearchRequest", "SyclCasOffinder", "__version__",
    "bulge_search", "example_request", "read_fasta", "reference_search",
    "search", "sort_hits", "synthetic_assembly", "write_fasta",
    "write_hits",
]
