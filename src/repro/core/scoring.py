"""Off-target scoring: turning hit lists into guide rankings.

Cas-OFFinder enumerates candidate off-target sites; downstream tools
(Cas-Designer, reference [21] of the paper, built by the same authors on
top of Cas-OFFinder) score them to rank guides.  This module implements
two schemes for SpCas9-style guides:

* the classic **MIT/Zhang-lab scheme** (Hsu et al. 2013): a per-site
  score from the experimentally derived position-weight vector
  (mismatches near the PAM hurt binding more), the mean pairwise
  distance between mismatches, and the mismatch count; aggregated into
  a **guide specificity score** ``100 / (100 + sum(site scores))``
  over all off-target sites, scaled to 0-100 (higher = more specific);
* a **CFD-style scheme** (after Doench et al. 2016): a per-site score
  that is a product of position x substitution activity factors, so it
  needs the mismatch *identities* (which base replaced which), not just
  the positions.  The per-pair activity grid is loaded at import from
  the checked-in ``data/cfd_weights.json`` (a deterministic structured
  reconstruction of the Doench table's shape — see the file's
  ``source`` field); if that file is missing or malformed the module
  falls back to the two-class structural stand-in
  (:data:`CFD_POSITION_WEIGHTS` x transition/transversion severity)
  and records which table is active in :data:`CFD_TABLE_SOURCE`.
  Either way penalties rise toward the PAM, transitions (A<->G,
  C<->T) are penalized less than transversions, every factor is in
  (0, 1] so scores stay comparable to MIT's 0-100 scale, and a
  substitution involving a non-ACGT base (e.g. a genome ``N`` inside
  the guide region) raises :class:`ScoringError` — neither table
  defines an activity for it, and silently scoring it would rank
  unknown sites as perfectly active.

Scores operate on :class:`~repro.core.records.OffTargetHit` values
straight out of the pipeline, using the lowercase-mismatch markup of the
output format to recover mismatch positions *and* identities (the
matched site is rendered in query orientation: ``hit.query[i]`` is the
guide base, ``hit.site[i].upper()`` the genome base).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import (Callable, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Tuple)

from .records import OffTargetHit

#: MIT position weights for 20-nt SpCas9 guides, 5'->3' (position 0 is
#: PAM-distal).  Hsu et al. 2013, as used by crispr.mit.edu.
MIT_WEIGHTS: Tuple[float, ...] = (
    0.000, 0.000, 0.014, 0.000, 0.000,
    0.395, 0.317, 0.000, 0.389, 0.079,
    0.445, 0.508, 0.613, 0.851, 0.732,
    0.828, 0.615, 0.804, 0.685, 0.583,
)

GUIDE_LENGTH = len(MIT_WEIGHTS)

#: CFD-style position weights, 5'->3' (position 0 is PAM-distal).  A
#: smooth stand-in for the Doench 2016 position profile: near-zero
#: tolerance loss at the 5' end rising to ~0.85 next to the PAM.  The
#: curve is fixed (not fitted) so rankings are reproducible anywhere.
CFD_POSITION_WEIGHTS: Tuple[float, ...] = tuple(
    round(0.05 + 0.80 * (index / (GUIDE_LENGTH - 1)) ** 1.5, 4)
    for index in range(GUIDE_LENGTH))

#: Substitution pairs (guide base, genome base) treated as transitions.
CFD_TRANSITIONS: FrozenSet[Tuple[str, str]] = frozenset(
    {("A", "G"), ("G", "A"), ("C", "T"), ("T", "C")})

#: Activity-loss severity per substitution class: transitions are the
#: wobble-tolerant pairings, transversions disrupt more, and anything
#: involving a non-ACGT base gets the worst (largest) factor.
CFD_TRANSITION_SEVERITY = 0.55
CFD_TRANSVERSION_SEVERITY = 0.95


class ScoringError(ValueError):
    """Raised for sites that cannot be scored with this scheme."""


#: Checked-in CFD activity grid (position x substitution pair).
_CFD_DATA_PATH = os.path.join(os.path.dirname(__file__), "data",
                              "cfd_weights.json")


def _load_cfd_pairs(path: str = _CFD_DATA_PATH
                    ) -> Optional[Dict[Tuple[str, str],
                                       Tuple[float, ...]]]:
    """The per-pair activity table from ``data/cfd_weights.json``.

    Returns None (falling back to the structural stand-in) when the
    file is missing or fails validation: every one of the 12 possible
    ACGT substitutions must carry ``guide_length`` activity factors,
    each in (0, 1].
    """
    try:
        with open(path, encoding="ascii") as handle:
            raw = json.load(handle)
        if int(raw["guide_length"]) != GUIDE_LENGTH:
            return None
        pairs: Dict[Tuple[str, str], Tuple[float, ...]] = {}
        for guide_base in "ACGT":
            for site_base in "ACGT":
                if guide_base == site_base:
                    continue
                values = raw["pairs"][f"{guide_base}>{site_base}"]
                factors = tuple(float(v) for v in values)
                if len(factors) != GUIDE_LENGTH or not all(
                        0.0 < v <= 1.0 for v in factors):
                    return None
                pairs[(guide_base, site_base)] = factors
        return pairs
    except (OSError, ValueError, TypeError, KeyError):
        return None


_CFD_PAIR_ACTIVITIES = _load_cfd_pairs()

#: Which CFD table :func:`cfd_activity` is serving: the checked-in data
#: file, or the two-class structural stand-in fallback.
CFD_TABLE_SOURCE = ("data/cfd_weights.json"
                    if _CFD_PAIR_ACTIVITIES is not None
                    else "structural stand-in")


def _require_full_site(hit: OffTargetHit, guide_length: int) -> None:
    """Reject hits whose markup cannot cover the guide region.

    A ``hit.site`` shorter than the guide would otherwise silently
    score a truncated window — malformed input must fail loudly.
    """
    if len(hit.site) < guide_length:
        raise ScoringError(
            f"site {hit.site!r} is shorter than the {guide_length}-nt "
            f"guide region and cannot be scored")


def mismatch_positions(hit: OffTargetHit,
                       guide_length: int = GUIDE_LENGTH) -> List[int]:
    """Recover guide-region mismatch positions from the hit markup.

    The output format renders mismatched bases in lowercase, in query
    orientation, so positions map directly onto the guide.
    """
    _require_full_site(hit, guide_length)
    positions = [index for index, char in enumerate(hit.site)
                 if char.islower() and index < guide_length]
    return positions


def mismatch_identities(hit: OffTargetHit,
                        guide_length: int = GUIDE_LENGTH
                        ) -> List[Tuple[int, str, str]]:
    """Guide-region mismatches as ``(position, guide_base, site_base)``.

    The site markup is in query orientation, so ``hit.query[i]`` is the
    guide base written at position ``i`` and the lowercase
    ``hit.site[i]`` (uppercased) is the genome base found there.
    """
    _require_full_site(hit, guide_length)
    if len(hit.query) < guide_length:
        raise ScoringError(
            f"query {hit.query!r} is shorter than the {guide_length}-nt "
            f"guide region and cannot be scored")
    return [(index, hit.query[index].upper(), hit.site[index].upper())
            for index in range(guide_length)
            if hit.site[index].islower()]


def mit_site_score(positions: Sequence[int],
                   guide_length: int = GUIDE_LENGTH) -> float:
    """MIT score of a single site from its mismatch positions (0-100).

    100 means an exact match (maximal cutting likelihood at this site);
    each PAM-proximal mismatch multiplies the score down.
    """
    for position in positions:
        if not 0 <= position < guide_length:
            raise ScoringError(
                f"mismatch position {position} outside the "
                f"{guide_length}-nt guide")
    if not positions:
        return 100.0
    score = 1.0
    for position in positions:
        score *= 1.0 - MIT_WEIGHTS[position]
    count = len(positions)
    if count > 1:
        span = max(positions) - min(positions)
        mean_distance = span / (count - 1)
        score /= ((guide_length - 1 - mean_distance)
                  / (guide_length - 1)) * 4.0 + 1.0
        score /= count ** 2
    return score * 100.0


def cfd_activity(position: int, guide_base: str, site_base: str) -> float:
    """Retained activity factor for one substitution, in (0, 1].

    Served from the checked-in ``data/cfd_weights.json`` grid when it
    loaded, otherwise from the structural stand-in (position weight x
    transition/transversion severity).  A pair involving any non-ACGT
    base raises :class:`ScoringError`: no CFD table defines an
    activity for it, and the old behaviour of scoring an ``N``:``N``
    pairing as a perfect match (1.0) silently ranked unknowable sites
    as maximally active.
    """
    pair = (guide_base.upper(), site_base.upper())
    if pair[0] not in "ACGT" or pair[1] not in "ACGT":
        raise ScoringError(
            f"cannot score substitution {pair[0]!r}->{pair[1]!r} at "
            f"position {position}: CFD activities are defined for "
            f"ACGT bases only")
    if pair[0] == pair[1]:
        return 1.0
    index = min(position, GUIDE_LENGTH - 1)
    if _CFD_PAIR_ACTIVITIES is not None:
        return _CFD_PAIR_ACTIVITIES[pair][index]
    severity = (CFD_TRANSITION_SEVERITY if pair in CFD_TRANSITIONS
                else CFD_TRANSVERSION_SEVERITY)
    return 1.0 - CFD_POSITION_WEIGHTS[index] * severity


def cfd_worst_activity(position: int) -> float:
    """The lowest activity factor any substitution has at ``position``.

    The explicit stand-in for substitutions the table cannot score —
    a genome ``N`` inside the guide region.  Taking the position's
    worst defined factor is the conservative choice (the unknown site
    is ranked as risky as the most disruptive known substitution),
    and it is deterministic, so every serving tier scores such sites
    identically.
    """
    index = min(position, GUIDE_LENGTH - 1)
    if _CFD_PAIR_ACTIVITIES is not None:
        return min(factors[index]
                   for factors in _CFD_PAIR_ACTIVITIES.values())
    return 1.0 - CFD_POSITION_WEIGHTS[index] * CFD_TRANSVERSION_SEVERITY


def cfd_site_score(identities: Sequence[Tuple[int, str, str]],
                   guide_length: int = GUIDE_LENGTH) -> float:
    """CFD-style score of one site from its mismatch identities (0-100).

    Product of per-mismatch activity factors, scaled to 0-100 so the
    aggregate formula shared with the MIT scheme applies unchanged.
    A mismatch involving a non-ACGT base (a genome ``N`` in the guide
    region) has no defined activity; it contributes the position's
    worst factor via :func:`cfd_worst_activity` — the old code's
    silent special cases (``N``:``N`` scored 1.0) are gone.
    """
    score = 1.0
    for position, guide_base, site_base in identities:
        if not 0 <= position < guide_length:
            raise ScoringError(
                f"mismatch position {position} outside the "
                f"{guide_length}-nt guide")
        if guide_base.upper() not in "ACGT" or \
                site_base.upper() not in "ACGT":
            score *= cfd_worst_activity(position)
        else:
            score *= cfd_activity(position, guide_base, site_base)
    return score * 100.0


def score_hit(hit: OffTargetHit,
              guide_length: int = GUIDE_LENGTH) -> float:
    """MIT score of one pipeline hit."""
    return mit_site_score(mismatch_positions(hit, guide_length),
                          guide_length)


def cfd_score_hit(hit: OffTargetHit,
                  guide_length: int = GUIDE_LENGTH) -> float:
    """CFD-style score of one pipeline hit."""
    return cfd_site_score(mismatch_identities(hit, guide_length),
                          guide_length)


@dataclass(frozen=True)
class GuideReport:
    """Aggregate scoring of one guide over its hit list."""

    guide: str
    specificity: float          # 0-100, higher = fewer/weaker off-targets
    on_targets: int             # exact (0-mismatch) sites
    off_targets: int
    worst_off_target: float     # highest-scoring (riskiest) off-target


def summarize_hits(guide_hits: Iterable[OffTargetHit],
                   guide_length: int = GUIDE_LENGTH,
                   site_scorer: Callable[[OffTargetHit, int], float]
                   = score_hit
                   ) -> Tuple[float, int, int, float]:
    """``(specificity, on_targets, off_targets, worst)`` for one guide.

    Exact sites (0 mismatches) are treated as on-targets and excluded
    from the penalty sum, as the MIT web tool does.  The penalty sum
    follows hit-list order, so identical hit lists produce bit-identical
    floats — the property the serving tiers' byte-identity rests on.
    """
    on_targets = 0
    penalty = 0.0
    worst = 0.0
    off_count = 0
    for hit in guide_hits:
        if hit.mismatches == 0:
            on_targets += 1
            continue
        site_score = site_scorer(hit, guide_length)
        penalty += site_score
        worst = max(worst, site_score)
        off_count += 1
    specificity = 100.0 * 100.0 / (100.0 + penalty)
    return specificity, on_targets, off_count, worst


def _aggregate(hits: Iterable[OffTargetHit], guide_length: int,
               site_scorer: Callable[[OffTargetHit, int], float]
               ) -> Dict[str, GuideReport]:
    per_guide: Dict[str, List[OffTargetHit]] = {}
    for hit in hits:
        per_guide.setdefault(hit.query, []).append(hit)
    reports: Dict[str, GuideReport] = {}
    for guide, guide_hits in per_guide.items():
        specificity, on_targets, off_count, worst = summarize_hits(
            guide_hits, guide_length, site_scorer)
        reports[guide] = GuideReport(
            guide=guide,
            specificity=specificity,
            on_targets=on_targets,
            off_targets=off_count,
            worst_off_target=worst)
    return reports


def aggregate_reports(hits: Iterable[OffTargetHit],
                      guide_length: int = GUIDE_LENGTH,
                      site_scorer: Callable[[OffTargetHit, int], float]
                      = score_hit) -> Dict[str, GuideReport]:
    """Per-guide reports under an arbitrary site scorer."""
    return _aggregate(hits, guide_length, site_scorer)


def aggregate_specificity(hits: Iterable[OffTargetHit],
                          guide_length: int = GUIDE_LENGTH
                          ) -> Dict[str, GuideReport]:
    """MIT aggregate specificity per guide."""
    return _aggregate(hits, guide_length, score_hit)


def aggregate_cfd(hits: Iterable[OffTargetHit],
                  guide_length: int = GUIDE_LENGTH
                  ) -> Dict[str, GuideReport]:
    """CFD-style aggregate specificity per guide."""
    return _aggregate(hits, guide_length, cfd_score_hit)


def rank_guides(hits: Iterable[OffTargetHit],
                guide_length: int = GUIDE_LENGTH,
                site_scorer: Callable[[OffTargetHit, int], float]
                = score_hit) -> List[GuideReport]:
    """Guides ordered best-first by aggregate specificity.

    Equal-specificity guides tie-break on the guide sequence so the
    ranking is deterministic regardless of hit/dict insertion order.
    """
    reports = _aggregate(hits, guide_length, site_scorer)
    return sorted(reports.values(),
                  key=lambda report: (-report.specificity, report.guide))
