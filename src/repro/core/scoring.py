"""Off-target scoring: turning hit lists into guide rankings.

Cas-OFFinder enumerates candidate off-target sites; downstream tools
(Cas-Designer, reference [21] of the paper, built by the same authors on
top of Cas-OFFinder) score them to rank guides.  This module implements
the classic **MIT/Zhang-lab scheme** used for SpCas9 20-nt guides:

* a per-site score from the experimentally derived position-weight
  vector (mismatches near the PAM hurt binding more), the mean pairwise
  distance between mismatches, and the mismatch count;
* an aggregate **guide specificity score**
  ``100 / (100 + sum(site scores))`` over all off-target sites, scaled
  to 0-100 (higher = more specific).

Scores operate on :class:`~repro.core.records.OffTargetHit` values
straight out of the pipeline, using the lowercase-mismatch markup of the
output format to recover mismatch positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .records import OffTargetHit

#: MIT position weights for 20-nt SpCas9 guides, 5'->3' (position 0 is
#: PAM-distal).  Hsu et al. 2013, as used by crispr.mit.edu.
MIT_WEIGHTS: Tuple[float, ...] = (
    0.000, 0.000, 0.014, 0.000, 0.000,
    0.395, 0.317, 0.000, 0.389, 0.079,
    0.445, 0.508, 0.613, 0.851, 0.732,
    0.828, 0.615, 0.804, 0.685, 0.583,
)

GUIDE_LENGTH = len(MIT_WEIGHTS)


class ScoringError(ValueError):
    """Raised for sites that cannot be scored with this scheme."""


def mismatch_positions(hit: OffTargetHit,
                       guide_length: int = GUIDE_LENGTH) -> List[int]:
    """Recover guide-region mismatch positions from the hit markup.

    The output format renders mismatched bases in lowercase, in query
    orientation, so positions map directly onto the guide.
    """
    positions = [index for index, char in enumerate(hit.site)
                 if char.islower() and index < guide_length]
    return positions


def mit_site_score(positions: Sequence[int],
                   guide_length: int = GUIDE_LENGTH) -> float:
    """MIT score of a single site from its mismatch positions (0-100).

    100 means an exact match (maximal cutting likelihood at this site);
    each PAM-proximal mismatch multiplies the score down.
    """
    for position in positions:
        if not 0 <= position < guide_length:
            raise ScoringError(
                f"mismatch position {position} outside the "
                f"{guide_length}-nt guide")
    if not positions:
        return 100.0
    score = 1.0
    for position in positions:
        score *= 1.0 - MIT_WEIGHTS[position]
    count = len(positions)
    if count > 1:
        span = max(positions) - min(positions)
        mean_distance = span / (count - 1)
        score /= ((guide_length - 1 - mean_distance)
                  / (guide_length - 1)) * 4.0 + 1.0
        score /= count ** 2
    return score * 100.0


def score_hit(hit: OffTargetHit,
              guide_length: int = GUIDE_LENGTH) -> float:
    """MIT score of one pipeline hit."""
    return mit_site_score(mismatch_positions(hit, guide_length),
                          guide_length)


@dataclass(frozen=True)
class GuideReport:
    """Aggregate scoring of one guide over its hit list."""

    guide: str
    specificity: float          # 0-100, higher = fewer/weaker off-targets
    on_targets: int             # exact (0-mismatch) sites
    off_targets: int
    worst_off_target: float     # highest-scoring (riskiest) off-target


def aggregate_specificity(hits: Iterable[OffTargetHit],
                          guide_length: int = GUIDE_LENGTH
                          ) -> Dict[str, GuideReport]:
    """MIT aggregate specificity per guide.

    Exact sites (0 mismatches) are treated as on-targets and excluded
    from the penalty sum, as the MIT web tool does.
    """
    per_guide: Dict[str, List[OffTargetHit]] = {}
    for hit in hits:
        per_guide.setdefault(hit.query, []).append(hit)
    reports: Dict[str, GuideReport] = {}
    for guide, guide_hits in per_guide.items():
        on_targets = 0
        penalty = 0.0
        worst = 0.0
        off_count = 0
        for hit in guide_hits:
            if hit.mismatches == 0:
                on_targets += 1
                continue
            site_score = score_hit(hit, guide_length)
            penalty += site_score
            worst = max(worst, site_score)
            off_count += 1
        reports[guide] = GuideReport(
            guide=guide,
            specificity=100.0 * 100.0 / (100.0 + penalty),
            on_targets=on_targets,
            off_targets=off_count,
            worst_off_target=worst)
    return reports


def rank_guides(hits: Iterable[OffTargetHit],
                guide_length: int = GUIDE_LENGTH) -> List[GuideReport]:
    """Guides ordered best-first by aggregate specificity."""
    reports = aggregate_specificity(hits, guide_length)
    return sorted(reports.values(),
                  key=lambda report: -report.specificity)
