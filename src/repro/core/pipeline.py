"""Host pipelines: the Cas-OFFinder application in both programming models.

Section II.A of the paper describes the host program: read genome
sequences, divide them into device-sized chunks, run the ``finder``
kernel to select PAM-bearing candidate sites, run the ``comparer`` kernel
to count mismatches per query, and collect results until all chunks are
processed.  :class:`OpenCLCasOffinder` implements that loop against the
OpenCL-style API (explicit 13-step management, runtime-chosen work-group
size); :class:`SyclCasOffinder` implements the migrated version against
the SYCL-style API (buffers/accessors, work-group size pinned to 256,
selectable comparer variant base/opt1–opt4).  Both produce identical hit
sets — the invariant the whole migration case study rests on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..genome.assembly import Assembly, Chunk
from ..kernels import opencl_kernels, sycl_kernels, vectorized
from ..observability import tracing
from ..kernels.variants import VARIANT_ORDER, get_variant
from ..runtime import opencl as ocl
from ..runtime.launch import LaunchRecord
from ..runtime.sycl import (Buffer, LocalAccessor, NdRange, Queue, Range,
                            TARGET_CONSTANT, free, malloc_device,
                            sycl_read, sycl_read_write, sycl_write)
from .config import ExecutionPolicy, Query, SearchRequest
from .patterns import MISMATCH_LUT, CompiledPattern, compile_pattern
from .records import OffTargetHit, sort_hits
from .workload import QueryWorkload, StageTimings, WorkloadProfile

#: Default device chunk size in bases (the real application sizes chunks
#: to device memory; 4 MiB keeps Python-side latencies reasonable while
#: exercising the chunk loop).
DEFAULT_CHUNK_SIZE = 4 << 20

#: Cap on the per-chunk sample used to measure compare-loop trip counts.
_TRIP_SAMPLE = 4096


@dataclass
class PipelineResult:
    """Everything a pipeline run produced."""

    hits: List[OffTargetHit]
    launches: List[LaunchRecord]
    workload: WorkloadProfile
    wall_time_s: float
    api: str
    variant: str
    work_group_size: Optional[int]

    def sorted_hits(self) -> List[OffTargetHit]:
        return sort_hits(self.hits)


def _measure_trips(chunk_data: np.ndarray, loci: np.ndarray,
                   comp: np.ndarray, comp_index: np.ndarray, plen: int,
                   threshold: int, offset: int) -> Tuple[float, int]:
    """Exact mean compare-loop trip count over a sample of candidates.

    Models Listing 1's early exit: the loop stops after the
    ``threshold + 1``-th mismatch.  Returns ``(mean trips, sample size)``.
    """
    if loci.size == 0:
        return 0.0, 0
    sample = loci[:_TRIP_SAMPLE].astype(np.int64)
    ks = comp_index[offset:offset + plen]
    ks = ks[ks >= 0].astype(np.int64)
    if ks.size == 0:
        return 0.0, int(sample.size)
    pats = comp[ks + offset]
    sites = chunk_data[sample[:, None] + ks[None, :]]
    mism = MISMATCH_LUT[pats[None, :], sites]
    cum = np.cumsum(mism, axis=1)
    exceeded = cum > threshold
    first = np.argmax(exceeded, axis=1)
    has = exceeded.any(axis=1)
    trips = np.where(has, first + 1, ks.size)
    return float(trips.mean()), int(sample.size)


class _TripAverager:
    """Candidate-weighted running mean of compare-loop trip counts."""

    def __init__(self):
        self.total = 0.0
        self.weight = 0

    def add(self, mean: float, count: int) -> None:
        self.total += mean * count
        self.weight += count

    @property
    def mean(self) -> float:
        return self.total / self.weight if self.weight else 0.0


def _round_up(value: int, multiple: int) -> int:
    return (value + multiple - 1) // multiple * multiple


@dataclass
class _ChunkOutput:
    """Raw device outputs for one chunk."""

    candidate_count: int
    per_query: List[Tuple[np.ndarray, np.ndarray, np.ndarray]]
    #: (mm_loci, mm_count, direction) per query, trimmed to entry count.
    loci: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint32))
    flags: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint8))


def _demux_batched(mm_loci: np.ndarray, mm_count: np.ndarray,
                   mm_query: np.ndarray, direction: np.ndarray,
                   nqueries: int
                   ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Split batched comparer outputs back into per-query triples.

    Boolean-mask selection preserves emission order, so each query's
    triple is element-identical to what its own kernel launch would have
    produced.
    """
    per_query = []
    for q in range(nqueries):
        m = mm_query == q
        per_query.append((mm_loci[m].copy(), mm_count[m].copy(),
                          direction[m].copy()))
    return per_query


def _kernel_stage_times(launches: Sequence[LaunchRecord]
                        ) -> Tuple[float, float]:
    """Sum (finder, comparer) kernel wall seconds over launch records."""
    finder_s = 0.0
    comparer_s = 0.0
    for record in launches:
        if not record.is_kernel:
            continue
        if record.name.startswith("finder"):
            finder_s += record.wall_time_s
        elif record.name.startswith("comparer"):
            comparer_s += record.wall_time_s
    return finder_s, comparer_s


class SearchAccumulator:
    """Order-preserving fold of per-chunk device outputs into a result.

    Both the serial chunk loop and the streaming engine feed chunks
    through the same accumulator (the engine in chunk-index order), so
    hit lists, workload counters and even float-summation order are
    identical between the two execution paths — the invariant the engine
    equivalence tests pin down.
    """

    def __init__(self, request: SearchRequest, pattern: CompiledPattern,
                 compiled_queries: Sequence[CompiledPattern]):
        self.request = request
        self.pattern = pattern
        self.compiled_queries = list(compiled_queries)
        self.hits: List[OffTargetHit] = []
        self.positions_scanned = 0
        self.candidates_total = 0
        self.candidates_forward = 0
        self.candidates_reverse = 0
        self.chunk_count = 0
        self.bytes_h2d = 0
        self.bytes_d2h = 0
        self.hit_counts = [0] * len(request.queries)
        self.trip_fwd = [_TripAverager() for _ in request.queries]
        self.trip_rev = [_TripAverager() for _ in request.queries]
        self.merge_time_s = 0.0

    def add_chunk(self, chunk: Chunk, output: _ChunkOutput) -> None:
        started = time.perf_counter()
        pattern = self.pattern
        plen = pattern.plen
        self.chunk_count += 1
        self.positions_scanned += chunk.scan_length
        self.bytes_h2d += chunk.data.nbytes + pattern.comp.nbytes * 2
        self.candidates_total += output.candidate_count
        if output.flags.size:
            self.candidates_forward += int(
                ((output.flags == 0) | (output.flags == 1)).sum())
            self.candidates_reverse += int(
                ((output.flags == 0) | (output.flags == 2)).sum())
        for qi, (query, cq) in enumerate(
                zip(self.request.queries, self.compiled_queries)):
            mm_loci, mm_count, direction = output.per_query[qi]
            self.bytes_d2h += mm_loci.nbytes + mm_count.nbytes \
                + direction.nbytes
            self.hit_counts[qi] += mm_loci.size
            self.hits.extend(self._build_hits(
                chunk, cq, query, mm_loci, mm_count, direction))
            if output.loci.size:
                mean_f, n_f = _measure_trips(
                    chunk.data, output.loci, cq.comp, cq.comp_index,
                    plen, query.max_mismatches, 0)
                mean_r, n_r = _measure_trips(
                    chunk.data, output.loci, cq.comp, cq.comp_index,
                    plen, query.max_mismatches, plen)
                self.trip_fwd[qi].add(mean_f, n_f)
                self.trip_rev[qi].add(mean_r, n_r)
        self.merge_time_s += time.perf_counter() - started

    def build_workload(self, dataset: str, chunk_size: int,
                       stages: Optional[StageTimings] = None
                       ) -> WorkloadProfile:
        plen = self.pattern.plen
        return WorkloadProfile(
            dataset=dataset,
            pattern=self.request.pattern,
            pattern_length=plen,
            positions_scanned=self.positions_scanned,
            candidates=self.candidates_total,
            candidates_forward=self.candidates_forward,
            candidates_reverse=self.candidates_reverse,
            chunk_count=self.chunk_count,
            chunk_capacity=max(1, chunk_size - (plen - 1)),
            bytes_h2d=self.bytes_h2d,
            bytes_d2h=self.bytes_d2h,
            queries=[
                QueryWorkload(
                    query=q.sequence,
                    threshold=q.max_mismatches,
                    checked_forward=int(
                        cq.checked_positions_forward.size),
                    checked_reverse=int(
                        cq.checked_positions_reverse.size),
                    candidates=self.candidates_total,
                    hits=self.hit_counts[qi],
                    avg_trips_forward=self.trip_fwd[qi].mean,
                    avg_trips_reverse=self.trip_rev[qi].mean)
                for qi, (q, cq) in enumerate(
                    zip(self.request.queries, self.compiled_queries))
            ],
            stages=stages)

    @staticmethod
    def _build_hits(chunk: Chunk, cq: CompiledPattern, query: Query,
                    mm_loci: np.ndarray, mm_count: np.ndarray,
                    direction: np.ndarray) -> List[OffTargetHit]:
        plen = cq.plen
        out: List[OffTargetHit] = []
        for lo, mm, d in zip(mm_loci, mm_count, direction):
            lo = int(lo)
            window = chunk.data[lo:lo + plen]
            strand = "+" if d == ord("+") else "-"
            codes = cq.sequence if strand == "+" else cq.rc_sequence
            out.append(OffTargetHit.from_site(
                query=query.sequence, chrom=chunk.chrom,
                position=chunk.start + lo, strand=strand,
                mismatches=int(mm), window=window, query_codes=codes))
        return out


@dataclass
class PackedSites:
    """Resident 2-bit planes for one chunk's candidate windows.

    ``words[i]`` packs candidate ``i``'s full window at two bits per
    position (A=0, C=1, G=2, T=3, codes ascending from bit 0);
    ``invalid[i]`` sets bit ``2p`` for every window position ``p`` whose
    byte was not concrete A/C/G/T.  Both are query-independent, so
    :class:`repro.service.index.GenomeSiteIndex` computes them once at
    build time and every batch reuses them
    (:func:`repro.core.bitparallel.compare_packed_batched`).
    """

    words: np.ndarray    # uint64, one packed window per candidate
    invalid: np.ndarray  # uint64 odd-bit mask of non-ACGT positions

    @property
    def nbytes(self) -> int:
        return self.words.nbytes + self.invalid.nbytes


@dataclass
class ResidentChunk:
    """One chunk's resident candidate data, ready for the comparer.

    The arrays may be views over ``multiprocessing.shared_memory``
    segments (the sharded serving tier maps them zero-copy); the
    comparer entry points only read them, and
    :meth:`_BasePipeline.compare_candidates` re-stages contiguous
    arrays without copying.  When ``packed`` planes are present the
    batched comparer runs bit-parallel over them; ``data`` stays
    available for hit construction and the ambiguity-code fallback.
    """

    chrom: str
    start: int
    scan_length: int
    data: np.ndarray   # uint8 chunk bases (scan region + overlap)
    loci: np.ndarray   # uint32 candidate offsets within the chunk
    flags: np.ndarray  # uint8 strand flags, as the finder emitted them
    packed: Optional[PackedSites] = None


def build_entry_hits(entry: ResidentChunk, queries: Sequence[Query],
                     compiled_queries: Sequence[CompiledPattern],
                     per_query: Sequence[Tuple[np.ndarray, np.ndarray,
                                               np.ndarray]]
                     ) -> List[List[OffTargetHit]]:
    """Render final hits for one resident chunk from comparer triples.

    This is the single hit-construction path for resident serving:
    :meth:`_BasePipeline.compare_resident` uses it after running the
    comparer locally, and the sharded tier's parent uses it (one record
    at a time) after reading triples back from a result ring — so a
    hit is rendered identically no matter which process computed the
    mismatch counts.
    """
    chunk = Chunk(chrom=entry.chrom, start=entry.start,
                  data=entry.data, scan_length=entry.scan_length)
    return [SearchAccumulator._build_hits(chunk, cq, query,
                                          *per_query[qi])
            for qi, (query, cq)
            in enumerate(zip(queries, compiled_queries))]


class _BasePipeline:
    """Shared chunk loop, workload accounting and hit construction."""

    api = "abstract"

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE,
                 mode: str = "vectorized"):
        if mode not in ("vectorized", "interpreted"):
            raise ValueError(f"unknown execution mode {mode!r}")
        self.chunk_size = chunk_size
        self.mode = mode
        self.launches: List[LaunchRecord] = []

    # -- subclass interface ------------------------------------------------

    def _process_chunk(self, chunk: Chunk, pattern: CompiledPattern,
                       queries: Sequence[Query],
                       compiled_queries: Sequence[CompiledPattern],
                       batched: bool = False) -> _ChunkOutput:
        raise NotImplementedError

    def find_candidates(self, chunk: Chunk, pattern: CompiledPattern
                        ) -> Tuple[int, np.ndarray, np.ndarray]:
        """Run only the finder kernel over one chunk.

        Returns ``(count, loci, flags)`` as host arrays trimmed to the
        entry count.  The finder's output depends only on the chunk and
        the PAM pattern — not on any guide query — which is what lets
        :class:`repro.service.index.GenomeSiteIndex` run this once per
        chunk and amortize the scan across every query that follows.
        """
        raise NotImplementedError

    def compare_candidates(self, chunk_data: np.ndarray,
                           loci: np.ndarray, flags: np.ndarray,
                           queries: Sequence[Query],
                           compiled_queries: Sequence[CompiledPattern],
                           batched: bool = True
                           ) -> List[Tuple[np.ndarray, np.ndarray,
                                           np.ndarray]]:
        """Run the comparer over pre-computed candidate sites.

        ``chunk_data``/``loci``/``flags`` are host arrays (e.g. replayed
        from a site index); they are re-staged to the device and the
        batched (or per-query) comparer runs exactly as it would inside
        the chunk loop, so the per-query triples are element-identical
        to a full :meth:`search` over the same chunk.
        """
        raise NotImplementedError

    def compare_resident(self, entries, queries: Sequence[Query],
                         compiled_queries: Sequence[CompiledPattern],
                         batched: bool = True
                         ) -> List[List[List[OffTargetHit]]]:
        """Run the comparer over resident chunks, building final hits.

        ``entries`` is an iterable of :class:`ResidentChunk` (consumed
        lazily, so callers can stream chunk data in one at a time).
        Returns one ``[per-query hit list]`` per entry, in iteration
        order; hits are built by the same
        :meth:`SearchAccumulator._build_hits` the chunk loop uses, so
        concatenating the per-entry lists in chunk order reproduces a
        full search byte-for-byte.  This is the unit of work one shard
        worker executes over its shared-memory slice.

        Entries carrying :class:`PackedSites` planes run the
        bit-parallel comparer over the resident 2-bit words instead of
        re-staging chunk bytes; queries whose checked positions carry
        ambiguity codes (inexpressible in two bits) are routed through
        the byte comparer for that entry, and the per-query triples are
        merged back in input order — both paths emit element-identical
        results, so the split is invisible on the wire.
        """
        results: List[List[List[OffTargetHit]]] = []
        queries = list(queries)
        compiled_queries = list(compiled_queries)
        for entry in entries:
            per_query = self.compare_resident_triples(
                entry, queries, compiled_queries, batched)
            if per_query is None:
                results.append([[] for _ in queries])
                continue
            results.append(build_entry_hits(
                entry, queries, compiled_queries, per_query))
        return results

    def _compare_resident_mixed(self, entry: "ResidentChunk",
                                queries: Sequence[Query],
                                compiled_queries:
                                Sequence[CompiledPattern],
                                batched: bool
                                ) -> List[Tuple[np.ndarray, np.ndarray,
                                                np.ndarray]]:
        """Packed comparer for packable queries, byte fallback for the
        rest; triples merged back in input order."""
        # Deferred: bitparallel imports this module at its top level.
        from .bitparallel import (compare_packed_batched,
                                  window_packable)
        packable = [window_packable(cq) for cq in compiled_queries]
        per_query: List[Optional[Tuple[np.ndarray, np.ndarray,
                                       np.ndarray]]] = \
            [None] * len(queries)
        packed_idx = [i for i, ok in enumerate(packable) if ok]
        if packed_idx:
            packed_out = compare_packed_batched(
                entry.packed, entry.loci, entry.flags,
                [queries[i] for i in packed_idx],
                [compiled_queries[i] for i in packed_idx])
            for slot, i in enumerate(packed_idx):
                per_query[i] = packed_out[slot]
        fallback_idx = [i for i, ok in enumerate(packable) if not ok]
        if fallback_idx:
            byte_out = self.compare_candidates(
                entry.data, entry.loci, entry.flags,
                [queries[i] for i in fallback_idx],
                [compiled_queries[i] for i in fallback_idx],
                batched=batched)
            for slot, i in enumerate(fallback_idx):
                per_query[i] = byte_out[slot]
        return per_query

    def compare_resident_triples(
            self, entry: "ResidentChunk", queries: Sequence[Query],
            compiled_queries: Sequence[CompiledPattern],
            batched: bool = True
            ) -> Optional[List[Tuple[np.ndarray, np.ndarray,
                                     np.ndarray]]]:
        """Raw comparer triples for one resident chunk.

        Same routing as :meth:`compare_resident` (packed planes when
        present, byte comparer otherwise) but stops before hit
        construction: returns ``None`` for an entry with no candidate
        sites, else one ``(mm_loci, mm_count, direction)`` triple per
        query.  The sharded tier's result rings ship these fixed-width
        arrays across the process boundary; the parent renders
        :class:`OffTargetHit` objects from the same triples with
        :func:`build_entry_hits`, so both sides stay
        element-identical.
        """
        if entry.loci.size == 0:
            return None
        if getattr(entry, "packed", None) is not None:
            return self._compare_resident_mixed(
                entry, queries, compiled_queries, batched)
        return self.compare_candidates(
            entry.data, entry.loci, entry.flags, queries,
            compiled_queries, batched=batched)

    @property
    def work_group_size(self) -> Optional[int]:
        raise NotImplementedError

    @property
    def variant(self) -> str:
        return "base"

    # -- main entry ----------------------------------------------------------

    def search(self, assembly: Assembly, request: SearchRequest,
               batched: bool = False, checkpoint=None,
               checkpoint_meta: Optional[Dict] = None) -> PipelineResult:
        """Run the full chunked search over an assembly.

        ``batched=True`` fuses the per-query comparer launches into one
        batched launch per chunk (results identical; see
        :func:`_demux_batched`).  ``checkpoint`` is an optional
        :class:`~repro.resilience.checkpoint.CheckpointSession`: chunks
        it can restore skip the kernels, freshly computed chunks are
        journaled after merging (``checkpoint_meta`` rides along on each
        record, e.g. the device name).
        """
        start_time = time.perf_counter()
        pattern = compile_pattern(request.pattern)
        compiled_queries = [compile_pattern(q.sequence)
                            for q in request.queries]
        acc = SearchAccumulator(request, pattern, compiled_queries)
        launch_base = len(self.launches)
        use_batched = batched and len(request.queries) > 1
        for index, chunk in enumerate(
                assembly.chunks(self.chunk_size, pattern.plen)):
            restored = (checkpoint.restore(chunk)
                        if checkpoint is not None else None)
            if restored is not None:
                tracing.instant("checkpoint_skip", cat="checkpoint",
                                chunk=index)
                output = restored
            else:
                with tracing.span("chunk", cat="chunk", chunk=index):
                    output = self._process_chunk(chunk, pattern,
                                                 request.queries,
                                                 compiled_queries,
                                                 batched=use_batched)
            with tracing.span("merge", cat="merge", chunk=index):
                acc.add_chunk(chunk, output)
            if checkpoint is not None and restored is None:
                with tracing.span("checkpoint_write", cat="checkpoint",
                                  chunk=index):
                    checkpoint.record(chunk, output,
                                      **(checkpoint_meta or {}))
        wall = time.perf_counter() - start_time
        finder_s, comparer_s = _kernel_stage_times(
            self.launches[launch_base:])
        stages = StageTimings(stage_in_s=0.0, finder_s=finder_s,
                              comparer_s=comparer_s,
                              merge_s=acc.merge_time_s, idle_s=0.0,
                              wall_s=wall)
        workload = acc.build_workload(assembly.name, self.chunk_size,
                                      stages)
        return PipelineResult(hits=acc.hits, launches=list(self.launches),
                              workload=workload, wall_time_s=wall,
                              api=self.api, variant=self.variant,
                              work_group_size=self.work_group_size)


# ---------------------------------------------------------------------------
# SYCL pipeline
# ---------------------------------------------------------------------------


class SyclCasOffinder(_BasePipeline):
    """The migrated application: SYCL-style host code (Section III).

    Work-group size is pinned to 256 for both kernels, as in the paper;
    the comparer variant selects the Section IV.B optimization level.
    """

    api = "sycl"

    def __init__(self, device: Union[str, Queue] = "MI100",
                 variant: str = "base",
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 mode: str = "vectorized",
                 work_group_size: int = 256):
        super().__init__(chunk_size, mode)
        self.queue = device if isinstance(device, Queue) else Queue(device)
        self.launches = self.queue.launches
        self._variant = get_variant(variant)
        self._wg = work_group_size

    @property
    def work_group_size(self) -> int:
        return self._wg

    @property
    def variant(self) -> str:
        return self._variant.name

    def _process_chunk(self, chunk, pattern, queries, compiled_queries,
                       batched=False):
        plen = pattern.plen
        wg = self._wg
        scan_len = chunk.scan_length
        capacity = max(1, scan_len)
        vector_mode = self.mode == "vectorized"
        with Buffer(chunk.data, name="chr", write_back=False) as chr_buf, \
                Buffer(pattern.comp, name="pat",
                       write_back=False) as pat_buf, \
                Buffer(pattern.comp_index, name="pat_index",
                       write_back=False) as pat_index_buf, \
                Buffer(count=capacity, dtype=np.uint32,
                       name="loci") as loci_buf, \
                Buffer(count=capacity, dtype=np.uint8,
                       name="flag") as flag_buf, \
                Buffer(count=1, dtype=np.uint32,
                       name="entrycount") as entry_buf:

            def finder_cg(h):
                a_chr = chr_buf.get_access(h, sycl_read)
                a_pat = pat_buf.get_access(h, sycl_read, TARGET_CONSTANT)
                a_idx = pat_index_buf.get_access(h, sycl_read,
                                                 TARGET_CONSTANT)
                a_loci = loci_buf.get_access(h, sycl_write)
                a_flag = flag_buf.get_access(h, sycl_write)
                a_entry = entry_buf.get_access(h, sycl_read_write)
                l_pat = LocalAccessor(np.uint8, plen * 2, h, name="l_pat")
                l_idx = LocalAccessor(np.int32, plen * 2, h,
                                      name="l_pat_index")
                kern = (vectorized.finder_vectorized if vector_mode
                        else sycl_kernels.finder)
                h.parallel_for(
                    NdRange(Range(_round_up(scan_len, wg)), Range(wg)),
                    kern,
                    args=(a_chr, a_pat, a_idx, plen, scan_len, a_loci,
                          a_flag, a_entry, l_pat, l_idx),
                    vectorized=vector_mode, kernel_name="finder")

            self.queue.submit(finder_cg).wait()
            count = int(entry_buf.get_host_access(sycl_read)[0])
            loci_host = loci_buf.get_host_access(sycl_read).data[
                :count].copy()
            flag_host = flag_buf.get_host_access(sycl_read).data[
                :count].copy()
            if batched:
                per_query = self._run_comparer_batched(
                    chr_buf, loci_buf, flag_buf, count, queries,
                    compiled_queries, vector_mode)
            else:
                per_query = []
                for query, cq in zip(queries, compiled_queries):
                    per_query.append(self._run_comparer(
                        chr_buf, loci_buf, flag_buf, count, cq,
                        query.max_mismatches, vector_mode))
            return _ChunkOutput(candidate_count=count,
                                per_query=per_query, loci=loci_host,
                                flags=flag_host)

    def find_candidates(self, chunk, pattern):
        plen = pattern.plen
        wg = self._wg
        scan_len = chunk.scan_length
        capacity = max(1, scan_len)
        vector_mode = self.mode == "vectorized"
        with Buffer(chunk.data, name="chr", write_back=False) as chr_buf, \
                Buffer(pattern.comp, name="pat",
                       write_back=False) as pat_buf, \
                Buffer(pattern.comp_index, name="pat_index",
                       write_back=False) as pat_index_buf, \
                Buffer(count=capacity, dtype=np.uint32,
                       name="loci") as loci_buf, \
                Buffer(count=capacity, dtype=np.uint8,
                       name="flag") as flag_buf, \
                Buffer(count=1, dtype=np.uint32,
                       name="entrycount") as entry_buf:

            def finder_cg(h):
                a_chr = chr_buf.get_access(h, sycl_read)
                a_pat = pat_buf.get_access(h, sycl_read, TARGET_CONSTANT)
                a_idx = pat_index_buf.get_access(h, sycl_read,
                                                 TARGET_CONSTANT)
                a_loci = loci_buf.get_access(h, sycl_write)
                a_flag = flag_buf.get_access(h, sycl_write)
                a_entry = entry_buf.get_access(h, sycl_read_write)
                l_pat = LocalAccessor(np.uint8, plen * 2, h, name="l_pat")
                l_idx = LocalAccessor(np.int32, plen * 2, h,
                                      name="l_pat_index")
                kern = (vectorized.finder_vectorized if vector_mode
                        else sycl_kernels.finder)
                h.parallel_for(
                    NdRange(Range(_round_up(scan_len, wg)), Range(wg)),
                    kern,
                    args=(a_chr, a_pat, a_idx, plen, scan_len, a_loci,
                          a_flag, a_entry, l_pat, l_idx),
                    vectorized=vector_mode, kernel_name="finder")

            self.queue.submit(finder_cg).wait()
            count = int(entry_buf.get_host_access(sycl_read)[0])
            loci_host = loci_buf.get_host_access(sycl_read).data[
                :count].copy()
            flag_host = flag_buf.get_host_access(sycl_read).data[
                :count].copy()
            return count, loci_host, flag_host

    def compare_candidates(self, chunk_data, loci, flags, queries,
                           compiled_queries, batched=True):
        count = int(loci.size)
        vector_mode = self.mode == "vectorized"
        if count == 0:
            return [(np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                     np.zeros(0, np.uint8)) for _ in queries]
        chunk_data = np.ascontiguousarray(chunk_data, dtype=np.uint8)
        loci = np.ascontiguousarray(loci, dtype=np.uint32)
        flags = np.ascontiguousarray(flags, dtype=np.uint8)
        with Buffer(chunk_data, name="chr",
                    write_back=False) as chr_buf, \
                Buffer(loci, name="loci", write_back=False) as loci_buf, \
                Buffer(flags, name="flag", write_back=False) as flag_buf:
            if batched and len(queries) > 1:
                return self._run_comparer_batched(
                    chr_buf, loci_buf, flag_buf, count, list(queries),
                    list(compiled_queries), vector_mode)
            return [self._run_comparer(chr_buf, loci_buf, flag_buf,
                                       count, cq, query.max_mismatches,
                                       vector_mode)
                    for query, cq in zip(queries, compiled_queries)]

    def _run_comparer(self, chr_buf, loci_buf, flag_buf, count, cq,
                      threshold, vector_mode):
        plen = cq.plen
        wg = self._wg
        if count == 0:
            empty = (np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                     np.zeros(0, np.uint8))
            return empty
        out_capacity = 2 * count
        with Buffer(cq.comp, name="comp", write_back=False) as comp_buf, \
                Buffer(cq.comp_index, name="comp_index",
                       write_back=False) as comp_index_buf, \
                Buffer(count=out_capacity, dtype=np.uint32,
                       name="mm_loci") as mm_loci_buf, \
                Buffer(count=out_capacity, dtype=np.uint16,
                       name="mm_count") as mm_count_buf, \
                Buffer(count=out_capacity, dtype=np.uint8,
                       name="direction") as dir_buf, \
                Buffer(count=1, dtype=np.uint32,
                       name="entrycount2") as entry_buf:

            def comparer_cg(h):
                a_chr = chr_buf.get_access(h, sycl_read)
                a_loci = loci_buf.get_access(h, sycl_read)
                a_flag = flag_buf.get_access(h, sycl_read)
                a_comp = comp_buf.get_access(h, sycl_read, TARGET_CONSTANT)
                a_cidx = comp_index_buf.get_access(h, sycl_read,
                                                   TARGET_CONSTANT)
                a_mm_loci = mm_loci_buf.get_access(h, sycl_write)
                a_mm_count = mm_count_buf.get_access(h, sycl_write)
                a_dir = dir_buf.get_access(h, sycl_write)
                a_entry = entry_buf.get_access(h, sycl_read_write)
                l_comp = LocalAccessor(np.uint8, plen * 2, h,
                                       name="l_comp")
                l_cidx = LocalAccessor(np.int32, plen * 2, h,
                                       name="l_comp_index")
                kern = (vectorized.comparer_vectorized if vector_mode
                        else self._variant.kernel)
                h.parallel_for(
                    NdRange(Range(_round_up(count, wg)), Range(wg)),
                    kern,
                    args=(count, a_chr, a_loci, a_mm_loci, a_comp, a_cidx,
                          plen, threshold, a_flag, a_mm_count, a_dir,
                          a_entry, l_comp, l_cidx),
                    vectorized=vector_mode, kernel_name="comparer",
                    variant=self._variant.name)

            self.queue.submit(comparer_cg).wait()
            n_out = int(entry_buf.get_host_access(sycl_read)[0])
            mm_loci = mm_loci_buf.get_host_access(sycl_read).data[
                :n_out].copy()
            mm_count = mm_count_buf.get_host_access(sycl_read).data[
                :n_out].copy()
            direction = dir_buf.get_host_access(sycl_read).data[
                :n_out].copy()
            return mm_loci, mm_count, direction

    def _run_comparer_batched(self, chr_buf, loci_buf, flag_buf, count,
                              queries, compiled_queries, vector_mode):
        nq = len(queries)
        plen = compiled_queries[0].plen
        wg = self._wg
        if count == 0:
            return [(np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                     np.zeros(0, np.uint8)) for _ in range(nq)]
        comp_all = np.concatenate([cq.comp for cq in compiled_queries])
        cidx_all = np.concatenate(
            [cq.comp_index for cq in compiled_queries])
        thresholds = np.array([q.max_mismatches for q in queries],
                              dtype=np.int32)
        out_capacity = 2 * count * nq
        with Buffer(comp_all, name="comp", write_back=False) as comp_buf, \
                Buffer(cidx_all, name="comp_index",
                       write_back=False) as comp_index_buf, \
                Buffer(thresholds, name="thresholds",
                       write_back=False) as thr_buf, \
                Buffer(count=out_capacity, dtype=np.uint32,
                       name="mm_loci") as mm_loci_buf, \
                Buffer(count=out_capacity, dtype=np.uint16,
                       name="mm_count") as mm_count_buf, \
                Buffer(count=out_capacity, dtype=np.uint16,
                       name="mm_query") as mm_query_buf, \
                Buffer(count=out_capacity, dtype=np.uint8,
                       name="direction") as dir_buf, \
                Buffer(count=1, dtype=np.uint32,
                       name="entrycount2") as entry_buf:

            def comparer_cg(h):
                a_chr = chr_buf.get_access(h, sycl_read)
                a_loci = loci_buf.get_access(h, sycl_read)
                a_flag = flag_buf.get_access(h, sycl_read)
                a_comp = comp_buf.get_access(h, sycl_read, TARGET_CONSTANT)
                a_cidx = comp_index_buf.get_access(h, sycl_read,
                                                   TARGET_CONSTANT)
                a_thr = thr_buf.get_access(h, sycl_read, TARGET_CONSTANT)
                a_mm_loci = mm_loci_buf.get_access(h, sycl_write)
                a_mm_count = mm_count_buf.get_access(h, sycl_write)
                a_mm_query = mm_query_buf.get_access(h, sycl_write)
                a_dir = dir_buf.get_access(h, sycl_write)
                a_entry = entry_buf.get_access(h, sycl_read_write)
                l_comp = LocalAccessor(np.uint8, nq * plen * 2, h,
                                       name="l_comp")
                l_cidx = LocalAccessor(np.int32, nq * plen * 2, h,
                                       name="l_comp_index")
                kern = (vectorized.comparer_batched_vectorized
                        if vector_mode else sycl_kernels.comparer_batched)
                h.parallel_for(
                    NdRange(Range(_round_up(count, wg)), Range(wg)),
                    kern,
                    args=(count, nq, a_chr, a_loci, a_mm_loci, a_comp,
                          a_cidx, plen, a_thr, a_flag, a_mm_count,
                          a_mm_query, a_dir, a_entry, l_comp, l_cidx),
                    vectorized=vector_mode,
                    kernel_name="comparer_batched",
                    variant=self._variant.name, batch=nq)

            self.queue.submit(comparer_cg).wait()
            n_out = int(entry_buf.get_host_access(sycl_read)[0])
            mm_loci = mm_loci_buf.get_host_access(sycl_read).data[
                :n_out].copy()
            mm_count = mm_count_buf.get_host_access(sycl_read).data[
                :n_out].copy()
            mm_query = mm_query_buf.get_host_access(sycl_read).data[
                :n_out].copy()
            direction = dir_buf.get_host_access(sycl_read).data[
                :n_out].copy()
            return _demux_batched(mm_loci, mm_count, mm_query, direction,
                                  nq)


class SyclUsmCasOffinder(SyclCasOffinder):
    """The SYCL application on unified shared memory (Section III.A).

    The paper migrates with buffers; USM is the pointer-based alternative
    it names for "easier integration with existing C/C++ programs".  This
    pipeline is the same host logic expressed USM-style: explicit
    ``malloc_device`` / ``memcpy`` / ``free`` instead of buffers and
    accessors, and direct ``queue.parallel_for`` launches with no command
    groups.  Results are identical to the buffer pipeline (tested), which
    is the property that makes the two migration end-states
    interchangeable.
    """

    api = "sycl-usm"

    def _process_chunk(self, chunk, pattern, queries, compiled_queries,
                       batched=False):
        plen = pattern.plen
        wg = self._wg
        scan_len = chunk.scan_length
        capacity = max(1, scan_len)
        vector_mode = self.mode == "vectorized"
        queue = self.queue
        d_chr = malloc_device(chunk.data.size, np.uint8, queue, "chr")
        d_pat = malloc_device(pattern.comp.size, np.uint8, queue, "pat")
        d_idx = malloc_device(pattern.comp_index.size, np.int32, queue,
                              "pat_index")
        d_loci = malloc_device(capacity, np.uint32, queue, "loci")
        d_flag = malloc_device(capacity, np.uint8, queue, "flag")
        d_count = malloc_device(1, np.uint32, queue, "entrycount")
        try:
            queue.memcpy(d_chr, chunk.data)
            queue.memcpy(d_pat, pattern.comp)
            queue.memcpy(d_idx, pattern.comp_index)
            queue.fill(d_count, 0)
            l_pat = LocalAccessor(np.uint8, plen * 2, name="l_pat")
            l_idx = LocalAccessor(np.int32, plen * 2,
                                  name="l_pat_index")
            kern = (vectorized.finder_vectorized if vector_mode
                    else sycl_kernels.finder)
            queue.parallel_for(
                NdRange(Range(_round_up(scan_len, wg)), Range(wg)),
                kern,
                args=(d_chr, d_pat, d_idx, plen, scan_len, d_loci,
                      d_flag, d_count, l_pat, l_idx),
                vectorized=vector_mode, kernel_name="finder").wait()
            count_host = np.zeros(1, dtype=np.uint32)
            queue.memcpy(count_host, d_count)
            count = int(count_host[0])
            loci_host = np.zeros(max(1, count), dtype=np.uint32)
            flag_host = np.zeros(max(1, count), dtype=np.uint8)
            if count:
                queue.memcpy(loci_host, d_loci, count)
                queue.memcpy(flag_host, d_flag, count)
            if batched:
                per_query = self._run_comparer_batched_usm(
                    d_chr, d_loci, d_flag, count, queries,
                    compiled_queries, vector_mode)
            else:
                per_query = []
                for query, cq in zip(queries, compiled_queries):
                    per_query.append(self._run_comparer_usm(
                        d_chr, d_loci, d_flag, count, cq,
                        query.max_mismatches, vector_mode))
            return _ChunkOutput(candidate_count=count,
                                per_query=per_query,
                                loci=loci_host[:count],
                                flags=flag_host[:count])
        finally:
            for pointer in (d_chr, d_pat, d_idx, d_loci, d_flag,
                            d_count):
                free(pointer)

    def _run_comparer_usm(self, d_chr, d_loci, d_flag, count, cq,
                          threshold, vector_mode):
        if count == 0:
            return (np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                    np.zeros(0, np.uint8))
        plen = cq.plen
        wg = self._wg
        queue = self.queue
        out_capacity = 2 * count
        d_comp = malloc_device(cq.comp.size, np.uint8, queue, "comp")
        d_cidx = malloc_device(cq.comp_index.size, np.int32, queue,
                               "comp_index")
        d_mm_loci = malloc_device(out_capacity, np.uint32, queue,
                                  "mm_loci")
        d_mm_count = malloc_device(out_capacity, np.uint16, queue,
                                   "mm_count")
        d_dir = malloc_device(out_capacity, np.uint8, queue,
                              "direction")
        d_entry = malloc_device(1, np.uint32, queue, "entrycount2")
        try:
            queue.memcpy(d_comp, cq.comp)
            queue.memcpy(d_cidx, cq.comp_index)
            queue.fill(d_entry, 0)
            l_comp = LocalAccessor(np.uint8, plen * 2, name="l_comp")
            l_cidx = LocalAccessor(np.int32, plen * 2,
                                   name="l_comp_index")
            kern = (vectorized.comparer_vectorized if vector_mode
                    else self._variant.kernel)
            queue.parallel_for(
                NdRange(Range(_round_up(count, wg)), Range(wg)),
                kern,
                args=(count, d_chr, d_loci, d_mm_loci, d_comp, d_cidx,
                      plen, threshold, d_flag, d_mm_count, d_dir,
                      d_entry, l_comp, l_cidx),
                vectorized=vector_mode, kernel_name="comparer",
                variant=self._variant.name).wait()
            n_host = np.zeros(1, dtype=np.uint32)
            queue.memcpy(n_host, d_entry)
            n_out = int(n_host[0])
            mm_loci = np.zeros(max(1, n_out), dtype=np.uint32)
            mm_count = np.zeros(max(1, n_out), dtype=np.uint16)
            direction = np.zeros(max(1, n_out), dtype=np.uint8)
            if n_out:
                queue.memcpy(mm_loci, d_mm_loci, n_out)
                queue.memcpy(mm_count, d_mm_count, n_out)
                queue.memcpy(direction, d_dir, n_out)
            return mm_loci[:n_out], mm_count[:n_out], direction[:n_out]
        finally:
            for pointer in (d_comp, d_cidx, d_mm_loci, d_mm_count,
                            d_dir, d_entry):
                free(pointer)

    def _run_comparer_batched_usm(self, d_chr, d_loci, d_flag, count,
                                  queries, compiled_queries, vector_mode):
        nq = len(queries)
        if count == 0:
            return [(np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                     np.zeros(0, np.uint8)) for _ in range(nq)]
        plen = compiled_queries[0].plen
        wg = self._wg
        queue = self.queue
        comp_all = np.concatenate([cq.comp for cq in compiled_queries])
        cidx_all = np.concatenate(
            [cq.comp_index for cq in compiled_queries])
        thresholds = np.array([q.max_mismatches for q in queries],
                              dtype=np.int32)
        out_capacity = 2 * count * nq
        d_comp = malloc_device(comp_all.size, np.uint8, queue, "comp")
        d_cidx = malloc_device(cidx_all.size, np.int32, queue,
                               "comp_index")
        d_thr = malloc_device(nq, np.int32, queue, "thresholds")
        d_mm_loci = malloc_device(out_capacity, np.uint32, queue,
                                  "mm_loci")
        d_mm_count = malloc_device(out_capacity, np.uint16, queue,
                                   "mm_count")
        d_mm_query = malloc_device(out_capacity, np.uint16, queue,
                                   "mm_query")
        d_dir = malloc_device(out_capacity, np.uint8, queue,
                              "direction")
        d_entry = malloc_device(1, np.uint32, queue, "entrycount2")
        try:
            queue.memcpy(d_comp, comp_all)
            queue.memcpy(d_cidx, cidx_all)
            queue.memcpy(d_thr, thresholds)
            queue.fill(d_entry, 0)
            l_comp = LocalAccessor(np.uint8, nq * plen * 2,
                                   name="l_comp")
            l_cidx = LocalAccessor(np.int32, nq * plen * 2,
                                   name="l_comp_index")
            kern = (vectorized.comparer_batched_vectorized
                    if vector_mode else sycl_kernels.comparer_batched)
            queue.parallel_for(
                NdRange(Range(_round_up(count, wg)), Range(wg)),
                kern,
                args=(count, nq, d_chr, d_loci, d_mm_loci, d_comp,
                      d_cidx, plen, d_thr, d_flag, d_mm_count,
                      d_mm_query, d_dir, d_entry, l_comp, l_cidx),
                vectorized=vector_mode, kernel_name="comparer_batched",
                variant=self._variant.name, batch=nq).wait()
            n_host = np.zeros(1, dtype=np.uint32)
            queue.memcpy(n_host, d_entry)
            n_out = int(n_host[0])
            mm_loci = np.zeros(max(1, n_out), dtype=np.uint32)
            mm_count = np.zeros(max(1, n_out), dtype=np.uint16)
            mm_query = np.zeros(max(1, n_out), dtype=np.uint16)
            direction = np.zeros(max(1, n_out), dtype=np.uint8)
            if n_out:
                queue.memcpy(mm_loci, d_mm_loci, n_out)
                queue.memcpy(mm_count, d_mm_count, n_out)
                queue.memcpy(mm_query, d_mm_query, n_out)
                queue.memcpy(direction, d_dir, n_out)
            return _demux_batched(mm_loci[:n_out], mm_count[:n_out],
                                  mm_query[:n_out], direction[:n_out],
                                  nq)
        finally:
            for pointer in (d_comp, d_cidx, d_thr, d_mm_loci,
                            d_mm_count, d_mm_query, d_dir, d_entry):
                free(pointer)


# ---------------------------------------------------------------------------
# OpenCL pipeline
# ---------------------------------------------------------------------------


class OpenCLCasOffinder(_BasePipeline):
    """The original application: OpenCL-style host code.

    Every object is created and released explicitly, and the local work
    size is left to the runtime (``clEnqueueNDRangeKernel`` with NULL),
    which on the modeled GPUs picks the 64-lane wavefront size — the
    work-group asymmetry behind part of Table VIII.
    """

    api = "opencl"

    def __init__(self, device: str = "MI100",
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 mode: str = "vectorized"):
        super().__init__(chunk_size, mode)
        platforms = ocl.clGetPlatformIDs()
        wanted = None
        for platform in platforms:
            for dev in platform.get_devices():
                if dev.spec.short_name == device:
                    wanted = dev
        if wanted is None:
            raise KeyError(f"no OpenCL device {device!r}")
        self.device = wanted
        self.context = ocl.clCreateContext([wanted])
        self.queue = ocl.clCreateCommandQueue(self.context, wanted)
        self.launches = self.queue.launches
        self.program = ocl.clCreateProgram(self.context, {
            "finder": ocl.KernelDefinition(
                opencl_kernels.finder,
                [ocl.KernelParam("chr", "global", "r"),
                 ocl.KernelParam("pat", "constant"),
                 ocl.KernelParam("pat_index", "constant"),
                 ocl.KernelParam("plen", "scalar"),
                 ocl.KernelParam("scan_len", "scalar"),
                 ocl.KernelParam("loci", "global", "w"),
                 ocl.KernelParam("flag", "global", "w"),
                 ocl.KernelParam("entrycount", "global", "rw"),
                 ocl.KernelParam("l_pat", "local"),
                 ocl.KernelParam("l_pat_index", "local")],
                vectorized=vectorized.finder_vectorized),
            "comparer": ocl.KernelDefinition(
                opencl_kernels.comparer,
                [ocl.KernelParam("locicnts", "scalar"),
                 ocl.KernelParam("chr", "global", "r"),
                 ocl.KernelParam("loci", "global", "r"),
                 ocl.KernelParam("mm_loci", "global", "w"),
                 ocl.KernelParam("comp", "constant"),
                 ocl.KernelParam("comp_index", "constant"),
                 ocl.KernelParam("plen", "scalar"),
                 ocl.KernelParam("threshold", "scalar"),
                 ocl.KernelParam("flag", "global", "r"),
                 ocl.KernelParam("mm_count", "global", "w"),
                 ocl.KernelParam("direction", "global", "w"),
                 ocl.KernelParam("entrycount", "global", "rw"),
                 ocl.KernelParam("l_comp", "local"),
                 ocl.KernelParam("l_comp_index", "local")],
                vectorized=vectorized.comparer_vectorized),
            "comparer_batched": ocl.KernelDefinition(
                opencl_kernels.comparer_batched,
                [ocl.KernelParam("locicnts", "scalar"),
                 ocl.KernelParam("nqueries", "scalar"),
                 ocl.KernelParam("chr", "global", "r"),
                 ocl.KernelParam("loci", "global", "r"),
                 ocl.KernelParam("mm_loci", "global", "w"),
                 ocl.KernelParam("comp", "constant"),
                 ocl.KernelParam("comp_index", "constant"),
                 ocl.KernelParam("plen", "scalar"),
                 ocl.KernelParam("thresholds", "constant"),
                 ocl.KernelParam("flag", "global", "r"),
                 ocl.KernelParam("mm_count", "global", "w"),
                 ocl.KernelParam("mm_query", "global", "w"),
                 ocl.KernelParam("direction", "global", "w"),
                 ocl.KernelParam("entrycount", "global", "rw"),
                 ocl.KernelParam("l_comp", "local"),
                 ocl.KernelParam("l_comp_index", "local")],
                vectorized=vectorized.comparer_batched_vectorized),
        })
        ocl.clBuildProgram(self.program, "-O3")

    @property
    def work_group_size(self) -> Optional[int]:
        return None  # runtime-chosen

    def release(self) -> None:
        """Step 13: explicit resource release."""
        ocl.clReleaseProgram(self.program)
        ocl.clReleaseCommandQueue(self.queue)
        ocl.clReleaseContext(self.context)

    def __enter__(self) -> "OpenCLCasOffinder":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def _process_chunk(self, chunk, pattern, queries, compiled_queries,
                       batched=False):
        plen = pattern.plen
        scan_len = chunk.scan_length
        capacity = max(1, scan_len)
        vector_mode = self.mode == "vectorized"
        ctx, q = self.context, self.queue
        chr_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            chunk.data.nbytes, chunk.data, name="chr")
        pat_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            pattern.comp.nbytes, pattern.comp, name="pat")
        pat_index_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            pattern.comp_index.nbytes, pattern.comp_index,
            name="pat_index")
        loci_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_WRITE, capacity * 4, name="loci",
            dtype=np.uint32)
        flag_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_WRITE, capacity, name="flag",
            dtype=np.uint8)
        entry_host = np.zeros(1, dtype=np.uint32)
        entry_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_WRITE | ocl.CL_MEM_COPY_HOST_PTR,
            4, entry_host, name="entrycount")
        finder = ocl.clCreateKernel(self.program, "finder")
        for index, arg in enumerate((
                chr_mem, pat_mem, pat_index_mem, plen, scan_len, loci_mem,
                flag_mem, entry_mem,
                ocl.LocalArg(np.uint8, plen * 2),
                ocl.LocalArg(np.int32, plen * 2))):
            ocl.clSetKernelArg(finder, index, arg)
        global_size = _round_up(scan_len, 256)
        ocl.clEnqueueNDRangeKernel(q, finder, global_size, None,
                                   vectorized=vector_mode)
        ocl.clFinish(q)
        ocl.clEnqueueReadBuffer(q, entry_mem, entry_host)
        count = int(entry_host[0])
        loci_host = np.zeros(max(1, count), dtype=np.uint32)
        flag_host = np.zeros(max(1, count), dtype=np.uint8)
        if count:
            ocl.clEnqueueReadBuffer(q, loci_mem, loci_host,
                                    size_bytes=count * 4)
            ocl.clEnqueueReadBuffer(q, flag_mem, flag_host,
                                    size_bytes=count)
        if batched:
            per_query = self._run_comparer_batched(
                chr_mem, loci_mem, flag_mem, count, queries,
                compiled_queries, vector_mode)
        else:
            per_query = []
            for query, cq in zip(queries, compiled_queries):
                per_query.append(self._run_comparer(
                    chr_mem, loci_mem, flag_mem, count, cq,
                    query.max_mismatches, vector_mode))
        for mem in (chr_mem, pat_mem, pat_index_mem, loci_mem, flag_mem,
                    entry_mem):
            ocl.clReleaseMemObject(mem)
        ocl.clReleaseKernel(finder)
        return _ChunkOutput(candidate_count=count, per_query=per_query,
                            loci=loci_host[:count],
                            flags=flag_host[:count])

    def find_candidates(self, chunk, pattern):
        plen = pattern.plen
        scan_len = chunk.scan_length
        capacity = max(1, scan_len)
        vector_mode = self.mode == "vectorized"
        ctx, q = self.context, self.queue
        chr_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            chunk.data.nbytes, chunk.data, name="chr")
        pat_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            pattern.comp.nbytes, pattern.comp, name="pat")
        pat_index_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            pattern.comp_index.nbytes, pattern.comp_index,
            name="pat_index")
        loci_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_WRITE, capacity * 4, name="loci",
            dtype=np.uint32)
        flag_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_WRITE, capacity, name="flag",
            dtype=np.uint8)
        entry_host = np.zeros(1, dtype=np.uint32)
        entry_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_WRITE | ocl.CL_MEM_COPY_HOST_PTR,
            4, entry_host, name="entrycount")
        finder = ocl.clCreateKernel(self.program, "finder")
        for index, arg in enumerate((
                chr_mem, pat_mem, pat_index_mem, plen, scan_len, loci_mem,
                flag_mem, entry_mem,
                ocl.LocalArg(np.uint8, plen * 2),
                ocl.LocalArg(np.int32, plen * 2))):
            ocl.clSetKernelArg(finder, index, arg)
        ocl.clEnqueueNDRangeKernel(q, finder, _round_up(scan_len, 256),
                                   None, vectorized=vector_mode)
        ocl.clFinish(q)
        ocl.clEnqueueReadBuffer(q, entry_mem, entry_host)
        count = int(entry_host[0])
        loci_host = np.zeros(max(1, count), dtype=np.uint32)
        flag_host = np.zeros(max(1, count), dtype=np.uint8)
        if count:
            ocl.clEnqueueReadBuffer(q, loci_mem, loci_host,
                                    size_bytes=count * 4)
            ocl.clEnqueueReadBuffer(q, flag_mem, flag_host,
                                    size_bytes=count)
        for mem in (chr_mem, pat_mem, pat_index_mem, loci_mem, flag_mem,
                    entry_mem):
            ocl.clReleaseMemObject(mem)
        ocl.clReleaseKernel(finder)
        return count, loci_host[:count], flag_host[:count]

    def compare_candidates(self, chunk_data, loci, flags, queries,
                           compiled_queries, batched=True):
        count = int(loci.size)
        vector_mode = self.mode == "vectorized"
        if count == 0:
            return [(np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                     np.zeros(0, np.uint8)) for _ in queries]
        chunk_data = np.ascontiguousarray(chunk_data, dtype=np.uint8)
        loci = np.ascontiguousarray(loci, dtype=np.uint32)
        flags = np.ascontiguousarray(flags, dtype=np.uint8)
        ctx = self.context
        chr_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            chunk_data.nbytes, chunk_data, name="chr")
        loci_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            loci.nbytes, loci, name="loci")
        flag_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            flags.nbytes, flags, name="flag")
        try:
            if batched and len(queries) > 1:
                return self._run_comparer_batched(
                    chr_mem, loci_mem, flag_mem, count, list(queries),
                    list(compiled_queries), vector_mode)
            return [self._run_comparer(chr_mem, loci_mem, flag_mem,
                                       count, cq, query.max_mismatches,
                                       vector_mode)
                    for query, cq in zip(queries, compiled_queries)]
        finally:
            for mem in (chr_mem, loci_mem, flag_mem):
                ocl.clReleaseMemObject(mem)

    def _run_comparer(self, chr_mem, loci_mem, flag_mem, count, cq,
                      threshold, vector_mode):
        if count == 0:
            return (np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                    np.zeros(0, np.uint8))
        ctx, q = self.context, self.queue
        plen = cq.plen
        out_capacity = 2 * count
        comp_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            cq.comp.nbytes, cq.comp, name="comp")
        comp_index_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            cq.comp_index.nbytes, cq.comp_index, name="comp_index")
        mm_loci_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_WRITE_ONLY, out_capacity * 4, name="mm_loci",
            dtype=np.uint32)
        mm_count_host = np.zeros(out_capacity, dtype=np.uint16)
        mm_count_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_WRITE_ONLY, out_capacity * 2, name="mm_count",
            dtype=np.uint16)
        dir_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_WRITE_ONLY, out_capacity, name="direction",
            dtype=np.uint8)
        entry_host = np.zeros(1, dtype=np.uint32)
        entry_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_WRITE | ocl.CL_MEM_COPY_HOST_PTR,
            4, entry_host, name="entrycount2")
        comparer = ocl.clCreateKernel(self.program, "comparer")
        for index, arg in enumerate((
                count, chr_mem, loci_mem, mm_loci_mem, comp_mem,
                comp_index_mem, plen, threshold, flag_mem, mm_count_mem,
                dir_mem, entry_mem,
                ocl.LocalArg(np.uint8, plen * 2),
                ocl.LocalArg(np.int32, plen * 2))):
            ocl.clSetKernelArg(comparer, index, arg)
        global_size = _round_up(count, 256)
        ocl.clEnqueueNDRangeKernel(q, comparer, global_size, None,
                                   vectorized=vector_mode)
        ocl.clFinish(q)
        ocl.clEnqueueReadBuffer(q, entry_mem, entry_host)
        n_out = int(entry_host[0])
        mm_loci = np.zeros(max(1, n_out), dtype=np.uint32)
        direction = np.zeros(max(1, n_out), dtype=np.uint8)
        if n_out:
            ocl.clEnqueueReadBuffer(q, mm_loci_mem, mm_loci,
                                    size_bytes=n_out * 4)
            ocl.clEnqueueReadBuffer(q, mm_count_mem, mm_count_host,
                                    size_bytes=n_out * 2)
            ocl.clEnqueueReadBuffer(q, dir_mem, direction,
                                    size_bytes=n_out)
        for mem in (comp_mem, comp_index_mem, mm_loci_mem, mm_count_mem,
                    dir_mem, entry_mem):
            ocl.clReleaseMemObject(mem)
        ocl.clReleaseKernel(comparer)
        return (mm_loci[:n_out], mm_count_host[:n_out].copy(),
                direction[:n_out])

    def _run_comparer_batched(self, chr_mem, loci_mem, flag_mem, count,
                              queries, compiled_queries, vector_mode):
        nq = len(queries)
        if count == 0:
            return [(np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                     np.zeros(0, np.uint8)) for _ in range(nq)]
        ctx, q = self.context, self.queue
        plen = compiled_queries[0].plen
        comp_all = np.concatenate([cq.comp for cq in compiled_queries])
        cidx_all = np.concatenate(
            [cq.comp_index for cq in compiled_queries])
        thresholds = np.array([qr.max_mismatches for qr in queries],
                              dtype=np.int32)
        out_capacity = 2 * count * nq
        comp_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            comp_all.nbytes, comp_all, name="comp")
        comp_index_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            cidx_all.nbytes, cidx_all, name="comp_index")
        thr_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_ONLY | ocl.CL_MEM_COPY_HOST_PTR,
            thresholds.nbytes, thresholds, name="thresholds")
        mm_loci_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_WRITE_ONLY, out_capacity * 4, name="mm_loci",
            dtype=np.uint32)
        mm_count_host = np.zeros(out_capacity, dtype=np.uint16)
        mm_count_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_WRITE_ONLY, out_capacity * 2, name="mm_count",
            dtype=np.uint16)
        mm_query_host = np.zeros(out_capacity, dtype=np.uint16)
        mm_query_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_WRITE_ONLY, out_capacity * 2, name="mm_query",
            dtype=np.uint16)
        dir_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_WRITE_ONLY, out_capacity, name="direction",
            dtype=np.uint8)
        entry_host = np.zeros(1, dtype=np.uint32)
        entry_mem = ocl.clCreateBuffer(
            ctx, ocl.CL_MEM_READ_WRITE | ocl.CL_MEM_COPY_HOST_PTR,
            4, entry_host, name="entrycount2")
        comparer = ocl.clCreateKernel(self.program, "comparer_batched")
        for index, arg in enumerate((
                count, nq, chr_mem, loci_mem, mm_loci_mem, comp_mem,
                comp_index_mem, plen, thr_mem, flag_mem, mm_count_mem,
                mm_query_mem, dir_mem, entry_mem,
                ocl.LocalArg(np.uint8, nq * plen * 2),
                ocl.LocalArg(np.int32, nq * plen * 2))):
            ocl.clSetKernelArg(comparer, index, arg)
        global_size = _round_up(count, 256)
        ocl.clEnqueueNDRangeKernel(q, comparer, global_size, None,
                                   vectorized=vector_mode, batch=nq)
        ocl.clFinish(q)
        ocl.clEnqueueReadBuffer(q, entry_mem, entry_host)
        n_out = int(entry_host[0])
        mm_loci = np.zeros(max(1, n_out), dtype=np.uint32)
        direction = np.zeros(max(1, n_out), dtype=np.uint8)
        if n_out:
            ocl.clEnqueueReadBuffer(q, mm_loci_mem, mm_loci,
                                    size_bytes=n_out * 4)
            ocl.clEnqueueReadBuffer(q, mm_count_mem, mm_count_host,
                                    size_bytes=n_out * 2)
            ocl.clEnqueueReadBuffer(q, mm_query_mem, mm_query_host,
                                    size_bytes=n_out * 2)
            ocl.clEnqueueReadBuffer(q, dir_mem, direction,
                                    size_bytes=n_out)
        for mem in (comp_mem, comp_index_mem, thr_mem, mm_loci_mem,
                    mm_count_mem, mm_query_mem, dir_mem, entry_mem):
            ocl.clReleaseMemObject(mem)
        ocl.clReleaseKernel(comparer)
        return _demux_batched(mm_loci[:n_out],
                              mm_count_host[:n_out].copy(),
                              mm_query_host[:n_out].copy(),
                              direction[:n_out], nq)


def make_pipeline(api: str = "sycl", device: str = "MI100",
                  variant: str = "base", mode: str = "vectorized",
                  chunk_size: int = DEFAULT_CHUNK_SIZE,
                  work_group_size: int = 256) -> _BasePipeline:
    """Construct a pipeline instance for the given API.

    OpenCL pipelines must be released after use (``with`` or
    ``.release()``); the streaming engine uses this factory to build one
    pipeline per worker so each has its own queue.
    """
    if api == "sycl":
        return SyclCasOffinder(device=device, variant=variant,
                               chunk_size=chunk_size, mode=mode,
                               work_group_size=work_group_size)
    if api == "sycl-usm":
        return SyclUsmCasOffinder(device=device, variant=variant,
                                  chunk_size=chunk_size, mode=mode,
                                  work_group_size=work_group_size)
    if api == "opencl":
        return OpenCLCasOffinder(device=device, chunk_size=chunk_size,
                                 mode=mode)
    raise ValueError(
        f"unknown api {api!r}; choose 'sycl', 'sycl-usm' or 'opencl'")


def search(assembly: Assembly, request: SearchRequest,
           api: str = "sycl", device: str = "MI100",
           variant: str = "base", mode: str = "vectorized",
           chunk_size: int = DEFAULT_CHUNK_SIZE,
           work_group_size: int = 256,
           execution: Optional[ExecutionPolicy] = None) -> PipelineResult:
    """One-call convenience wrapper over both pipelines.

    ``execution`` opts into the streaming engine / batched comparer; when
    omitted, ``request.execution`` is honoured, and when that is also
    unset the classic serial loop runs.
    """
    policy = execution if execution is not None else request.execution
    if policy is not None and policy.streaming:
        from .engine import StreamingEngine
        engine = StreamingEngine(policy, api=api, device=device,
                                 variant=variant, mode=mode,
                                 chunk_size=chunk_size,
                                 work_group_size=work_group_size)
        return engine.search(assembly, request)
    batched = policy is not None and policy.batch_queries
    pipeline = make_pipeline(api=api, device=device, variant=variant,
                             mode=mode, chunk_size=chunk_size,
                             work_group_size=work_group_size)
    from ..resilience.checkpoint import resolve_session
    session = resolve_session(policy, assembly, request, chunk_size)
    meta = {"device": device}
    try:
        if api == "opencl":
            with pipeline:
                return pipeline.search(assembly, request, batched=batched,
                                       checkpoint=session,
                                       checkpoint_meta=meta)
        return pipeline.search(assembly, request, batched=batched,
                               checkpoint=session, checkpoint_meta=meta)
    finally:
        if session is not None:
            session.close()
