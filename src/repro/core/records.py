"""Off-target hit records and the output format.

The host program "selects potential off-target sites ... and saves the
results (chromosome number, position, direction, the number of mismatched
bases and potential off-target DNA sequence with mismatched bases) in a
file for analysis" (Section II.A).  :class:`OffTargetHit` is that record;
:func:`write_hits` emits the classic Cas-OFFinder tab-separated format
with mismatched bases shown in lowercase.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from .patterns import MISMATCH_LUT, reverse_complement


@dataclass(frozen=True, order=True)
class OffTargetHit:
    """One reported off-target site."""

    query: str          # query sequence as given (forward orientation)
    chrom: str
    position: int       # 0-based site start on the forward strand
    strand: str         # "+" or "-"
    mismatches: int
    site: str           # site sequence, query orientation, mismatches lower

    @classmethod
    def from_site(cls, query: str, chrom: str, position: int, strand: str,
                  mismatches: int, window: np.ndarray,
                  query_codes: np.ndarray) -> "OffTargetHit":
        """Build a hit, rendering the display sequence.

        ``window`` is the forward-strand genome window; ``query_codes``
        is the query in the orientation that was compared against the
        window (i.e. the reverse complement of the query for ``-`` hits).
        """
        site_fwd = np.asarray(window, dtype=np.uint8)
        q = np.asarray(query_codes, dtype=np.uint8)
        mism = MISMATCH_LUT[q, site_fwd].astype(bool)
        if strand == "-":
            display = reverse_complement(site_fwd)
            mism = mism[::-1]
        else:
            display = site_fwd.copy()
        lower = mism & (display >= ord("A")) & (display <= ord("Z"))
        display[lower] += 32
        return cls(query=query, chrom=chrom, position=int(position),
                   strand=strand, mismatches=int(mismatches),
                   site=display.tobytes().decode("ascii"))

    def to_tsv(self) -> str:
        return (f"{self.query}\t{self.chrom}\t{self.position}\t"
                f"{self.site}\t{self.strand}\t{self.mismatches}")


def sort_hits(hits: Iterable[OffTargetHit]) -> List[OffTargetHit]:
    """Canonical deterministic order for comparing result sets."""
    return sorted(hits, key=lambda h: (h.query, h.chrom, h.position,
                                       h.strand, h.mismatches, h.site))


HEADER = "#Query\tChromosome\tPosition\tSite\tDirection\tMismatches"


def write_hits(hits: Iterable[OffTargetHit],
               destination: Union[str, os.PathLike, io.TextIOBase],
               header: bool = True) -> None:
    """Write hits in Cas-OFFinder's tab-separated output format.

    Path destinations are written crash-safely: the rows go to a
    ``.part`` temp file in the destination directory, fsynced, and
    atomically renamed into place — a reader never observes a
    truncated hits file, only the previous one or the complete new one.
    """
    if isinstance(destination, (str, os.PathLike)):
        path = os.fspath(destination)
        part = path + ".part"
        try:
            with open(part, "w", encoding="ascii") as handle:
                write_hits(hits, handle, header)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(part, path)
        except BaseException:
            try:
                os.unlink(part)
            except OSError:
                pass
            raise
        return
    if header:
        destination.write(HEADER + "\n")
    for hit in hits:
        destination.write(hit.to_tsv() + "\n")


def read_hits(source: Union[str, os.PathLike, io.TextIOBase]
              ) -> List[OffTargetHit]:
    """Parse a hits file written by :func:`write_hits`."""
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="ascii") as handle:
            return read_hits(handle)
    hits: List[OffTargetHit] = []
    for lineno, line in enumerate(source, 1):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != 6:
            raise ValueError(
                f"line {lineno}: expected 6 tab-separated fields, "
                f"got {len(fields)}")
        query, chrom, position, site, strand, mismatches = fields
        hits.append(OffTargetHit(query=query, chrom=chrom,
                                 position=int(position), strand=strand,
                                 mismatches=int(mismatches), site=site))
    return hits
