"""Workload profiles: what a search actually did, in counters.

A pipeline run produces a :class:`WorkloadProfile` describing the work the
kernels performed — positions scanned, candidates found, average
compare-loop trip counts, bytes moved.  The device timing model
(:mod:`repro.devices.timing`) re-costs a profile on any modeled GPU, and
:meth:`WorkloadProfile.scaled` extrapolates a profile measured on a
scaled-down synthetic genome to full-genome size (the documented
substitution for the real hg19/hg38 runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional


@dataclass
class StageTimings:
    """Where wall-clock time went in one pipeline run, per stage.

    The serial chunk loop interleaves all stages on one thread; the
    streaming engine overlaps them, and these counters make the overlap
    observable instead of asserted.  All values are seconds of work
    summed across chunks (and workers, for the busy stages), so with
    overlap ``total_busy_s`` may exceed ``wall_s``.

    * ``stage_in_s`` — host-side chunk staging (slicing, materialising
      the contiguous device view) before kernels can run;
    * ``finder_s`` / ``comparer_s`` — kernel launches, from the launch
      records;
    * ``merge_s`` — hit construction and workload accounting;
    * ``idle_s`` — time the merging thread spent waiting for chunk
      results (0 for the serial loop, which never waits).
    """

    stage_in_s: float = 0.0
    finder_s: float = 0.0
    comparer_s: float = 0.0
    merge_s: float = 0.0
    idle_s: float = 0.0
    wall_s: float = 0.0

    @property
    def total_busy_s(self) -> float:
        return (self.stage_in_s + self.finder_s + self.comparer_s
                + self.merge_s)

    @property
    def overlap_ratio(self) -> float:
        """Busy seconds per wall second (> 1 means stages overlapped)."""
        if self.wall_s <= 0:
            return 0.0
        return self.total_busy_s / self.wall_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "stage_in_s": self.stage_in_s,
            "finder_s": self.finder_s,
            "comparer_s": self.comparer_s,
            "merge_s": self.merge_s,
            "idle_s": self.idle_s,
            "wall_s": self.wall_s,
        }


@dataclass
class QueryWorkload:
    """Comparer-kernel workload for one query across all chunks."""

    query: str
    threshold: int
    #: Non-N positions checked per strand.
    checked_forward: int
    checked_reverse: int
    #: Candidate loci fed to the comparer (summed over chunks).
    candidates: int
    #: Reported hits at or under the threshold.
    hits: int
    #: Mean compare-loop iterations actually executed per candidate,
    #: including the early exit at threshold + 1 mismatches.
    avg_trips_forward: float
    avg_trips_reverse: float

    def scaled(self, factor: float) -> "QueryWorkload":
        return replace(self, candidates=int(self.candidates * factor),
                       hits=int(self.hits * factor))


@dataclass
class WorkloadProfile:
    """Aggregate workload of one full search run."""

    dataset: str
    pattern: str
    pattern_length: int
    #: Positions the finder scanned (both strands tested per position).
    positions_scanned: int
    #: Candidate sites the finder emitted (summed over chunks).
    candidates: int
    #: Candidates whose flag selects the forward / reverse comparison
    #: (flag 0 counts toward both).
    candidates_forward: int
    candidates_reverse: int
    chunk_count: int
    #: Positions one full-size chunk scans (chunk size minus overlap);
    #: used to extrapolate the chunk count when the profile is scaled.
    chunk_capacity: int
    #: Genome bytes uploaded to the device.
    bytes_h2d: int
    #: Result bytes read back.
    bytes_d2h: int
    queries: List[QueryWorkload] = field(default_factory=list)
    #: Per-stage wall-time breakdown (populated by the streaming engine;
    #: the serial loop fills the busy stages and leaves idle at 0).
    stages: Optional[StageTimings] = None

    @property
    def total_hits(self) -> int:
        return sum(q.hits for q in self.queries)

    @property
    def candidate_density(self) -> float:
        """Candidates per scanned position."""
        if not self.positions_scanned:
            return 0.0
        return self.candidates / self.positions_scanned

    def scaled(self, factor: float) -> "WorkloadProfile":
        """Extrapolate every extensive counter by ``factor``.

        Intensive quantities (densities, average trip counts, pattern
        length) are preserved; chunk count scales because chunk size is a
        device property, not a dataset property.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            positions_scanned=int(self.positions_scanned * factor),
            candidates=int(self.candidates * factor),
            candidates_forward=int(self.candidates_forward * factor),
            candidates_reverse=int(self.candidates_reverse * factor),
            chunk_count=max(
                1, -(-int(self.positions_scanned * factor)
                     // max(1, self.chunk_capacity))),
            bytes_h2d=int(self.bytes_h2d * factor),
            bytes_d2h=int(self.bytes_d2h * factor),
            queries=[q.scaled(factor) for q in self.queries],
            # Measured timings do not extrapolate with workload size.
            stages=None)

    def summary(self) -> Dict[str, float]:
        return {
            "dataset": self.dataset,
            "positions_scanned": self.positions_scanned,
            "candidates": self.candidates,
            "candidate_density": self.candidate_density,
            "chunks": self.chunk_count,
            "queries": len(self.queries),
            "hits": self.total_hits,
        }
