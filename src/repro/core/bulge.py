"""Bulge-aware off-target search (DNA and RNA bulges).

Section II.A notes Cas-OFFinder "can also predict off-target sites with
deletions or insertions" — the bulge search that ships as the
``cas-offinder-bulge`` wrapper.  This module implements that wrapper's
strategy on top of the standard pipeline:

* a **DNA bulge** of size *k* means the genomic site carries *k* extra
  bases relative to the guide; the wrapper searches a window *k* longer,
  with queries derived by inserting *k* wildcard bases at each interior
  guide position;
* an **RNA bulge** of size *k* means the genomic site is *k* bases
  shorter; queries are derived by deleting *k* guide bases at each
  interior position and the window shrinks accordingly.

All derived queries of one (type, size) class share a window length, so
each class runs as a single multi-query pipeline search.  Results are
annotated with the bulge type/size and deduplicated per genomic site,
keeping the description with the fewest bulges, then mismatches —
matching the wrapper's reporting convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..genome.assembly import Assembly
from .config import Query, SearchRequest
from .patterns import PatternError, validate_iupac
from .pipeline import DEFAULT_CHUNK_SIZE, search
from .records import OffTargetHit


@dataclass(frozen=True)
class BulgeHit:
    """An off-target hit annotated with its bulge class."""

    hit: OffTargetHit
    bulge_type: str          # "X" (none), "DNA" or "RNA"
    bulge_size: int
    #: Original (un-bulged) guide the hit derives from.
    guide: str

    @property
    def site_key(self) -> Tuple[str, int, str]:
        return (self.hit.chrom, self.hit.position, self.hit.strand)


def _split_pattern(pattern: str) -> Tuple[int, str]:
    """Split a pattern into (guide length, PAM suffix).

    Cas-OFFinder patterns put the PAM as the trailing non-N block
    (e.g. ``NNNN...NRG``); the leading ``N`` run is the guide region.
    """
    codes = validate_iupac(pattern)
    text = codes.tobytes().decode("ascii")
    guide_len = len(text) - len(text.lstrip("N"))
    pam = text[guide_len:]
    if guide_len == 0:
        raise PatternError(
            f"pattern {pattern!r} has no leading N guide region; bulge "
            "search needs one")
    return guide_len, pam


def _dna_bulge_queries(guide: str, pam_len: int, size: int
                       ) -> List[Tuple[str, str]]:
    """(derived query, original guide) pairs for DNA bulges of ``size``."""
    derived = []
    for position in range(1, len(guide)):
        bulged = guide[:position] + "N" * size + guide[position:]
        derived.append((bulged + "N" * pam_len, guide))
    return derived


def _rna_bulge_queries(guide: str, pam_len: int, size: int
                       ) -> List[Tuple[str, str]]:
    """(derived query, original guide) pairs for RNA bulges of ``size``."""
    derived = []
    if len(guide) <= size:
        return derived
    for position in range(1, len(guide) - size):
        shrunk = guide[:position] + guide[position + size:]
        derived.append((shrunk + "N" * pam_len, guide))
    return derived


def bulge_search(assembly: Assembly, pattern: str,
                 guides: Sequence[str], max_mismatches: int,
                 dna_bulge: int = 1, rna_bulge: int = 1,
                 api: str = "sycl", device: str = "MI100",
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 ) -> List[BulgeHit]:
    """Search with mismatches plus DNA/RNA bulges up to the given sizes.

    ``guides`` are the guide sequences *without* PAM (the wrapper's
    convention); the PAM comes from ``pattern``'s trailing block.
    Returns deduplicated, annotated hits sorted canonically.
    """
    if dna_bulge < 0 or rna_bulge < 0:
        raise ValueError("bulge sizes must be non-negative")
    guide_len, pam = _split_pattern(pattern)
    pam_len = len(pam)
    for guide in guides:
        validate_iupac(guide)
        if len(guide) != guide_len:
            raise ValueError(
                f"guide {guide!r} length {len(guide)} does not match the "
                f"pattern's guide region ({guide_len})")

    # Search classes: (bulge_type, size, window pattern, derived queries).
    classes: List[Tuple[str, int, str, List[Tuple[str, str]]]] = []
    base_queries = [(g + "N" * pam_len, g) for g in guides]
    classes.append(("X", 0, pattern, base_queries))
    for size in range(1, dna_bulge + 1):
        derived: List[Tuple[str, str]] = []
        for guide in guides:
            derived.extend(_dna_bulge_queries(guide, pam_len, size))
        if derived:
            classes.append(("DNA", size, "N" * size + pattern, derived))
    for size in range(1, rna_bulge + 1):
        derived = []
        for guide in guides:
            derived.extend(_rna_bulge_queries(guide, pam_len, size))
        if derived:
            pam_start = guide_len - size
            classes.append(("RNA", size,
                            "N" * pam_start + pam, derived))

    annotated: List[BulgeHit] = []
    for bulge_type, size, window_pattern, derived in classes:
        guide_of_query: Dict[str, str] = {}
        unique_queries: List[Query] = []
        for query_text, guide in derived:
            if query_text not in guide_of_query:
                guide_of_query[query_text] = guide
                unique_queries.append(Query(query_text, max_mismatches))
        request = SearchRequest(pattern=window_pattern,
                                queries=unique_queries)
        result = search(assembly, request, api=api, device=device,
                        chunk_size=chunk_size)
        for hit in result.hits:
            annotated.append(BulgeHit(
                hit=hit, bulge_type=bulge_type, bulge_size=size,
                guide=guide_of_query[hit.query]))

    # Deduplicate per genomic site: prefer no bulge, then smaller
    # bulges, then fewer mismatches.
    best: Dict[Tuple[str, int, str, str], BulgeHit] = {}
    for bulge_hit in annotated:
        key = (*bulge_hit.site_key, bulge_hit.guide)
        current = best.get(key)
        rank = (bulge_hit.bulge_size, bulge_hit.hit.mismatches)
        if current is None or rank < (current.bulge_size,
                                      current.hit.mismatches):
            best[key] = bulge_hit
    return sorted(best.values(),
                  key=lambda b: (b.guide, b.hit.chrom, b.hit.position,
                                 b.hit.strand))
