"""Bulge-aware off-target search (DNA and RNA bulges).

Section II.A notes Cas-OFFinder "can also predict off-target sites with
deletions or insertions" — the bulge search that ships as the
``cas-offinder-bulge`` wrapper.  This module implements that wrapper's
strategy on top of the standard pipeline:

* a **DNA bulge** of size *k* means the genomic site carries *k* extra
  bases relative to the guide; the wrapper searches a window *k* longer,
  with queries derived by inserting *k* wildcard bases at each interior
  guide position;
* an **RNA bulge** of size *k* means the genomic site is *k* bases
  shorter; queries are derived by deleting *k* guide bases at each
  interior position and the window shrinks accordingly.

All derived queries of one (type, size) class share a window length, so
each class runs as a single multi-query pipeline search.  Results are
annotated with the bulge type/size and deduplicated per genomic site,
keeping the description with the fewest bulges, then mismatches.  Ties
on (bulges, mismatches) are broken deterministically by bulge type
(none, then DNA, then RNA) and finally by bulge position — the kept
record never depends on dict insertion or search-class order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..genome.assembly import Assembly
from .config import Query, SearchRequest
from .patterns import PatternError, validate_iupac
from .pipeline import DEFAULT_CHUNK_SIZE, search
from .records import OffTargetHit


@dataclass(frozen=True)
class BulgeHit:
    """An off-target hit annotated with its bulge class."""

    hit: OffTargetHit
    bulge_type: str          # "X" (none), "DNA" or "RNA"
    bulge_size: int
    #: Original (un-bulged) guide the hit derives from.
    guide: str
    #: Guide position the bulge was introduced at (0 for no bulge).
    bulge_position: int = 0

    @property
    def site_key(self) -> Tuple[str, int, str]:
        return (self.hit.chrom, self.hit.position, self.hit.strand)


#: Dedup preference between bulge classes when everything else ties:
#: an ungapped description beats a DNA bulge beats an RNA bulge.
_TYPE_RANK = {"X": 0, "DNA": 1, "RNA": 2}


def _dedupe_rank(bulge_hit: BulgeHit) -> Tuple[int, int, int, int]:
    """Total order for picking one description of a genomic site."""
    return (bulge_hit.bulge_size, bulge_hit.hit.mismatches,
            _TYPE_RANK[bulge_hit.bulge_type], bulge_hit.bulge_position)


def dedupe_bulge_hits(annotated: Sequence[BulgeHit]) -> List[BulgeHit]:
    """One description per (site, guide), fully deterministically.

    Preference: fewest bulge bases, then fewest mismatches, then bulge
    type (none < DNA < RNA), then smallest bulge position.  The last
    two legs make the choice independent of the order hits arrive in —
    previously a (bulges, mismatches) tie kept whichever description
    was inserted first, i.e. search-class order leaked into output.
    """
    best: Dict[Tuple[str, int, str, str], BulgeHit] = {}
    for bulge_hit in annotated:
        key = (*bulge_hit.site_key, bulge_hit.guide)
        current = best.get(key)
        if current is None or \
                _dedupe_rank(bulge_hit) < _dedupe_rank(current):
            best[key] = bulge_hit
    return sorted(best.values(),
                  key=lambda b: (b.guide, b.hit.chrom, b.hit.position,
                                 b.hit.strand))


def _split_pattern(pattern: str) -> Tuple[int, str]:
    """Split a pattern into (guide length, PAM suffix).

    Cas-OFFinder patterns put the PAM as the trailing non-N block
    (e.g. ``NNNN...NRG``); the leading ``N`` run is the guide region.
    """
    codes = validate_iupac(pattern)
    text = codes.tobytes().decode("ascii")
    guide_len = len(text) - len(text.lstrip("N"))
    pam = text[guide_len:]
    if guide_len == 0:
        raise PatternError(
            f"pattern {pattern!r} has no leading N guide region; bulge "
            "search needs one")
    return guide_len, pam


def _dna_bulge_queries(guide: str, pam_len: int, size: int
                       ) -> List[Tuple[str, str, int]]:
    """(derived query, guide, bulge position) for DNA bulges of ``size``."""
    derived = []
    for position in range(1, len(guide)):
        bulged = guide[:position] + "N" * size + guide[position:]
        derived.append((bulged + "N" * pam_len, guide, position))
    return derived


def _rna_bulge_queries(guide: str, pam_len: int, size: int
                       ) -> List[Tuple[str, str, int]]:
    """(derived query, guide, bulge position) for RNA bulges of ``size``."""
    derived = []
    if len(guide) <= size:
        return derived
    for position in range(1, len(guide) - size):
        shrunk = guide[:position] + guide[position + size:]
        derived.append((shrunk + "N" * pam_len, guide, position))
    return derived


def bulge_search(assembly: Assembly, pattern: str,
                 guides: Sequence[str], max_mismatches: int,
                 dna_bulge: int = 1, rna_bulge: int = 1,
                 api: str = "sycl", device: str = "MI100",
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 ) -> List[BulgeHit]:
    """Search with mismatches plus DNA/RNA bulges up to the given sizes.

    ``guides`` are the guide sequences *without* PAM (the wrapper's
    convention); the PAM comes from ``pattern``'s trailing block.
    Returns deduplicated, annotated hits sorted canonically.
    """
    if dna_bulge < 0 or rna_bulge < 0:
        raise ValueError("bulge sizes must be non-negative")
    guide_len, pam = _split_pattern(pattern)
    pam_len = len(pam)
    for guide in guides:
        validate_iupac(guide)
        if len(guide) != guide_len:
            raise ValueError(
                f"guide {guide!r} length {len(guide)} does not match the "
                f"pattern's guide region ({guide_len})")

    # Search classes: (bulge_type, size, window pattern, derived queries).
    classes: List[Tuple[str, int, str, List[Tuple[str, str, int]]]] = []
    base_queries = [(g + "N" * pam_len, g, 0) for g in guides]
    classes.append(("X", 0, pattern, base_queries))
    for size in range(1, dna_bulge + 1):
        derived: List[Tuple[str, str, int]] = []
        for guide in guides:
            derived.extend(_dna_bulge_queries(guide, pam_len, size))
        if derived:
            classes.append(("DNA", size, "N" * size + pattern, derived))
    for size in range(1, rna_bulge + 1):
        derived = []
        for guide in guides:
            derived.extend(_rna_bulge_queries(guide, pam_len, size))
        if derived:
            pam_start = guide_len - size
            classes.append(("RNA", size,
                            "N" * pam_start + pam, derived))

    annotated: List[BulgeHit] = []
    for bulge_type, size, window_pattern, derived in classes:
        # Duplicate derived query texts (e.g. RNA bulges inside a
        # homopolymer) keep the smallest bulge position: positions
        # ascend per guide, so first-seen is the deterministic minimum.
        meta_of_query: Dict[str, Tuple[str, int]] = {}
        unique_queries: List[Query] = []
        for query_text, guide, position in derived:
            if query_text not in meta_of_query:
                meta_of_query[query_text] = (guide, position)
                unique_queries.append(Query(query_text, max_mismatches))
        request = SearchRequest(pattern=window_pattern,
                                queries=unique_queries)
        result = search(assembly, request, api=api, device=device,
                        chunk_size=chunk_size)
        for hit in result.hits:
            guide, position = meta_of_query[hit.query]
            annotated.append(BulgeHit(
                hit=hit, bulge_type=bulge_type, bulge_size=size,
                guide=guide, bulge_position=position))

    return dedupe_bulge_hits(annotated)
