"""Core library: the Cas-OFFinder algorithm and host pipelines."""

from .bitparallel import (BitParallelCasOffinder, BitParallelComparer,
                          bitparallel_search)
from .bulge import BulgeHit, bulge_search
from .multidevice import (MultiDeviceCasOffinder, MultiDeviceResult,
                          multi_device_search)
from .config import (EXAMPLE_INPUT, Query, SearchRequest, example_request)
from .patterns import (COMPLEMENT_TABLE, CompiledPattern, IUPAC_COMPLEMENT,
                       IUPAC_MASKS, MASK_TABLE, MISMATCH_LUT, PatternError,
                       compile_pattern, count_mismatches, mask_of,
                       pattern_matches_at, reverse_complement,
                       validate_iupac)
from .pipeline import (DEFAULT_CHUNK_SIZE, OpenCLCasOffinder,
                       PipelineResult, SyclCasOffinder,
                       SyclUsmCasOffinder, search)
from .records import (HEADER, OffTargetHit, read_hits, sort_hits,
                      write_hits)
from .reference import reference_search
from .scoring import (GuideReport, MIT_WEIGHTS, aggregate_specificity,
                      mit_site_score, rank_guides, score_hit)
from .workload import QueryWorkload, WorkloadProfile

__all__ = [
    "BitParallelCasOffinder", "BitParallelComparer", "BulgeHit",
    "MultiDeviceCasOffinder", "MultiDeviceResult", "COMPLEMENT_TABLE", "CompiledPattern",
    "DEFAULT_CHUNK_SIZE", "EXAMPLE_INPUT", "HEADER", "IUPAC_COMPLEMENT",
    "IUPAC_MASKS", "MASK_TABLE", "MISMATCH_LUT", "OffTargetHit",
    "OpenCLCasOffinder", "PatternError", "PipelineResult", "Query",
    "QueryWorkload", "SearchRequest", "SyclCasOffinder",
    "SyclUsmCasOffinder",
    "WorkloadProfile", "bulge_search", "compile_pattern",
    "count_mismatches", "example_request", "mask_of",
    "GuideReport", "MIT_WEIGHTS", "aggregate_specificity",
    "bitparallel_search", "mit_site_score", "multi_device_search",
    "rank_guides", "score_hit",
    "pattern_matches_at", "read_hits", "reference_search",
    "reverse_complement", "search", "sort_hits", "validate_iupac",
    "write_hits",
]
