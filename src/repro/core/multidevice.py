"""Multi-device execution — the paper's stated limitation, implemented.

Section IV.A: "The SYCL application currently executes on a single GPU
device."  This module removes that limitation the way a SYCL application
would: one queue per device, genome chunks dealt round-robin across the
queues, results and workload counters merged.  Chunks are independent
(each carries its own pattern staging and candidate set), so the
decomposition is embarrassingly parallel and results are identical to a
single-device run regardless of the device count or assignment — both
properties are tested.

The device timing model extends naturally: per-device elapsed time is
the re-costed share of the workload each device processed, and the
multi-device elapsed estimate is their maximum plus the (serialized)
host time.

Failover extends the decomposition to device loss: a share whose device
fails persistently (retries, fallback and all — e.g. a device-scoped
fault plan like ``MI60!raise@0x9``) has its chunks redistributed
round-robin across the surviving devices as
:class:`~repro.core.engine.ChunkSubsetView` slices.  Chunks are
independent, so the redistributed run produces exactly the hits the
failed share would have — the ``fault``-marked equivalence test pins
this down.  When a checkpoint session is active it is shared across all
shares, so chunks the failed device journaled before dying are restored,
not recomputed, and reassigned journal records carry the device they
were reassigned from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..devices.specs import ALL_DEVICES, DeviceSpec
from ..devices.timing import (DEFAULT_CALIBRATION, TimingCalibration,
                              model_elapsed)
from ..genome.assembly import Assembly
from ..observability import tracing
from ..resilience.checkpoint import CheckpointError, resolve_session
from ..runtime.launch import LaunchRecord
from .config import ExecutionPolicy, SearchRequest
from .engine import ChunkShardView, ChunkSubsetView, StreamingEngine
from .pipeline import (DEFAULT_CHUNK_SIZE, PipelineResult,
                       SyclCasOffinder, _BasePipeline)
from .records import OffTargetHit
from .workload import WorkloadProfile


@dataclass
class DeviceShare:
    """One device's slice of a multi-device run."""

    device: str
    result: PipelineResult
    chunks: int


class MultiDeviceCasOffinder:
    """Chunk-parallel search across several modeled devices.

    ``execution`` composes the streaming engine with the device
    decomposition: each device's chunk shard runs under its own engine
    (prefetch + batched comparer per the policy), or — when the policy
    disables streaming — through the serial loop with the batched
    comparer.  Results stay identical either way.
    """

    def __init__(self, devices: Sequence[str] = ("MI100", "MI60"),
                 variant: str = "base",
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 mode: str = "vectorized",
                 work_group_size: int = 256,
                 execution: Optional[ExecutionPolicy] = None):
        if not devices:
            raise ValueError("need at least one device")
        unknown = [name for name in devices if name not in ALL_DEVICES]
        if unknown:
            raise ValueError(
                f"unknown device(s) {unknown!r}; known devices: "
                f"{sorted(ALL_DEVICES)}")
        self.pipelines: List[SyclCasOffinder] = [
            SyclCasOffinder(device=device, variant=variant,
                            chunk_size=chunk_size, mode=mode,
                            work_group_size=work_group_size)
            for device in devices]
        self.chunk_size = chunk_size
        self.devices = list(devices)
        self.variant = variant
        self.mode = mode
        self.work_group_size = work_group_size
        self.execution = execution

    def _run_view(self, device: str, view, request: SearchRequest,
                  session, reassigned_from: Optional[str] = None,
                  pipeline: Optional[SyclCasOffinder] = None
                  ) -> PipelineResult:
        """Run one assembly view (shard or redistributed slice) on a
        device, journaling through the shared session when one is
        active."""
        policy = self.execution
        meta = {"device": device}
        if reassigned_from is not None:
            meta["reassigned_from"] = reassigned_from
        if policy is not None and policy.streaming:
            engine = StreamingEngine(
                policy, api="sycl", device=device,
                variant=self.variant, mode=self.mode,
                chunk_size=self.chunk_size,
                work_group_size=self.work_group_size,
                checkpoint_session=session, checkpoint_meta=meta)
            return engine.search(view, request)
        batched = policy is not None and policy.batch_queries
        if pipeline is None:
            pipeline = SyclCasOffinder(
                device=device, variant=self.variant,
                chunk_size=self.chunk_size, mode=self.mode,
                work_group_size=self.work_group_size)
        return pipeline.search(view, request, batched=batched,
                               checkpoint=session, checkpoint_meta=meta)

    def _share_search(self, share_index: int, assembly: Assembly,
                      request: SearchRequest,
                      session=None) -> PipelineResult:
        view = ChunkShardView(assembly, share_index, len(self.devices))
        return self._run_view(self.devices[share_index], view, request,
                              session,
                              pipeline=self.pipelines[share_index])

    def _failed_shard_keys(self, assembly: Assembly,
                           request: SearchRequest,
                           failed: Sequence[int]) -> Dict[int, list]:
        """Durable ``(chrom, start)`` keys of every failed shard's
        chunks, in canonical enumeration order."""
        keys: Dict[int, list] = {index: [] for index in failed}
        step = len(self.devices)
        for number, chunk in enumerate(
                assembly.chunks(self.chunk_size,
                                len(request.pattern))):
            shard = number % step
            if shard in keys:
                keys[shard].append((chunk.chrom, int(chunk.start)))
        return keys

    def search(self, assembly: Assembly, request: SearchRequest
               ) -> "MultiDeviceResult":
        """Round-robin the chunk stream over the device queues.

        A share that fails persistently (its engine exhausted retries
        and the serial fallback) does not fail the search while other
        devices survive: the failed device's chunks are redistributed
        round-robin across the survivors and re-run as extra shares.
        Only when every device has failed does the first failure
        propagate.  Checkpoint configuration errors
        (:class:`~repro.resilience.checkpoint.CheckpointError`) are
        never absorbed as device failures.
        """
        started = time.perf_counter()
        ndev = len(self.devices)
        session = resolve_session(self.execution, assembly, request,
                                  self.chunk_size)
        shares: List[DeviceShare] = []
        failures: Dict[int, BaseException] = {}
        try:
            for i in range(ndev):
                try:
                    result = self._share_search(i, assembly, request,
                                                session)
                except (KeyboardInterrupt, SystemExit, CheckpointError):
                    raise
                except Exception as exc:
                    failures[i] = exc
                    tracing.instant(
                        "device_failed", cat="failover",
                        device=self.devices[i],
                        error=type(exc).__name__)
                    continue
                shares.append(DeviceShare(
                    device=self.devices[i], result=result,
                    chunks=result.workload.chunk_count))
            if failures:
                if len(failures) == ndev:
                    raise failures[min(failures)]
                shares.extend(self._redistribute(
                    assembly, request, session, sorted(failures)))
        finally:
            if session is not None:
                session.close()
        wall = time.perf_counter() - started
        return MultiDeviceResult(shares=shares, wall_time_s=wall)

    def _redistribute(self, assembly: Assembly, request: SearchRequest,
                      session, failed: Sequence[int]
                      ) -> List[DeviceShare]:
        """Re-run every failed shard's chunks on the survivors."""
        survivors = [i for i in range(len(self.devices))
                     if i not in failed]
        if not survivors:
            raise RuntimeError(
                f"all {len(self.devices)} devices failed"
            ) from None
        shard_keys = self._failed_shard_keys(assembly, request, failed)
        extra: List[DeviceShare] = []
        for failed_index in failed:
            keys = shard_keys[failed_index]
            failed_device = self.devices[failed_index]
            tracing.instant("device_failover", cat="failover",
                            device=failed_device, chunks=len(keys),
                            survivors=len(survivors))
            if not keys:
                continue
            slices: Dict[int, list] = {s: [] for s in survivors}
            for number, key in enumerate(keys):
                slices[survivors[number % len(survivors)]].append(key)
            for survivor, slice_keys in slices.items():
                if not slice_keys:
                    continue
                view = ChunkSubsetView(assembly, slice_keys)
                result = self._run_view(
                    self.devices[survivor], view, request, session,
                    reassigned_from=failed_device)
                extra.append(DeviceShare(
                    device=self.devices[survivor], result=result,
                    chunks=result.workload.chunk_count))
        return extra


@dataclass
class MultiDeviceResult:
    """Merged output of a multi-device run."""

    shares: List[DeviceShare]
    wall_time_s: float

    @property
    def hits(self) -> List[OffTargetHit]:
        merged: List[OffTargetHit] = []
        for share in self.shares:
            merged.extend(share.result.hits)
        return merged

    def sorted_hits(self) -> List[OffTargetHit]:
        from .records import sort_hits
        return sort_hits(self.hits)

    @property
    def launches(self) -> List[LaunchRecord]:
        merged: List[LaunchRecord] = []
        for share in self.shares:
            merged.extend(share.result.launches)
        return merged

    @property
    def total_candidates(self) -> int:
        return sum(s.result.workload.candidates for s in self.shares)

    def modeled_elapsed(self, specs: Sequence[DeviceSpec],
                        scale_factor: float = 1.0,
                        variant: str = "base",
                        cal: TimingCalibration = DEFAULT_CALIBRATION
                        ) -> Dict[str, float]:
        """Per-device modeled seconds plus the parallel total.

        Devices run their chunk shares concurrently; host-side chunk
        processing stays serialized on one thread, as in the real
        application.  Returns ``{device: seconds, ..., "parallel": s}``.
        """
        if len(specs) != len(self.shares):
            raise ValueError(f"{len(self.shares)} shares but "
                             f"{len(specs)} device specs")
        out: Dict[str, float] = {}
        kernel_times = []
        host_total = 0.0
        for spec, share in zip(specs, self.shares):
            workload = share.result.workload.scaled(scale_factor)
            model = model_elapsed(spec, workload, "sycl",
                                  variant=variant, cal=cal)
            out[share.device] = model.elapsed_s
            kernel_times.append(model.kernel_s + model.transfer_s
                                + model.launch_overhead_s)
            host_total += model.host_s
        out["parallel"] = max(kernel_times) + host_total
        return out


def multi_device_search(assembly: Assembly, request: SearchRequest,
                        devices: Sequence[str] = ("MI100", "MI60"),
                        chunk_size: int = DEFAULT_CHUNK_SIZE,
                        variant: str = "base",
                        execution: Optional[ExecutionPolicy] = None
                        ) -> MultiDeviceResult:
    """Convenience wrapper over :class:`MultiDeviceCasOffinder`."""
    searcher = MultiDeviceCasOffinder(devices=devices,
                                      chunk_size=chunk_size,
                                      variant=variant,
                                      execution=execution)
    return searcher.search(assembly, request)
