"""Multi-device execution — the paper's stated limitation, implemented.

Section IV.A: "The SYCL application currently executes on a single GPU
device."  This module removes that limitation the way a SYCL application
would: one queue per device, genome chunks dealt round-robin across the
queues, results and workload counters merged.  Chunks are independent
(each carries its own pattern staging and candidate set), so the
decomposition is embarrassingly parallel and results are identical to a
single-device run regardless of the device count or assignment — both
properties are tested.

The device timing model extends naturally: per-device elapsed time is
the re-costed share of the workload each device processed, and the
multi-device elapsed estimate is their maximum plus the (serialized)
host time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..devices.specs import DeviceSpec
from ..devices.timing import (DEFAULT_CALIBRATION, TimingCalibration,
                              model_elapsed)
from ..genome.assembly import Assembly
from ..runtime.launch import LaunchRecord
from .config import ExecutionPolicy, SearchRequest
from .engine import ChunkShardView, StreamingEngine
from .pipeline import (DEFAULT_CHUNK_SIZE, PipelineResult,
                       SyclCasOffinder, _BasePipeline)
from .records import OffTargetHit
from .workload import WorkloadProfile


@dataclass
class DeviceShare:
    """One device's slice of a multi-device run."""

    device: str
    result: PipelineResult
    chunks: int


class MultiDeviceCasOffinder:
    """Chunk-parallel search across several modeled devices.

    ``execution`` composes the streaming engine with the device
    decomposition: each device's chunk shard runs under its own engine
    (prefetch + batched comparer per the policy), or — when the policy
    disables streaming — through the serial loop with the batched
    comparer.  Results stay identical either way.
    """

    def __init__(self, devices: Sequence[str] = ("MI100", "MI60"),
                 variant: str = "base",
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 mode: str = "vectorized",
                 work_group_size: int = 256,
                 execution: Optional[ExecutionPolicy] = None):
        if not devices:
            raise ValueError("need at least one device")
        self.pipelines: List[SyclCasOffinder] = [
            SyclCasOffinder(device=device, variant=variant,
                            chunk_size=chunk_size, mode=mode,
                            work_group_size=work_group_size)
            for device in devices]
        self.chunk_size = chunk_size
        self.devices = list(devices)
        self.variant = variant
        self.mode = mode
        self.work_group_size = work_group_size
        self.execution = execution

    def _share_search(self, share_index: int, assembly: Assembly,
                      request: SearchRequest) -> PipelineResult:
        view = ChunkShardView(assembly, share_index, len(self.devices))
        policy = self.execution
        if policy is not None and policy.streaming:
            engine = StreamingEngine(
                policy, api="sycl", device=self.devices[share_index],
                variant=self.variant, mode=self.mode,
                chunk_size=self.chunk_size,
                work_group_size=self.work_group_size)
            return engine.search(view, request)
        batched = policy is not None and policy.batch_queries
        return self.pipelines[share_index].search(view, request,
                                                  batched=batched)

    def search(self, assembly: Assembly, request: SearchRequest
               ) -> "MultiDeviceResult":
        """Round-robin the chunk stream over the device queues."""
        started = time.perf_counter()
        results = [self._share_search(i, assembly, request)
                   for i in range(len(self.devices))]
        wall = time.perf_counter() - started
        return MultiDeviceResult(
            shares=[DeviceShare(device=self.devices[i],
                                result=results[i],
                                chunks=results[i].workload.chunk_count)
                    for i in range(len(results))],
            wall_time_s=wall)


@dataclass
class MultiDeviceResult:
    """Merged output of a multi-device run."""

    shares: List[DeviceShare]
    wall_time_s: float

    @property
    def hits(self) -> List[OffTargetHit]:
        merged: List[OffTargetHit] = []
        for share in self.shares:
            merged.extend(share.result.hits)
        return merged

    def sorted_hits(self) -> List[OffTargetHit]:
        from .records import sort_hits
        return sort_hits(self.hits)

    @property
    def launches(self) -> List[LaunchRecord]:
        merged: List[LaunchRecord] = []
        for share in self.shares:
            merged.extend(share.result.launches)
        return merged

    @property
    def total_candidates(self) -> int:
        return sum(s.result.workload.candidates for s in self.shares)

    def modeled_elapsed(self, specs: Sequence[DeviceSpec],
                        scale_factor: float = 1.0,
                        variant: str = "base",
                        cal: TimingCalibration = DEFAULT_CALIBRATION
                        ) -> Dict[str, float]:
        """Per-device modeled seconds plus the parallel total.

        Devices run their chunk shares concurrently; host-side chunk
        processing stays serialized on one thread, as in the real
        application.  Returns ``{device: seconds, ..., "parallel": s}``.
        """
        if len(specs) != len(self.shares):
            raise ValueError(f"{len(self.shares)} shares but "
                             f"{len(specs)} device specs")
        out: Dict[str, float] = {}
        kernel_times = []
        host_total = 0.0
        for spec, share in zip(specs, self.shares):
            workload = share.result.workload.scaled(scale_factor)
            model = model_elapsed(spec, workload, "sycl",
                                  variant=variant, cal=cal)
            out[share.device] = model.elapsed_s
            kernel_times.append(model.kernel_s + model.transfer_s
                                + model.launch_overhead_s)
            host_total += model.host_s
        out["parallel"] = max(kernel_times) + host_total
        return out


def multi_device_search(assembly: Assembly, request: SearchRequest,
                        devices: Sequence[str] = ("MI100", "MI60"),
                        chunk_size: int = DEFAULT_CHUNK_SIZE,
                        variant: str = "base",
                        execution: Optional[ExecutionPolicy] = None
                        ) -> MultiDeviceResult:
    """Convenience wrapper over :class:`MultiDeviceCasOffinder`."""
    searcher = MultiDeviceCasOffinder(devices=devices,
                                      chunk_size=chunk_size,
                                      variant=variant,
                                      execution=execution)
    return searcher.search(assembly, request)
