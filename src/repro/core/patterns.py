"""IUPAC pattern algebra for Cas-OFFinder style searches.

Cas-OFFinder patterns and queries use the IUPAC nucleotide alphabet: the
pattern line (e.g. ``NNNNNNNNNNNNNNNNNNNNNRG`` for SpCas9's NGG/NAG PAM
family) constrains which genome sites are *candidates*, and each query
sequence is compared base-by-base against every candidate.

Two related notions of matching appear in the original kernels, and both
are implemented here:

* **mask matching** — every IUPAC code denotes a set of concrete bases
  (``R`` = A|G, ...); code X matches genome base g iff g's bit is in X's
  mask.  This is what the ``finder`` kernel uses to test PAM positions.

* **mismatch counting** (Listing 1 of the paper) — the ``comparer``
  kernel counts a mismatch for pattern code X at genome char g exactly
  when g is a *concrete base excluded by* X.  The subtle consequence,
  faithful to the original OpenCL kernel: a genome ``N`` mismatches a
  concrete pattern base (``pat=='G' && chr!='G'`` counts it) but does
  **not** mismatch an ambiguity code (``pat=='R'`` only tests
  ``chr=='C' || chr=='T'``).  Positions where the query holds ``N`` are
  skipped entirely via the ``comp_index`` array.

Note: Listing 1 as printed in the paper is partially OCR-corrupted (its
line for pattern ``'A'`` counts a *match* as a mismatch, and a code
``'P'`` appears); the rules here are the correct IUPAC semantics the
original Cas-OFFinder kernel implements, which the listing's uncorrupted
lines (``R``, ``Y``, ``M``, ``W``, ``H``, ``B``, ``V``, ``D``, ``G``,
``C``, ``T``) agree with.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Tuple, Union

import numpy as np

from ..genome.fasta import sequence_to_array
from ..observability import tracing

#: 4-bit base masks: A=1, C=2, G=4, T=8.
IUPAC_MASKS: Dict[str, int] = {
    "A": 1, "C": 2, "G": 4, "T": 8,
    "R": 1 | 4,          # puRine: A/G
    "Y": 2 | 8,          # pYrimidine: C/T
    "M": 1 | 2,          # aMino: A/C
    "K": 4 | 8,          # Keto: G/T
    "W": 1 | 8,          # Weak: A/T
    "S": 2 | 4,          # Strong: C/G
    "B": 2 | 4 | 8,      # not A
    "D": 1 | 4 | 8,      # not C
    "H": 1 | 2 | 8,      # not G
    "V": 1 | 2 | 4,      # not T
    "N": 1 | 2 | 4 | 8,  # aNy
}

#: IUPAC complements (A<->T, C<->G, R<->Y, M<->K, W/S self, B<->V, D<->H).
IUPAC_COMPLEMENT: Dict[str, str] = {
    "A": "T", "T": "A", "C": "G", "G": "C",
    "R": "Y", "Y": "R", "M": "K", "K": "M",
    "W": "W", "S": "S", "B": "V", "V": "B",
    "D": "H", "H": "D", "N": "N",
}

_A, _C, _G, _T, _N = (ord(c) for c in "ACGTN")

#: 256-entry lookup: ASCII code -> IUPAC mask (0 for non-IUPAC bytes).
MASK_TABLE = np.zeros(256, dtype=np.uint8)
for _ch, _mask in IUPAC_MASKS.items():
    MASK_TABLE[ord(_ch)] = _mask
    MASK_TABLE[ord(_ch.lower())] = _mask

#: 256-entry lookup: ASCII code -> complement ASCII code (uppercased).
COMPLEMENT_TABLE = np.zeros(256, dtype=np.uint8)
for _ch, _comp in IUPAC_COMPLEMENT.items():
    COMPLEMENT_TABLE[ord(_ch)] = ord(_comp)
    COMPLEMENT_TABLE[ord(_ch.lower())] = ord(_comp)

#: 256x256 lookup: MISMATCH_LUT[pattern_char, genome_char] == 1 iff the
#: comparer counts a mismatch (Listing 1 semantics, see module docstring).
MISMATCH_LUT = np.zeros((256, 256), dtype=np.uint8)
for _ch, _mask in IUPAC_MASKS.items():
    _p = ord(_ch)
    if _ch == "N":
        continue  # never compared: excluded by comp_index
    if _ch in "ACGT":
        # Concrete pattern base: anything else in the genome mismatches.
        MISMATCH_LUT[_p, :] = 1
        MISMATCH_LUT[_p, _p] = 0
        MISMATCH_LUT[_p, ord(_ch.lower())] = 0
    else:
        # Ambiguity code: only excluded *concrete* bases mismatch.
        for _gch in "ACGT":
            if not (_mask & IUPAC_MASKS[_gch]):
                MISMATCH_LUT[_p, ord(_gch)] = 1
                MISMATCH_LUT[_p, ord(_gch.lower())] = 1
    MISMATCH_LUT[ord(_ch.lower()), :] = MISMATCH_LUT[_p, :]


class PatternError(ValueError):
    """Raised for sequences containing non-IUPAC characters."""


def validate_iupac(sequence: Union[str, bytes, np.ndarray]) -> np.ndarray:
    """Validate and normalize a sequence to uppercase IUPAC uint8 codes."""
    arr = sequence_to_array(sequence)
    lower = (arr >= ord("a")) & (arr <= ord("z"))
    arr = arr.copy()
    arr[lower] -= 32
    bad = MASK_TABLE[arr] == 0
    if bad.any():
        offenders = sorted({chr(b) for b in arr[bad]})
        raise PatternError(
            f"sequence contains non-IUPAC characters: {offenders}")
    return arr


def mask_of(sequence: Union[str, bytes, np.ndarray]) -> np.ndarray:
    """Per-position 4-bit masks for a sequence."""
    return MASK_TABLE[sequence_to_array(sequence)]


def reverse_complement(sequence: Union[str, bytes, np.ndarray]
                       ) -> np.ndarray:
    """IUPAC-aware reverse complement (returns uint8 codes)."""
    arr = sequence_to_array(sequence)
    comp = COMPLEMENT_TABLE[arr]
    if (comp == 0).any():
        raise PatternError("cannot complement non-IUPAC characters")
    return comp[::-1].copy()


def pattern_matches_at(pattern_mask: np.ndarray, genome: np.ndarray,
                       position: int) -> bool:
    """Mask-match test used by the finder kernel.

    A site at ``position`` matches when every *checked* pattern position
    (mask != N) admits the genome base there.  A genome ``N`` at a
    checked position fails the test, which keeps assembly gaps out of the
    candidate list — the same behaviour as the original finder.
    """
    window = genome[position:position + pattern_mask.size]
    if window.size < pattern_mask.size:
        return False
    gmask = MASK_TABLE[window]
    checked = pattern_mask != 15
    # Genome N (mask 15) at a checked position fails unless the pattern
    # admits every base there (i.e. the position is unchecked).
    concrete = gmask != 15
    ok = (pattern_mask & gmask) != 0
    return bool(np.all(np.where(checked, ok & concrete, True)))


def count_mismatches(query: np.ndarray, site: np.ndarray) -> int:
    """Reference mismatch count (Listing 1 semantics, no early exit)."""
    n = min(query.size, site.size)
    return int(MISMATCH_LUT[query[:n], site[:n]].sum())


@dataclass
class CompiledPattern:
    """A pattern (or query) compiled to the kernels' device layout.

    Listing 1's ``comp``/``comp_index`` arrays each hold ``2 * plen``
    entries: the forward sequence in ``[0, plen)`` and the reverse
    complement in ``[plen, 2*plen)``.  ``comp_index`` lists the positions
    to check (those whose code is not ``N``), terminated by ``-1``; the
    reverse half's indices are stored at offset ``plen`` and are also
    relative to the site start, because a reverse-strand site is the
    reverse complement of the same genome window.
    """

    sequence: np.ndarray        # forward, uint8, length plen
    rc_sequence: np.ndarray     # reverse complement, uint8, length plen
    comp: np.ndarray            # uint8, length 2*plen
    comp_index: np.ndarray      # int32, length 2*plen, -1 terminated
    plen: int

    @property
    def checked_positions_forward(self) -> np.ndarray:
        idx = self.comp_index[:self.plen]
        return idx[idx >= 0]

    @property
    def checked_positions_reverse(self) -> np.ndarray:
        idx = self.comp_index[self.plen:]
        return idx[idx >= 0]

    def decode(self) -> str:
        return self.sequence.tobytes().decode("ascii")


def compile_pattern(sequence: Union[str, bytes, np.ndarray]
                    ) -> CompiledPattern:
    """Compile a pattern/query into the device layout described above.

    Compilation results are memoized per pattern string: every chunk of
    every search re-uses the same pattern and query layouts, so repeated
    compilation is pure overhead.  Array inputs bypass the cache (they
    are unhashable and rare).  The returned object is shared — callers
    must treat its arrays as read-only, which all kernels do.
    """
    if isinstance(sequence, bytes):
        sequence = sequence.decode("ascii")
    if isinstance(sequence, str):
        if tracing.active() is None:
            return _compile_pattern_cached(sequence)
        # Hit/miss attribution is approximate under concurrent
        # compilation (another thread may land a miss between the two
        # cache_info() reads); good enough for trace annotation.
        before = _compile_pattern_cached.cache_info().hits
        compiled = _compile_pattern_cached(sequence)
        hit = _compile_pattern_cached.cache_info().hits > before
        tracing.instant("pattern_cache", cat="cache", pattern=sequence,
                        hit=hit)
        return compiled
    return _compile_pattern_uncached(sequence)


@lru_cache(maxsize=256)
def _compile_pattern_cached(sequence: str) -> CompiledPattern:
    compiled = _compile_pattern_uncached(sequence)
    # The cached object is shared across searches and threads; freeze the
    # arrays so accidental mutation fails loudly instead of corrupting
    # every later search for the same pattern.
    for array in (compiled.sequence, compiled.rc_sequence, compiled.comp,
                  compiled.comp_index):
        array.setflags(write=False)
    return compiled


def compile_pattern_cache_info():
    """Hit/miss statistics of the pattern-compilation cache."""
    return _compile_pattern_cached.cache_info()


def clear_pattern_cache() -> None:
    _compile_pattern_cached.cache_clear()


def _compile_pattern_uncached(sequence: Union[str, bytes, np.ndarray]
                              ) -> CompiledPattern:
    fwd = validate_iupac(sequence)
    plen = fwd.size
    if plen == 0:
        raise PatternError("empty pattern")
    rc = reverse_complement(fwd)
    comp = np.concatenate([fwd, rc]).astype(np.uint8)
    comp_index = np.full(2 * plen, -1, dtype=np.int32)
    fwd_checked = np.flatnonzero(fwd != _N)
    rc_checked = np.flatnonzero(rc != _N)
    comp_index[:fwd_checked.size] = fwd_checked
    comp_index[plen:plen + rc_checked.size] = rc_checked
    return CompiledPattern(sequence=fwd, rc_sequence=rc, comp=comp,
                           comp_index=comp_index, plen=plen)
