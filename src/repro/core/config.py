"""Search requests and the Cas-OFFinder input-file format.

The paper's evaluation uses "the input file ... the same as the example
listed in [the Cas-OFFinder repository]": a first line naming the genome
directory, a second line with the PAM-bearing pattern, and one line per
query with its maximum mismatch count.  :data:`EXAMPLE_INPUT` reproduces
that example; :meth:`SearchRequest.from_input_text` parses the format.
"""

from __future__ import annotations

import io
import math
import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..observability.faults import parse_fault_plan
from .patterns import PatternError, validate_iupac


def _require_int(name: str, value) -> None:
    """Reject bools, floats and other non-integers posing as counts."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"{name} must be an integer, got {value!r} "
            f"({type(value).__name__})")


def _require_finite(name: str, value) -> None:
    """Reject NaN/inf, which slip past plain comparisons."""
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not math.isfinite(value):
        raise ValueError(
            f"{name} must be a finite number, got {value!r}")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a search should be executed by the streaming engine.

    The serial chunk loop of the paper's host program is the default
    (``streaming=False``).  Opting in to the engine enables any
    combination of:

    * **prefetch** — a producer thread stages the next chunks (slicing
      and materialising the device view) while the current chunk's
      kernels run, with at most ``prefetch_depth`` staged chunks in
      flight;
    * **workers** — ``workers > 1`` processes chunks concurrently on a
      thread or process pool (``backend``), one pipeline (queue + device
      context) per worker, with results merged back in chunk order so
      hit lists stay byte-identical to the serial loop;
    * **batch_queries** — fuse the per-query comparer launches into one
      batched launch per chunk over a stacked pattern matrix, collapsing
      the launch count from ``chunks x queries`` to ``chunks``.

    The ``"thread"`` backend shares memory but serializes Python-level
    kernel work on the GIL, so it mainly overlaps staging with compute;
    the ``"process"`` backend runs kernels truly in parallel at the cost
    of pickling chunks/outputs across the pool boundary.

    The remaining fields control the engine's failure behavior.  A chunk
    whose processing raises (or overruns ``chunk_deadline_s``) is
    retried up to ``max_retries`` times with capped exponential backoff;
    when retries are exhausted the chunk degrades to a fresh serial
    pipeline on the merging thread (``serial_fallback``) so one bad
    worker cannot truncate or reorder results.  ``fault_plan`` is the
    deterministic fault-injection spec (see
    :mod:`repro.observability.faults`) used to exercise those paths.

    ``checkpoint_dir``/``resume`` add durability *across* process
    lifetimes (see :mod:`repro.resilience`): completed chunks are
    journaled as the run progresses, and a resumed run with the same
    fingerprint skips them, producing a byte-identical hit list.
    """

    streaming: bool = True
    prefetch_depth: int = 2
    workers: int = 1
    batch_queries: bool = True
    backend: str = "thread"
    #: Per-chunk retries after a processing failure (0 disables).
    max_retries: int = 1
    #: Base delay of the capped exponential retry backoff.
    retry_backoff_s: float = 0.05
    #: Ceiling on any single retry delay.
    retry_backoff_cap_s: float = 1.0
    #: Per-chunk wall-clock deadline; overruns count as failures and the
    #: stalled pipeline is abandoned (None disables the watchdog).
    chunk_deadline_s: Optional[float] = None
    #: Re-run a chunk whose retries are exhausted on a fresh pipeline in
    #: the merging thread instead of failing the whole search.
    serial_fallback: bool = True
    #: Fault-injection spec (``[DEVICE!]KIND@INDEX[:SECONDS][xCOUNT],...``);
    #: None defers to the ``REPRO_FAULT_INJECT`` environment variable.
    fault_plan: Optional[str] = None
    #: Directory for the durable run checkpoint (manifest + per-chunk
    #: journal); None defers to ``REPRO_CHECKPOINT_DIR``, and an unset
    #: environment leaves checkpointing off.
    checkpoint_dir: Optional[str] = None
    #: Resume from the checkpoint directory: skip journaled chunks and
    #: replay their persisted outputs.  A fingerprint mismatch between
    #: the stored manifest and this run refuses to resume.
    resume: bool = False

    def __post_init__(self):
        _require_int("prefetch depth", self.prefetch_depth)
        if self.prefetch_depth < 1:
            raise ValueError(
                f"prefetch depth must be >= 1, got {self.prefetch_depth}")
        _require_int("worker count", self.workers)
        if self.workers < 1:
            raise ValueError(
                f"worker count must be >= 1, got {self.workers}")
        if self.backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', "
                f"got {self.backend!r}")
        _require_int("max retries", self.max_retries)
        if self.max_retries < 0:
            raise ValueError(
                f"max retries must be >= 0, got {self.max_retries}")
        _require_finite("retry backoff", self.retry_backoff_s)
        if self.retry_backoff_s <= 0:
            raise ValueError(f"retry backoff must be positive, "
                             f"got {self.retry_backoff_s}")
        _require_finite("retry backoff cap", self.retry_backoff_cap_s)
        if self.retry_backoff_cap_s < self.retry_backoff_s:
            raise ValueError(
                f"retry backoff cap {self.retry_backoff_cap_s} is below "
                f"the base backoff {self.retry_backoff_s}")
        if self.chunk_deadline_s is not None:
            _require_finite("chunk deadline", self.chunk_deadline_s)
            if self.chunk_deadline_s <= 0:
                raise ValueError(f"chunk deadline must be positive, "
                                 f"got {self.chunk_deadline_s}")
        if self.fault_plan is not None:
            parse_fault_plan(self.fault_plan)  # fail loudly, up front


@dataclass(frozen=True)
class Query:
    """One query sequence and its mismatch threshold."""

    sequence: str
    max_mismatches: int

    def __post_init__(self):
        validate_iupac(self.sequence)
        if self.max_mismatches < 0:
            raise ValueError(
                f"negative mismatch threshold {self.max_mismatches}")


@dataclass
class SearchRequest:
    """A full search: PAM pattern plus queries."""

    pattern: str
    queries: List[Query]
    genome_path: Optional[str] = None
    #: Optional streaming-engine opt-in; ``None`` keeps the serial loop.
    execution: Optional[ExecutionPolicy] = None

    def __post_init__(self):
        pattern_codes = validate_iupac(self.pattern)
        plen = pattern_codes.size
        if not self.queries:
            raise ValueError("a search request needs at least one query")
        for query in self.queries:
            if len(query.sequence) != plen:
                raise ValueError(
                    f"query {query.sequence!r} has length "
                    f"{len(query.sequence)}, pattern has length {plen}")

    @property
    def pattern_length(self) -> int:
        return len(self.pattern)

    @classmethod
    def from_input_text(cls, text: str) -> "SearchRequest":
        """Parse the classic three-section Cas-OFFinder input format."""
        lines = [ln.strip() for ln in text.splitlines()]
        lines = [ln for ln in lines if ln and not ln.startswith("#")]
        if len(lines) < 3:
            raise ValueError(
                "input needs a genome path line, a pattern line and at "
                "least one query line")
        genome_path = lines[0]
        pattern = lines[1].upper()
        queries: List[Query] = []
        for lineno, line in enumerate(lines[2:], 3):
            fields = line.split()
            if len(fields) != 2:
                raise ValueError(
                    f"query line {lineno}: expected '<sequence> "
                    f"<max mismatches>', got {line!r}")
            queries.append(Query(fields[0].upper(), int(fields[1])))
        return cls(pattern=pattern, queries=queries,
                   genome_path=genome_path)

    @classmethod
    def from_input_file(cls, path: Union[str, os.PathLike]
                        ) -> "SearchRequest":
        with open(path, "r", encoding="ascii") as handle:
            return cls.from_input_text(handle.read())

    def to_input_text(self) -> str:
        lines = [self.genome_path or "", self.pattern]
        lines += [f"{q.sequence} {q.max_mismatches}" for q in self.queries]
        return "\n".join(lines) + "\n"


#: The Cas-OFFinder repository's README example (reference [17] of the
#: paper): SpCas9 NRG PAM pattern and three 20-nt guides with up to four
#: mismatches each.
EXAMPLE_INPUT = """\
/var/chromosomes/human_hg19
NNNNNNNNNNNNNNNNNNNNNRG
GGCCGACCTGTCGCTGACGCNNN 4
CGCCAGCGTCAGCGACAGGTNNN 4
ACGGCGCCAGCGTCAGCGACNNN 4
"""


def example_request() -> SearchRequest:
    """The paper's evaluation request (EXAMPLE_INPUT, parsed)."""
    return SearchRequest.from_input_text(EXAMPLE_INPUT)
