"""Bit-parallel mismatch counting: the 2-bit baseline of related work.

The paper's related-work section describes two relevant systems: the
Cas-OFFinder authors' own optimization round ("a 2-bit sequence format,
shared local memory and atomic operations ... improving the performance
by a factor of 30 approximately") and FlashFry, a CPU tool "two to three
orders of magnitude faster" built on packed-integer comparisons.  This
module implements that algorithm, both as an offline baseline engine and
as the serving tier's resident hot path:

* each candidate window is packed into a 64-bit word, two bits per base
  (A=0, C=1, G=2, T=3), via a vectorized gather + dot product;
* mismatches against a packed query are counted in O(1) per window with
  the classic trick: ``x = a ^ b; m = (x | x >> 1) & 0x5555...;
  popcount(m)`` — every differing 2-bit group contributes exactly one
  set bit to ``m``;
* genome ``N`` (or any non-ACGT byte) at a checked position is forced to
  mismatch through a separate invalid-position mask, matching the
  comparer kernel's behaviour for concrete query bases.

Two packings coexist.  :func:`pack_query_strand` packs only a query's
*checked* positions (compact, per-site gather at compare time) and backs
the offline :class:`BitParallelCasOffinder`.  :func:`pack_site_windows` /
:func:`pack_query_window` pack *full windows* at fixed 2-bit offsets —
the site words are query-independent, so a resident index computes them
once at build time and :func:`compare_packed_batched` then serves any
number of queries with pure XOR/popcount over the stored planes, no
genome gather at all.  Emission order replicates the batched vectorized
kernel block-for-block, so demultiplexed results are byte-identical.

The restriction, shared with FlashFry: query *checked* positions must be
concrete A/C/G/T (ambiguity codes other than the skipped ``N`` cannot be
expressed in two bits).  The PAM pattern is unrestricted — candidate
selection still uses the mask-based finder.  Queries that do carry
ambiguity codes fall back to the byte comparer (see
:meth:`repro.core.pipeline._BasePipeline.compare_resident`), keeping
responses byte-identical in all cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..genome.assembly import Assembly
from .config import Query, SearchRequest
from .patterns import CompiledPattern, PatternError, compile_pattern
from .pipeline import (DEFAULT_CHUNK_SIZE, PackedSites, PipelineResult,
                       SyclCasOffinder)
from .records import OffTargetHit

# 2-bit base codes; non-ACGT bytes map to 0 and are tracked separately.
_CODE = np.zeros(256, dtype=np.uint64)
_CODE[ord("A")] = 0
_CODE[ord("C")] = 1
_CODE[ord("G")] = 2
_CODE[ord("T")] = 3

_VALID = np.zeros(256, dtype=bool)
for _b in b"ACGT":
    _VALID[_b] = True

#: Per-byte popcount lookup.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)],
                      dtype=np.uint8)

_ODD_BITS = np.uint64(0x5555555555555555)

#: A 64-bit word holds 32 two-bit bases.
MAX_CHECKED_POSITIONS = 32


@dataclass(frozen=True)
class PackedQuery:
    """One strand of one query, packed for bit-parallel comparison."""

    word: np.uint64
    checked: np.ndarray        # int64 offsets into the site window
    weights: np.ndarray        # uint64 shift multipliers per position
    codes: np.ndarray          # uint64 2-bit code per checked position


def pack_query_strand(cq: CompiledPattern, offset: int) -> PackedQuery:
    """Pack one strand (offset 0 = forward, plen = reverse)."""
    indices = cq.comp_index[offset:offset + cq.plen]
    checked = indices[indices >= 0].astype(np.int64)
    if checked.size > MAX_CHECKED_POSITIONS:
        raise PatternError(
            f"bit-parallel comparer supports up to "
            f"{MAX_CHECKED_POSITIONS} checked positions, got "
            f"{checked.size}")
    chars = cq.comp[checked + offset]
    if not _VALID[chars].all():
        bad = sorted({chr(c) for c in chars[~_VALID[chars]]})
        raise PatternError(
            f"bit-parallel comparer requires concrete A/C/G/T at checked "
            f"query positions; found {bad}")
    weights = (np.uint64(1) << (2 * np.arange(checked.size,
                                              dtype=np.uint64)))
    codes = _CODE[chars]
    word = np.uint64((codes * weights).sum())
    return PackedQuery(word=word, checked=checked, weights=weights,
                       codes=codes)


def _popcount64_lut(values: np.ndarray) -> np.ndarray:
    """Byte-LUT population count; works for any numpy without
    ``bitwise_count`` and any array shape."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    as_bytes = values.view(np.uint8).reshape(values.shape + (8,))
    return _POPCOUNT8[as_bytes].sum(axis=-1, dtype=np.int64)


def _popcount64_native(values: np.ndarray) -> np.ndarray:
    """Hardware-popcount path via ``np.bitwise_count`` (numpy >= 2)."""
    return np.bitwise_count(values).astype(np.int64)


#: Vectorized population count of a uint64 array (any shape).  Bound to
#: the native ``np.bitwise_count`` ufunc when this numpy has it, with
#: the byte-LUT kept as the fallback (micro-benched side by side in
#: ``benchmarks/test_micro_kernels.py``).
popcount64 = (_popcount64_native if hasattr(np, "bitwise_count")
              else _popcount64_lut)


def count_mismatches_packed(chunk: np.ndarray, loci: np.ndarray,
                            packed: PackedQuery) -> np.ndarray:
    """Mismatch counts for all candidate windows against one strand."""
    if loci.size == 0:
        return np.zeros(0, dtype=np.int64)
    if packed.checked.size == 0:
        return np.zeros(loci.size, dtype=np.int64)
    sites = chunk[loci[:, None] + packed.checked[None, :]]
    codes = _CODE[sites]
    words = (codes * packed.weights[None, :]).sum(
        axis=1, dtype=np.uint64)
    x = words ^ packed.word
    mm_mask = (x | (x >> np.uint64(1))) & _ODD_BITS
    counts = popcount64(mm_mask)
    # Non-ACGT genome bytes packed as code 0 may collide with a query
    # 'A'; force them to count as mismatches.
    invalid = ~_VALID[sites]
    if invalid.any():
        # A position was counted already iff its 2-bit group differs;
        # recover per-position equality to add the colliding cases
        # (invalid byte packed as code 0 matching a query 'A').
        equal = codes == packed.codes[None, :]
        counts = counts + (invalid & equal).sum(axis=1, dtype=np.int64)
    return counts


# ---------------------------------------------------------------------------
# Full-window packing: the resident form of the serving index
# ---------------------------------------------------------------------------
#
# The compact per-checked-position packing above needs a genome gather
# per (site, query-strand) at compare time.  The serving tier instead
# packs every candidate window once, at a fixed two bits per window
# position, so the per-batch work is XOR + mask + popcount over arrays
# that already live in memory.  The invalid plane marks non-ACGT window
# positions on the same odd-bit lattice the mismatch indicator lands on,
# so OR-ing it in forces those positions to count as mismatches exactly
# as ``MISMATCH_LUT`` does for concrete query bases.

def acgtn_only(data: np.ndarray) -> bool:
    """True when every byte is uppercase A/C/G/T/N.

    The packed resident form requires this: 2-bit decode then maps every
    flagged position back to ``N`` losslessly, which keeps hit site
    strings (and the byte-comparer fallback) identical to the raw bytes.
    """
    return bool(_ACGTN[data].all())


_ACGTN = np.zeros(256, dtype=bool)
for _b in b"ACGTN":
    _ACGTN[_b] = True


def pack_site_windows(chunk_data: np.ndarray, loci: np.ndarray,
                      plen: int) -> PackedSites:
    """Pack all candidate windows of one chunk into resident planes.

    Returns :class:`~repro.core.pipeline.PackedSites` with ``words[i] =
    sum(code(window[p]) << 2p)`` and ``invalid[i]`` carrying bit ``2p``
    for every non-ACGT window position ``p``.  Query-independent, so the
    index computes this once per chunk at build time.
    """
    if plen > MAX_CHECKED_POSITIONS:
        raise PatternError(
            f"packed windows hold at most {MAX_CHECKED_POSITIONS} "
            f"positions, pattern has {plen}")
    if loci.size == 0:
        return PackedSites(words=np.zeros(0, np.uint64),
                           invalid=np.zeros(0, np.uint64))
    windows = chunk_data[loci.astype(np.int64)[:, None]
                         + np.arange(plen, dtype=np.int64)[None, :]]
    weights = (np.uint64(1)
               << (2 * np.arange(plen, dtype=np.uint64)))[None, :]
    words = (_CODE[windows] * weights).sum(axis=1, dtype=np.uint64)
    invalid = ((~_VALID[windows]).astype(np.uint64)
               * weights).sum(axis=1, dtype=np.uint64)
    return PackedSites(words=words, invalid=invalid)


@dataclass(frozen=True)
class PackedWindowQuery:
    """One query strand packed against full windows: code word + care
    mask (bit ``2p`` set for every checked window position ``p``)."""

    word: np.uint64
    care: np.uint64


def pack_query_window(cq: CompiledPattern, offset: int
                      ) -> PackedWindowQuery:
    """Pack one strand at full-window offsets (0 = forward, plen =
    reverse).  Raises :class:`PatternError` for patterns longer than 32
    or ambiguity codes at checked positions."""
    if cq.plen > MAX_CHECKED_POSITIONS:
        raise PatternError(
            f"packed windows hold at most {MAX_CHECKED_POSITIONS} "
            f"positions, pattern has {cq.plen}")
    indices = cq.comp_index[offset:offset + cq.plen]
    checked = indices[indices >= 0].astype(np.int64)
    chars = cq.comp[checked + offset]
    if not _VALID[chars].all():
        bad = sorted({chr(c) for c in chars[~_VALID[chars]]})
        raise PatternError(
            f"bit-parallel comparer requires concrete A/C/G/T at checked "
            f"query positions; found {bad}")
    shifts = (2 * checked).astype(np.uint64)
    word = np.uint64(np.sum(_CODE[chars] << shifts, dtype=np.uint64))
    care = np.uint64(np.sum(np.uint64(1) << shifts, dtype=np.uint64))
    return PackedWindowQuery(word=word, care=care)


@lru_cache(maxsize=512)
def _window_query_cached(sequence: str, offset: int) -> PackedWindowQuery:
    return pack_query_window(compile_pattern(sequence), offset)


def window_packable(cq: CompiledPattern) -> bool:
    """True when both strands of a compiled query fit the packed form."""
    try:
        _window_query_cached(cq.decode(), 0)
        _window_query_cached(cq.decode(), cq.plen)
    except PatternError:
        return False
    return True


#: Mirrors :meth:`repro.runtime.executor.NDRangeExecutor.run_vectorized`:
#: vectorized kernels are fused into blocks of this many work-items, and
#: each block emits forward-strand hits then reverse-strand hits.  The
#: packed comparer replays the same block structure so its per-query
#: triples are element-identical to the kernel path.
_VECTORIZED_BLOCK_ITEMS = 1 << 20


def compare_packed_batched(packed: PackedSites, loci: np.ndarray,
                           flags: np.ndarray,
                           queries: Sequence[Query],
                           compiled_queries: Sequence[CompiledPattern],
                           ) -> List[Tuple[np.ndarray, np.ndarray,
                                           np.ndarray]]:
    """All-queries comparer over resident packed planes, one chunk.

    Returns per-query ``(mm_loci, mm_count, direction)`` triples in the
    exact emission order of the batched vectorized kernel (per
    work-item block: ascending forward-strand candidates, then reverse),
    filtered to each query's mismatch budget.  Every query must satisfy
    :func:`window_packable`; the caller routes others to the byte
    comparer.
    """
    nq = len(queries)
    count = int(loci.size)
    out: List[List[np.ndarray]] = [[] for _ in range(nq)]
    qwords = np.array([_window_query_cached(cq.decode(), 0).word
                       for cq in compiled_queries], dtype=np.uint64)
    qcares = np.array([_window_query_cached(cq.decode(), 0).care
                       for cq in compiled_queries], dtype=np.uint64)
    rwords = np.array(
        [_window_query_cached(cq.decode(), cq.plen).word
         for cq in compiled_queries], dtype=np.uint64)
    rcares = np.array(
        [_window_query_cached(cq.decode(), cq.plen).care
         for cq in compiled_queries], dtype=np.uint64)
    thresholds = [int(q.max_mismatches) for q in queries]
    one = np.uint64(1)
    for start in range(0, count, _VECTORIZED_BLOCK_ITEMS):
        end = min(start + _VECTORIZED_BLOCK_ITEMS, count)
        f = flags[start:end]
        blk_loci = loci[start:end]
        blk_words = packed.words[start:end]
        blk_invalid = packed.invalid[start:end]
        for words_q, cares_q, direction_char, strand_sel in (
                (qwords, qcares, ord("+"), (f == 0) | (f == 1)),
                (rwords, rcares, ord("-"), (f == 0) | (f == 2))):
            sub = blk_loci[strand_sel]
            if sub.size == 0:
                continue
            x = blk_words[strand_sel][None, :] ^ words_q[:, None]
            m = ((x | (x >> one)) & _ODD_BITS) \
                | blk_invalid[strand_sel][None, :]
            m &= cares_q[:, None]
            counts = popcount64(m)
            for q in range(nq):
                keep = counts[q] <= thresholds[q]
                kept = int(keep.sum())
                if not kept:
                    continue
                out[q].append((
                    sub[keep].astype(np.uint32),
                    counts[q][keep].astype(np.uint16),
                    np.full(kept, direction_char, dtype=np.uint8)))
    results = []
    for q in range(nq):
        if out[q]:
            results.append(tuple(np.concatenate(parts)
                                 for parts in zip(*out[q])))
        else:
            results.append((np.zeros(0, np.uint32),
                            np.zeros(0, np.uint16),
                            np.zeros(0, np.uint8)))
    return results


class BitParallelComparer:
    """Precompiled bit-parallel comparer for one query set."""

    def __init__(self, queries: Sequence[Union[str, Query]]):
        self.packed: List[Tuple[PackedQuery, PackedQuery]] = []
        for query in queries:
            text = query.sequence if isinstance(query, Query) else query
            cq = compile_pattern(text)
            self.packed.append((pack_query_strand(cq, 0),
                                pack_query_strand(cq, cq.plen)))

    def counts(self, query_index: int, chunk: np.ndarray,
               loci: np.ndarray, strand: str) -> np.ndarray:
        forward, reverse = self.packed[query_index]
        packed = forward if strand == "+" else reverse
        return count_mismatches_packed(chunk, loci.astype(np.int64),
                                       packed)


class BitParallelCasOffinder(SyclCasOffinder):
    """The SYCL pipeline with the comparer swapped for the 2-bit packed
    algorithm — the related-work baseline as a drop-in engine."""

    api = "sycl-bitparallel"

    def _run_comparer(self, chr_buf, loci_buf, flag_buf, count, cq,
                      threshold, vector_mode):
        if count == 0:
            return (np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                    np.zeros(0, np.uint8))
        from ..runtime.sycl import sycl_read
        chunk = chr_buf.get_host_access(sycl_read).data
        loci = loci_buf.get_host_access(sycl_read).data[:count] \
            .astype(np.int64)
        flags = flag_buf.get_host_access(sycl_read).data[:count]
        fwd = pack_query_strand(cq, 0)
        rev = pack_query_strand(cq, cq.plen)
        out_loci: List[np.ndarray] = []
        out_counts: List[np.ndarray] = []
        out_dirs: List[np.ndarray] = []
        for packed, direction, selector in (
                (fwd, ord("+"), (flags == 0) | (flags == 1)),
                (rev, ord("-"), (flags == 0) | (flags == 2))):
            sub = loci[selector]
            if sub.size == 0:
                continue
            counts = count_mismatches_packed(chunk, sub, packed)
            keep = counts <= threshold
            kept = int(keep.sum())
            if not kept:
                continue
            out_loci.append(sub[keep].astype(np.uint32))
            out_counts.append(counts[keep].astype(np.uint16))
            out_dirs.append(np.full(kept, direction, dtype=np.uint8))
        if not out_loci:
            return (np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                    np.zeros(0, np.uint8))
        return (np.concatenate(out_loci), np.concatenate(out_counts),
                np.concatenate(out_dirs))


def bitparallel_search(assembly: Assembly, request: SearchRequest,
                       device: str = "MI100",
                       chunk_size: int = DEFAULT_CHUNK_SIZE
                       ) -> PipelineResult:
    """Run a search with the bit-parallel comparer baseline."""
    pipeline = BitParallelCasOffinder(device=device,
                                      chunk_size=chunk_size)
    return pipeline.search(assembly, request)
