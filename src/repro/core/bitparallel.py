"""Bit-parallel mismatch counting: the 2-bit baseline of related work.

The paper's related-work section describes two relevant systems: the
Cas-OFFinder authors' own optimization round ("a 2-bit sequence format,
shared local memory and atomic operations ... improving the performance
by a factor of 30 approximately") and FlashFry, a CPU tool "two to three
orders of magnitude faster" built on packed-integer comparisons.  This
module implements that algorithmic baseline:

* each candidate window is packed into a 64-bit word, two bits per base
  (A=0, C=1, G=2, T=3), via a vectorized gather + dot product;
* mismatches against a packed query are counted in O(1) per window with
  the classic trick: ``x = a ^ b; m = (x | x >> 1) & 0x5555...;
  popcount(m)`` — every differing 2-bit group contributes exactly one
  set bit to ``m``;
* genome ``N`` (or any non-ACGT byte) at a checked position is forced to
  mismatch through a separate invalid-position mask, matching the
  comparer kernel's behaviour for concrete query bases.

The restriction, shared with FlashFry: query *checked* positions must be
concrete A/C/G/T (ambiguity codes other than the skipped ``N`` cannot be
expressed in two bits).  The PAM pattern is unrestricted — candidate
selection still uses the mask-based finder.  For such queries the
results are bit-identical to the standard pipeline (tested), making this
a drop-in faster comparer and an honest baseline for the micro-benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from ..genome.assembly import Assembly
from .config import Query, SearchRequest
from .patterns import CompiledPattern, PatternError, compile_pattern
from .pipeline import DEFAULT_CHUNK_SIZE, PipelineResult, SyclCasOffinder
from .records import OffTargetHit

# 2-bit base codes; non-ACGT bytes map to 0 and are tracked separately.
_CODE = np.zeros(256, dtype=np.uint64)
_CODE[ord("A")] = 0
_CODE[ord("C")] = 1
_CODE[ord("G")] = 2
_CODE[ord("T")] = 3

_VALID = np.zeros(256, dtype=bool)
for _b in b"ACGT":
    _VALID[_b] = True

#: Per-byte popcount lookup.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)],
                      dtype=np.uint8)

_ODD_BITS = np.uint64(0x5555555555555555)

#: A 64-bit word holds 32 two-bit bases.
MAX_CHECKED_POSITIONS = 32


@dataclass(frozen=True)
class PackedQuery:
    """One strand of one query, packed for bit-parallel comparison."""

    word: np.uint64
    checked: np.ndarray        # int64 offsets into the site window
    weights: np.ndarray        # uint64 shift multipliers per position


def pack_query_strand(cq: CompiledPattern, offset: int) -> PackedQuery:
    """Pack one strand (offset 0 = forward, plen = reverse)."""
    indices = cq.comp_index[offset:offset + cq.plen]
    checked = indices[indices >= 0].astype(np.int64)
    if checked.size > MAX_CHECKED_POSITIONS:
        raise PatternError(
            f"bit-parallel comparer supports up to "
            f"{MAX_CHECKED_POSITIONS} checked positions, got "
            f"{checked.size}")
    chars = cq.comp[checked + offset]
    if not _VALID[chars].all():
        bad = sorted({chr(c) for c in chars[~_VALID[chars]]})
        raise PatternError(
            f"bit-parallel comparer requires concrete A/C/G/T at checked "
            f"query positions; found {bad}")
    weights = (np.uint64(1) << (2 * np.arange(checked.size,
                                              dtype=np.uint64)))
    word = np.uint64((_CODE[chars] * weights).sum())
    return PackedQuery(word=word, checked=checked, weights=weights)


def popcount64(values: np.ndarray) -> np.ndarray:
    """Vectorized population count of a uint64 array."""
    as_bytes = values.view(np.uint8).reshape(values.size, 8)
    return _POPCOUNT8[as_bytes].sum(axis=1, dtype=np.int64)


def count_mismatches_packed(chunk: np.ndarray, loci: np.ndarray,
                            packed: PackedQuery) -> np.ndarray:
    """Mismatch counts for all candidate windows against one strand."""
    if loci.size == 0:
        return np.zeros(0, dtype=np.int64)
    if packed.checked.size == 0:
        return np.zeros(loci.size, dtype=np.int64)
    sites = chunk[loci[:, None] + packed.checked[None, :]]
    codes = _CODE[sites]
    words = (codes * packed.weights[None, :]).sum(
        axis=1, dtype=np.uint64)
    x = words ^ packed.word
    mm_mask = (x | (x >> np.uint64(1))) & _ODD_BITS
    counts = popcount64(mm_mask)
    # Non-ACGT genome bytes packed as code 0 may collide with a query
    # 'A'; force them to count as mismatches.
    invalid = ~_VALID[sites]
    if invalid.any():
        # A position was counted already iff its 2-bit group differs;
        # recover per-position equality to add the colliding cases
        # (invalid byte packed as code 0 matching a query 'A').
        site_groups = codes.astype(np.uint64)
        query_groups = ((packed.word
                         // packed.weights) % np.uint64(4))[None, :]
        equal = site_groups == query_groups
        counts = counts + (invalid & equal).sum(axis=1, dtype=np.int64)
    return counts


class BitParallelComparer:
    """Precompiled bit-parallel comparer for one query set."""

    def __init__(self, queries: Sequence[Union[str, Query]]):
        self.packed: List[Tuple[PackedQuery, PackedQuery]] = []
        for query in queries:
            text = query.sequence if isinstance(query, Query) else query
            cq = compile_pattern(text)
            self.packed.append((pack_query_strand(cq, 0),
                                pack_query_strand(cq, cq.plen)))

    def counts(self, query_index: int, chunk: np.ndarray,
               loci: np.ndarray, strand: str) -> np.ndarray:
        forward, reverse = self.packed[query_index]
        packed = forward if strand == "+" else reverse
        return count_mismatches_packed(chunk, loci.astype(np.int64),
                                       packed)


class BitParallelCasOffinder(SyclCasOffinder):
    """The SYCL pipeline with the comparer swapped for the 2-bit packed
    algorithm — the related-work baseline as a drop-in engine."""

    api = "sycl-bitparallel"

    def _run_comparer(self, chr_buf, loci_buf, flag_buf, count, cq,
                      threshold, vector_mode):
        if count == 0:
            return (np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                    np.zeros(0, np.uint8))
        from ..runtime.sycl import sycl_read
        chunk = chr_buf.get_host_access(sycl_read).data
        loci = loci_buf.get_host_access(sycl_read).data[:count] \
            .astype(np.int64)
        flags = flag_buf.get_host_access(sycl_read).data[:count]
        fwd = pack_query_strand(cq, 0)
        rev = pack_query_strand(cq, cq.plen)
        out_loci: List[np.ndarray] = []
        out_counts: List[np.ndarray] = []
        out_dirs: List[np.ndarray] = []
        for packed, direction, selector in (
                (fwd, ord("+"), (flags == 0) | (flags == 1)),
                (rev, ord("-"), (flags == 0) | (flags == 2))):
            sub = loci[selector]
            if sub.size == 0:
                continue
            counts = count_mismatches_packed(chunk, sub, packed)
            keep = counts <= threshold
            kept = int(keep.sum())
            if not kept:
                continue
            out_loci.append(sub[keep].astype(np.uint32))
            out_counts.append(counts[keep].astype(np.uint16))
            out_dirs.append(np.full(kept, direction, dtype=np.uint8))
        if not out_loci:
            return (np.zeros(0, np.uint32), np.zeros(0, np.uint16),
                    np.zeros(0, np.uint8))
        return (np.concatenate(out_loci), np.concatenate(out_counts),
                np.concatenate(out_dirs))


def bitparallel_search(assembly: Assembly, request: SearchRequest,
                       device: str = "MI100",
                       chunk_size: int = DEFAULT_CHUNK_SIZE
                       ) -> PipelineResult:
    """Run a search with the bit-parallel comparer baseline."""
    pipeline = BitParallelCasOffinder(device=device,
                                      chunk_size=chunk_size)
    return pipeline.search(assembly, request)
