"""Pure-Python reference implementation (correctness oracle).

This is a direct, unoptimized statement of what Cas-OFFinder computes: for
every position of every chromosome, on both strands, if the site matches
the PAM pattern, count query mismatches and report sites at or under the
threshold.  Every device-kernel variant and both host pipelines are tested
against this oracle on small genomes; it is deliberately simple and slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Union

import numpy as np

from ..genome.assembly import Assembly
from .patterns import (MASK_TABLE, MISMATCH_LUT, compile_pattern,
                       validate_iupac)
from .records import OffTargetHit


def _site_matches(pattern: np.ndarray, window: np.ndarray) -> bool:
    """Finder semantics: checked positions must mask-match; genome N fails."""
    for k in range(pattern.size):
        p = pattern[k]
        if p == ord("N"):
            continue
        g = window[k]
        gmask = MASK_TABLE[g]
        if gmask == 15 or not (MASK_TABLE[p] & gmask):
            return False
    return True


def _count_mismatches(query: np.ndarray, window: np.ndarray,
                      threshold: int) -> int:
    """Comparer semantics (Listing 1), with the same early exit."""
    count = 0
    for k in range(query.size):
        if query[k] == ord("N"):
            continue
        if MISMATCH_LUT[query[k], window[k]]:
            count += 1
            if count > threshold:
                break
    return count


def reference_search(assembly: Assembly,
                     pattern: Union[str, bytes, np.ndarray],
                     queries: Sequence[Union[str, bytes, np.ndarray]],
                     max_mismatches: Union[int, Sequence[int]],
                     ) -> List[OffTargetHit]:
    """Exhaustively search an assembly; returns hits in deterministic order.

    ``max_mismatches`` may be a single threshold for all queries or one
    per query.  Hits are ordered by (query index, chromosome order,
    position, strand) — callers comparing against pipeline output should
    sort both sides with :func:`repro.core.records.sort_hits`.
    """
    compiled_pattern = compile_pattern(pattern)
    compiled_queries = [compile_pattern(q) for q in queries]
    if isinstance(max_mismatches, (int, np.integer)):
        thresholds = [int(max_mismatches)] * len(compiled_queries)
    else:
        thresholds = [int(t) for t in max_mismatches]
        if len(thresholds) != len(compiled_queries):
            raise ValueError(
                f"{len(compiled_queries)} queries but "
                f"{len(thresholds)} thresholds")
    plen = compiled_pattern.plen
    for cq in compiled_queries:
        if cq.plen != plen:
            raise ValueError(
                f"query {cq.decode()!r} length {cq.plen} differs from "
                f"pattern length {plen}")
    hits: List[OffTargetHit] = []
    for qi, (cq, threshold) in enumerate(zip(compiled_queries, thresholds)):
        for chrom in assembly:
            seq = chrom.sequence
            for pos in range(seq.size - plen + 1):
                window = seq[pos:pos + plen]
                fwd_ok = _site_matches(compiled_pattern.sequence, window)
                rev_ok = _site_matches(compiled_pattern.rc_sequence, window)
                if fwd_ok:
                    mm = _count_mismatches(cq.sequence, window, threshold)
                    if mm <= threshold:
                        hits.append(OffTargetHit.from_site(
                            query=cq.decode(), chrom=chrom.name,
                            position=pos, strand="+", mismatches=mm,
                            window=window, query_codes=cq.sequence))
                if rev_ok:
                    mm = _count_mismatches(cq.rc_sequence, window, threshold)
                    if mm <= threshold:
                        hits.append(OffTargetHit.from_site(
                            query=cq.decode(), chrom=chrom.name,
                            position=pos, strand="-", mismatches=mm,
                            window=window, query_codes=cq.rc_sequence))
    return hits
