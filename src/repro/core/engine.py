"""Streaming execution engine: prefetch, worker parallelism, ordered merge.

The serial chunk loop in :mod:`repro.core.pipeline` stages a chunk, runs
both kernels, merges the outputs, and only then touches the next chunk —
so the host sits idle while the device works and vice versa.  The real
Cas-OFFinder application hides that latency by double-buffering chunk
uploads; this engine models the same overlap structure explicitly:

* a producer thread walks ``assembly.chunks`` and stages up to
  ``prefetch_depth`` chunks ahead of the consumers (bounded queue);
* ``workers`` consumer threads each own a full pipeline instance (their
  own queue/context, so no shared mutable device state) and run the
  finder/comparer kernels per chunk;
* the main thread merges finished chunks strictly in chunk-index order
  through the same :class:`~repro.core.pipeline.SearchAccumulator` the
  serial loop uses, so hit lists and workload counters are identical to
  a serial run — the property the equivalence tests pin down.

The total in-flight window (staged + processing + awaiting merge) is
bounded by ``prefetch_depth + workers`` via a semaphore, so memory use
stays proportional to the window, not the genome.

Per-stage wall seconds (stage-in, finder, comparer, merge, idle) are
recorded in :class:`~repro.core.workload.StageTimings` and attached to
the returned :class:`~repro.core.workload.WorkloadProfile`.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time
from typing import List, Optional, Sequence

from ..genome.assembly import Assembly, Chunk
from ..runtime.launch import LaunchRecord
from .config import ExecutionPolicy, Query, SearchRequest
from .patterns import compile_pattern
from .pipeline import (DEFAULT_CHUNK_SIZE, OpenCLCasOffinder,
                       PipelineResult, SearchAccumulator,
                       _kernel_stage_times, make_pipeline)
from .workload import StageTimings

#: Poll interval for interruptible blocking waits (seconds).
_POLL_S = 0.05

# -- process-pool worker state ------------------------------------------------
# One pipeline per worker process, built lazily by the pool initializer.
# Module-level because process pools can only call picklable top-level
# functions; each child process has its own copy.

_worker_pipeline = None


def _process_pool_init(api: str, device: str, variant: str, mode: str,
                       chunk_size: int, work_group_size: int) -> None:
    global _worker_pipeline
    _worker_pipeline = make_pipeline(api=api, device=device,
                                     variant=variant, mode=mode,
                                     chunk_size=chunk_size,
                                     work_group_size=work_group_size)


def _process_pool_run(chunk: Chunk, pattern_text: str,
                      queries: Sequence[Query], batched: bool):
    """Run both kernels for one chunk inside a worker process.

    Patterns recompile per process through the LRU cache, so the cost is
    paid once per worker, not per chunk.  Returns the chunk output plus
    the launch records it generated (the pipeline is long-lived, so only
    the new slice is shipped back).
    """
    pipeline = _worker_pipeline
    pattern = compile_pattern(pattern_text)
    compiled_queries = [compile_pattern(q.sequence) for q in queries]
    base = len(pipeline.launches)
    output = pipeline._process_chunk(chunk, pattern, list(queries),
                                     compiled_queries, batched=batched)
    return output, list(pipeline.launches[base:])


class ChunkShardView:
    """Assembly view exposing every ``step``-th chunk starting at
    ``index``.

    Chunks are independent (each carries its own pattern staging and
    candidate set), so a round-robin shard processed by its own pipeline
    yields exactly the results the full assembly would for those chunks.
    Shared by the multi-device searcher and the engine's composition
    with it.
    """

    def __init__(self, assembly: Assembly, index: int, step: int):
        if step < 1 or not 0 <= index < step:
            raise ValueError(f"bad shard ({index}, {step})")
        self._asm = assembly
        self.name = assembly.name
        self.chromosomes = assembly.chromosomes
        self.shard_index = index
        self.shard_step = step

    def chunks(self, chunk_size, pattern_length):
        for number, chunk in enumerate(
                self._asm.chunks(chunk_size, pattern_length)):
            if number % self.shard_step == self.shard_index:
                yield chunk

    def __iter__(self):
        return iter(self._asm)

    def __getattr__(self, name):
        return getattr(self._asm, name)


class StreamingEngine:
    """Producer/consumer chunk engine over any of the three pipelines."""

    def __init__(self, policy: Optional[ExecutionPolicy] = None,
                 api: str = "sycl", device: str = "MI100",
                 variant: str = "base", mode: str = "vectorized",
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 work_group_size: int = 256):
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.api = api
        self.device = device
        self.variant_name = variant
        self.mode = mode
        self.chunk_size = chunk_size
        self.work_group_size = work_group_size

    def search(self, assembly: Assembly, request: SearchRequest
               ) -> PipelineResult:
        started = time.perf_counter()
        policy = self.policy
        pattern = compile_pattern(request.pattern)
        compiled_queries = [compile_pattern(q.sequence)
                            for q in request.queries]
        use_batched = policy.batch_queries and len(request.queries) > 1
        acc = SearchAccumulator(request, pattern, compiled_queries)
        if policy.backend == "process" and policy.workers > 1:
            outcome = self._run_processes(assembly, request, pattern,
                                          use_batched, acc)
        else:
            outcome = self._run_threads(assembly, request, pattern,
                                        compiled_queries, use_batched,
                                        acc)
        launches, stage_in_s, idle_s, api, variant, wg = outcome
        wall = time.perf_counter() - started
        finder_s, comparer_s = _kernel_stage_times(launches)
        stages = StageTimings(stage_in_s=stage_in_s, finder_s=finder_s,
                              comparer_s=comparer_s,
                              merge_s=acc.merge_time_s,
                              idle_s=idle_s, wall_s=wall)
        workload = acc.build_workload(assembly.name, self.chunk_size,
                                      stages)
        return PipelineResult(hits=acc.hits, launches=launches,
                              workload=workload, wall_time_s=wall,
                              api=api, variant=variant,
                              work_group_size=wg)

    def _run_processes(self, assembly, request, pattern, use_batched,
                       acc):
        """Ordered-merge fan-out over a process pool.

        The main process stages chunks and merges results; worker
        processes run the kernels.  The in-flight window (submitted but
        not yet merged) is bounded by ``prefetch_depth + workers``.
        Merging strictly in submission order keeps results identical to
        the serial loop.
        """
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        policy = self.policy
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        else:
            ctx = multiprocessing.get_context()
        window = policy.prefetch_depth + policy.workers
        launches: List[LaunchRecord] = []
        pending = {}
        state = {"next": 0, "stage_in": 0.0, "idle": 0.0}
        queries = tuple(request.queries)

        def merge_next() -> None:
            future, chunk = pending.pop(state["next"])
            mark = time.perf_counter()
            output, records = future.result()
            state["idle"] += time.perf_counter() - mark
            acc.add_chunk(chunk, output)
            launches.extend(records)
            state["next"] += 1

        with ProcessPoolExecutor(
                max_workers=policy.workers, mp_context=ctx,
                initializer=_process_pool_init,
                initargs=(self.api, self.device, self.variant_name,
                          self.mode, self.chunk_size,
                          self.work_group_size)) as pool:
            mark = time.perf_counter()
            for index, chunk in enumerate(
                    assembly.chunks(self.chunk_size, pattern.plen)):
                state["stage_in"] += time.perf_counter() - mark
                future = pool.submit(_process_pool_run, chunk,
                                     request.pattern, queries,
                                     use_batched)
                pending[index] = (future, chunk)
                while len(pending) >= window:
                    merge_next()
                mark = time.perf_counter()
            while pending:
                merge_next()
        if self.api == "opencl":
            api, variant, wg = "opencl", "base", None
        else:
            from ..kernels.variants import get_variant
            api = self.api
            variant = get_variant(self.variant_name).name
            wg = self.work_group_size
        return (launches, state["stage_in"], state["idle"], api, variant,
                wg)

    def _run_threads(self, assembly, request, pattern, compiled_queries,
                     use_batched, acc):
        policy = self.policy
        workers = policy.workers
        pipelines = [make_pipeline(api=self.api, device=self.device,
                                   variant=self.variant_name,
                                   mode=self.mode,
                                   chunk_size=self.chunk_size,
                                   work_group_size=self.work_group_size)
                     for _ in range(workers)]
        chunk_q: "queue_mod.Queue" = queue_mod.Queue(
            maxsize=policy.prefetch_depth)
        window = threading.Semaphore(policy.prefetch_depth + workers)
        cond = threading.Condition()
        results = {}
        finished_workers = [0]
        errors: List[BaseException] = []
        stop = threading.Event()
        stage_in = [0.0]
        idle = [0.0] * workers

        def fail(exc: BaseException) -> None:
            errors.append(exc)
            stop.set()
            with cond:
                cond.notify_all()

        def produce() -> None:
            try:
                mark = time.perf_counter()
                for index, chunk in enumerate(
                        assembly.chunks(self.chunk_size, pattern.plen)):
                    stage_in[0] += time.perf_counter() - mark
                    while not window.acquire(timeout=_POLL_S):
                        if stop.is_set():
                            return
                    while True:
                        if stop.is_set():
                            return
                        try:
                            chunk_q.put((index, chunk), timeout=_POLL_S)
                            break
                        except queue_mod.Full:
                            continue
                    mark = time.perf_counter()
            except BaseException as exc:
                fail(exc)
            finally:
                for _ in range(workers):
                    while True:
                        try:
                            chunk_q.put(None, timeout=_POLL_S)
                            break
                        except queue_mod.Full:
                            if stop.is_set():
                                return

        def consume(worker_index: int) -> None:
            pipeline = pipelines[worker_index]
            try:
                while True:
                    mark = time.perf_counter()
                    item = chunk_q.get()
                    idle[worker_index] += time.perf_counter() - mark
                    if item is None:
                        return
                    if stop.is_set():
                        continue
                    index, chunk = item
                    base = len(pipeline.launches)
                    output = pipeline._process_chunk(
                        chunk, pattern, request.queries,
                        compiled_queries, batched=use_batched)
                    records = list(pipeline.launches[base:])
                    with cond:
                        results[index] = (chunk, output, records)
                        cond.notify_all()
            except BaseException as exc:
                fail(exc)
            finally:
                with cond:
                    finished_workers[0] += 1
                    cond.notify_all()

        producer = threading.Thread(target=produce, name="chunk-producer",
                                    daemon=True)
        consumers = [threading.Thread(target=consume, args=(i,),
                                      name=f"chunk-worker-{i}",
                                      daemon=True)
                     for i in range(workers)]
        launches: List[LaunchRecord] = []
        try:
            producer.start()
            for thread in consumers:
                thread.start()
            next_index = 0
            while True:
                with cond:
                    while True:
                        if next_index in results:
                            item = results.pop(next_index)
                            break
                        if stop.is_set():
                            item = None
                            break
                        if finished_workers[0] == workers:
                            item = None
                            break
                        cond.wait(_POLL_S)
                if item is None:
                    break
                chunk, output, records = item
                acc.add_chunk(chunk, output)
                launches.extend(records)
                window.release()
                next_index += 1
            producer.join()
            for thread in consumers:
                thread.join()
            if errors:
                raise errors[0]
        finally:
            stop.set()
            for pipeline in pipelines:
                if isinstance(pipeline, OpenCLCasOffinder):
                    pipeline.release()
        template = pipelines[0]
        return (launches, stage_in[0], sum(idle), template.api,
                template.variant, template.work_group_size)


def streaming_search(assembly: Assembly, request: SearchRequest,
                     api: str = "sycl", device: str = "MI100",
                     variant: str = "base", mode: str = "vectorized",
                     chunk_size: int = DEFAULT_CHUNK_SIZE,
                     policy: Optional[ExecutionPolicy] = None
                     ) -> PipelineResult:
    """Convenience wrapper over :class:`StreamingEngine`."""
    engine = StreamingEngine(policy, api=api, device=device,
                             variant=variant, mode=mode,
                             chunk_size=chunk_size)
    return engine.search(assembly, request)
