"""Streaming execution engine: prefetch, worker parallelism, ordered merge.

The serial chunk loop in :mod:`repro.core.pipeline` stages a chunk, runs
both kernels, merges the outputs, and only then touches the next chunk —
so the host sits idle while the device works and vice versa.  The real
Cas-OFFinder application hides that latency by double-buffering chunk
uploads; this engine models the same overlap structure explicitly:

* a producer thread walks ``assembly.chunks`` and stages up to
  ``prefetch_depth`` chunks ahead of the consumers (bounded queue);
* ``workers`` consumer threads each own a full pipeline instance (their
  own queue/context, so no shared mutable device state) and run the
  finder/comparer kernels per chunk;
* the main thread merges finished chunks strictly in chunk-index order
  through the same :class:`~repro.core.pipeline.SearchAccumulator` the
  serial loop uses, so hit lists and workload counters are identical to
  a serial run — the property the equivalence tests pin down.

The total in-flight window (staged + processing + awaiting merge) is
bounded by ``prefetch_depth + workers`` via a semaphore, so memory use
stays proportional to the window, not the genome.

Failure behavior is structured rather than emergent.  Each chunk's
processing is guarded: an exception (including an injected fault, see
:mod:`repro.observability.faults`) or a ``chunk_deadline_s`` overrun is
retried on the same worker with capped exponential backoff; a deadline
overrun additionally abandons the (possibly wedged) pipeline and gives
the worker a fresh one.  When retries are exhausted the failure marker
travels to the merging thread in chunk order, which — when
``serial_fallback`` is enabled — re-runs the chunk on a fresh pipeline
inline, preserving the byte-identical ordered-merge invariant.  Only
when the fallback itself fails does the search raise
:class:`ChunkProcessingError`.

Per-stage wall seconds (stage-in, finder, comparer, merge, idle) are
recorded in :class:`~repro.core.workload.StageTimings` and attached to
the returned :class:`~repro.core.workload.WorkloadProfile`; when a
:mod:`repro.observability.tracing` recorder is active the engine also
records spans for every chunk stage-in, processing attempt, kernel
launch (via the runtime models), merge and fallback.

Durability composes on top of the in-run fault handling: when the
policy (or ``REPRO_CHECKPOINT_DIR``) names a checkpoint directory, the
merging thread journals every freshly merged chunk through a
:class:`~repro.resilience.checkpoint.CheckpointSession`, and on resume
the workers skip journaled chunks entirely, replaying their persisted
outputs through the same ordered merge (``checkpoint_skip`` /
``checkpoint_write`` trace events mark both paths).
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time
from typing import List, Optional, Sequence

from ..genome.assembly import Assembly, Chunk
from ..observability import faults, tracing
from ..runtime.launch import LaunchRecord
from .config import ExecutionPolicy, Query, SearchRequest
from .patterns import compile_pattern
from .pipeline import (DEFAULT_CHUNK_SIZE, OpenCLCasOffinder,
                       PipelineResult, SearchAccumulator,
                       _kernel_stage_times, make_pipeline)
from .workload import StageTimings
from ..resilience.checkpoint import CheckpointSession, resolve_session

#: Poll interval for interruptible blocking waits (seconds).
_POLL_S = 0.05


class ChunkDeadlineExceeded(RuntimeError):
    """A chunk's processing overran the policy's per-chunk deadline."""

    def __init__(self, chunk_index: int, deadline_s: float):
        super().__init__(f"chunk {chunk_index} exceeded the "
                         f"{deadline_s:g}s processing deadline")
        self.chunk_index = chunk_index
        self.deadline_s = deadline_s


class ChunkProcessingError(RuntimeError):
    """A chunk failed its retries and (if enabled) the serial fallback."""

    def __init__(self, chunk_index: int, detail: str):
        super().__init__(f"chunk {chunk_index} failed: {detail}")
        self.chunk_index = chunk_index


class _ChunkFailure:
    """Ordered-merge marker for a chunk whose worker retries ran out."""

    __slots__ = ("chunk", "error", "attempts")

    def __init__(self, chunk: Chunk, error: BaseException, attempts: int):
        self.chunk = chunk
        self.error = error
        self.attempts = attempts


# -- process-pool worker state ------------------------------------------------
# One pipeline per worker process, built lazily by the pool initializer.
# Module-level because process pools can only call picklable top-level
# functions; each child process has its own copy.

_worker_pipeline = None
_worker_injector: Optional[faults.FaultInjector] = None


def _process_pool_init(api: str, device: str, variant: str, mode: str,
                       chunk_size: int, work_group_size: int,
                       fault_spec: Optional[str] = None,
                       trace: bool = False) -> None:
    global _worker_pipeline, _worker_injector
    _worker_pipeline = make_pipeline(api=api, device=device,
                                     variant=variant, mode=mode,
                                     chunk_size=chunk_size,
                                     work_group_size=work_group_size)
    # Each child holds its own firing counters, so process-backend plans
    # should use single-fire entries (the parent-side fallback absorbs
    # the failure deterministically either way).
    _worker_injector = (faults.FaultInjector(
        faults.parse_fault_plan(fault_spec), device=device)
        if fault_spec else None)
    if trace:
        tracing.activate(tracing.TraceRecorder())


def _process_pool_run(index: int, chunk: Chunk, pattern_text: str,
                      queries: Sequence[Query], batched: bool):
    """Run both kernels for one chunk inside a worker process.

    Patterns recompile per process through the LRU cache, so the cost is
    paid once per worker, not per chunk.  Returns the chunk output, the
    launch records it generated (the pipeline is long-lived, so only
    the new slice is shipped back) and any trace spans recorded.
    """
    pipeline = _worker_pipeline
    if _worker_injector is not None:
        _worker_injector.inject(index)
    pattern = compile_pattern(pattern_text)
    compiled_queries = [compile_pattern(q.sequence) for q in queries]
    base = len(pipeline.launches)
    with tracing.span("chunk", cat="chunk", chunk=index):
        output = pipeline._process_chunk(chunk, pattern, list(queries),
                                         compiled_queries,
                                         batched=batched)
    return (output, list(pipeline.launches[base:]),
            tracing.drain_active())


class ChunkShardView:
    """Assembly view exposing every ``step``-th chunk starting at
    ``index``.

    Chunks are independent (each carries its own pattern staging and
    candidate set), so a round-robin shard processed by its own pipeline
    yields exactly the results the full assembly would for those chunks.
    Shared by the multi-device searcher and the engine's composition
    with it.
    """

    def __init__(self, assembly: Assembly, index: int, step: int):
        if step < 1 or not 0 <= index < step:
            raise ValueError(f"bad shard ({index}, {step})")
        self._asm = assembly
        self.name = assembly.name
        self.chromosomes = assembly.chromosomes
        self.shard_index = index
        self.shard_step = step

    def chunks(self, chunk_size, pattern_length):
        for number, chunk in enumerate(
                self._asm.chunks(chunk_size, pattern_length)):
            if number % self.shard_step == self.shard_index:
                yield chunk

    def __iter__(self):
        return iter(self._asm)

    def __getattr__(self, name):
        # Underscore/dunder lookups must fail plainly: delegating them
        # recurses on `self._asm` before __init__ has run (unpickling,
        # copy) and breaks protocol probes like __setstate__.
        if name.startswith("_"):
            raise AttributeError(
                f"{type(self).__name__} object has no attribute {name!r}")
        return getattr(self._asm, name)


class ChunkSubsetView:
    """Assembly view exposing exactly the chunks whose ``(chrom, start)``
    keys are named.

    The multi-device searcher uses this for failover: a failed device's
    shard is an arbitrary key set once its completed chunks are
    subtracted, and redistributing those keys across surviving devices
    must yield exactly the chunks the failed shard would have produced.
    Chunk order follows the assembly's canonical enumeration, so the
    ordered-merge invariant holds within each redistributed slice.
    """

    def __init__(self, assembly, keys):
        self._asm = assembly
        self.name = assembly.name
        self.chromosomes = assembly.chromosomes
        self.keys = frozenset(keys)

    def chunks(self, chunk_size, pattern_length):
        for chunk in self._asm.chunks(chunk_size, pattern_length):
            if (chunk.chrom, chunk.start) in self.keys:
                yield chunk

    def __iter__(self):
        return iter(self._asm)

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(
                f"{type(self).__name__} object has no attribute {name!r}")
        return getattr(self._asm, name)


class StreamingEngine:
    """Producer/consumer chunk engine over any of the three pipelines."""

    def __init__(self, policy: Optional[ExecutionPolicy] = None,
                 api: str = "sycl", device: str = "MI100",
                 variant: str = "base", mode: str = "vectorized",
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 work_group_size: int = 256,
                 checkpoint_session: Optional[CheckpointSession] = None,
                 checkpoint_meta: Optional[dict] = None):
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.api = api
        self.device = device
        self.variant_name = variant
        self.mode = mode
        self.chunk_size = chunk_size
        self.work_group_size = work_group_size
        #: Externally owned session (multi-device shares one); when
        #: None, ``search`` resolves and owns its own from the policy.
        self.checkpoint_session = checkpoint_session
        self.checkpoint_meta = dict(checkpoint_meta or ())

    def _journal_meta(self) -> dict:
        meta = {"device": self.device}
        meta.update(self.checkpoint_meta)
        return meta

    def _make_worker_pipeline(self):
        return make_pipeline(api=self.api, device=self.device,
                             variant=self.variant_name, mode=self.mode,
                             chunk_size=self.chunk_size,
                             work_group_size=self.work_group_size)

    def search(self, assembly: Assembly, request: SearchRequest
               ) -> PipelineResult:
        started = time.perf_counter()
        policy = self.policy
        pattern = compile_pattern(request.pattern)
        compiled_queries = [compile_pattern(q.sequence)
                            for q in request.queries]
        use_batched = policy.batch_queries and len(request.queries) > 1
        acc = SearchAccumulator(request, pattern, compiled_queries)
        session = self.checkpoint_session
        owned = False
        if session is None:
            session = resolve_session(policy, assembly, request,
                                      self.chunk_size)
            owned = session is not None
        try:
            if policy.backend == "process" and policy.workers > 1:
                outcome = self._run_processes(assembly, request, pattern,
                                              compiled_queries,
                                              use_batched, acc, session)
            else:
                outcome = self._run_threads(assembly, request, pattern,
                                            compiled_queries, use_batched,
                                            acc, session)
        finally:
            if owned:
                session.close()
        launches, stage_in_s, idle_s, api, variant, wg = outcome
        wall = time.perf_counter() - started
        finder_s, comparer_s = _kernel_stage_times(launches)
        stages = StageTimings(stage_in_s=stage_in_s, finder_s=finder_s,
                              comparer_s=comparer_s,
                              merge_s=acc.merge_time_s,
                              idle_s=idle_s, wall_s=wall)
        workload = acc.build_workload(assembly.name, self.chunk_size,
                                      stages)
        return PipelineResult(hits=acc.hits, launches=launches,
                              workload=workload, wall_time_s=wall,
                              api=api, variant=variant,
                              work_group_size=wg)

    # -- shared failure handling ------------------------------------------

    def _backoff_sleep(self, attempt: int,
                       stop: Optional[threading.Event] = None) -> None:
        policy = self.policy
        delay = min(policy.retry_backoff_cap_s,
                    policy.retry_backoff_s * (2 ** attempt))
        deadline = time.perf_counter() + delay
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0 or (stop is not None and stop.is_set()):
                return
            time.sleep(min(_POLL_S, remaining))

    def _serial_fallback_run(self, index: int, failure: _ChunkFailure,
                             fallback_box: list, pattern, queries,
                             compiled_queries, use_batched,
                             injector: Optional[faults.FaultInjector]):
        """Degrade a failed chunk to a fresh pipeline on this thread.

        The fallback pipeline is built lazily and reused across failed
        chunks; it still consults the fault injector, so a persistent
        fault (more firings than retries + fallback) surfaces as
        :class:`ChunkProcessingError` instead of looping forever.
        """
        if not self.policy.serial_fallback:
            raise ChunkProcessingError(
                index, f"{failure.attempts} attempt(s) exhausted and "
                       f"serial fallback is disabled "
                       f"({failure.error!r})") from failure.error
        if not fallback_box:
            fallback_box.append(self._make_worker_pipeline())
        pipeline = fallback_box[0]
        try:
            with tracing.span("chunk_fallback", cat="fallback",
                              chunk=index):
                if injector is not None:
                    injector.inject(index)
                base = len(pipeline.launches)
                output = pipeline._process_chunk(
                    failure.chunk, pattern, queries, compiled_queries,
                    batched=use_batched)
                return output, list(pipeline.launches[base:])
        except BaseException as exc:
            raise ChunkProcessingError(
                index, f"{failure.attempts} attempt(s) and the serial "
                       f"fallback all failed ({exc!r})") from exc

    @staticmethod
    def _release_pipelines(pipelines) -> None:
        for pipeline in pipelines:
            if isinstance(pipeline, OpenCLCasOffinder):
                try:
                    pipeline.release()
                except Exception:
                    pass  # already released or wedged mid-fault

    # -- process backend ---------------------------------------------------

    def _run_processes(self, assembly, request, pattern,
                       compiled_queries, use_batched, acc, session=None):
        """Ordered-merge fan-out over a process pool.

        The main process stages chunks and merges results; worker
        processes run the kernels.  The in-flight window (submitted but
        not yet merged) is bounded by ``prefetch_depth + workers``.
        Merging strictly in submission order keeps results identical to
        the serial loop.  A worker failure (raised fault, dead process,
        deadline overrun) degrades that chunk to the main process's
        serial fallback pipeline; a broken pool additionally degrades
        every not-yet-submitted chunk.  Checkpoint restores and journal
        writes both happen parent-side, so the journal never crosses
        the pool boundary.
        """
        import multiprocessing
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures import ProcessPoolExecutor

        policy = self.policy
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        else:
            ctx = multiprocessing.get_context()
        window = policy.prefetch_depth + policy.workers
        launches: List[LaunchRecord] = []
        pending = {}
        state = {"next": 0, "stage_in": 0.0, "idle": 0.0,
                 "broken": False}
        queries = tuple(request.queries)
        fault_spec = (policy.fault_plan if policy.fault_plan is not None
                      else None)
        fallback_box: list = []
        # The parent-side fallback never injects: the child already
        # consumed its firing, so the degraded re-run is deterministic.
        fallback = lambda index, failure: self._serial_fallback_run(
            index, failure, fallback_box, pattern, list(queries),
            compiled_queries, use_batched, injector=None)

        restored_ix: set = set()

        def merge_next() -> None:
            index = state["next"]
            future, chunk = pending.pop(index)
            mark = time.perf_counter()
            try:
                output, records, spans = future.result(
                    timeout=policy.chunk_deadline_s)
            except (KeyboardInterrupt, SystemExit):
                raise
            except FutureTimeout as exc:
                state["idle"] += time.perf_counter() - mark
                future.cancel()
                output, records = fallback(index, _ChunkFailure(
                    chunk, ChunkDeadlineExceeded(
                        index, policy.chunk_deadline_s), 1))
                spans = []
            except BaseException as exc:
                state["idle"] += time.perf_counter() - mark
                state["broken"] = state["broken"] or _pool_is_broken(exc)
                output, records = fallback(index, _ChunkFailure(
                    chunk, exc, 1))
                spans = []
            else:
                state["idle"] += time.perf_counter() - mark
            tracing.merge(spans)
            with tracing.span("merge", cat="merge", chunk=index):
                acc.add_chunk(chunk, output)
            launches.extend(records)
            if session is not None and index not in restored_ix:
                with tracing.span("checkpoint_write", cat="checkpoint",
                                  chunk=index):
                    session.record(chunk, output, **self._journal_meta())
            state["next"] += 1

        def _pool_is_broken(exc: BaseException) -> bool:
            from concurrent.futures.process import BrokenProcessPool
            return isinstance(exc, BrokenProcessPool)

        try:
            with ProcessPoolExecutor(
                    max_workers=policy.workers, mp_context=ctx,
                    initializer=_process_pool_init,
                    initargs=(self.api, self.device, self.variant_name,
                              self.mode, self.chunk_size,
                              self.work_group_size, fault_spec,
                              tracing.active() is not None)) as pool:
                mark = time.perf_counter()
                for index, chunk in enumerate(
                        assembly.chunks(self.chunk_size, pattern.plen)):
                    state["stage_in"] += time.perf_counter() - mark
                    restored = (session.restore(chunk)
                                if session is not None else None)
                    if restored is not None:
                        tracing.instant("checkpoint_skip",
                                        cat="checkpoint", chunk=index)
                        restored_ix.add(index)
                        future = _ResolvedFuture((restored, [], []))
                    elif state["broken"]:
                        future = _ResolvedFuture(fallback(
                            index, _ChunkFailure(
                                chunk, RuntimeError("process pool broken"),
                                0)) + ([],))
                    else:
                        try:
                            future = pool.submit(
                                _process_pool_run, index, chunk,
                                request.pattern, queries, use_batched)
                        except BaseException as exc:
                            state["broken"] = True
                            future = _ResolvedFuture(fallback(
                                index, _ChunkFailure(chunk, exc, 0))
                                + ([],))
                    pending[index] = (future, chunk)
                    while len(pending) >= window:
                        merge_next()
                    mark = time.perf_counter()
                while pending:
                    merge_next()
        finally:
            self._release_pipelines(fallback_box)
        if self.api == "opencl":
            api, variant, wg = "opencl", "base", None
        else:
            from ..kernels.variants import get_variant
            api = self.api
            variant = get_variant(self.variant_name).name
            wg = self.work_group_size
        return (launches, state["stage_in"], state["idle"], api, variant,
                wg)

    # -- thread backend ----------------------------------------------------

    def _run_threads(self, assembly, request, pattern, compiled_queries,
                     use_batched, acc, session=None):
        policy = self.policy
        workers = policy.workers
        injector = faults.resolve_injector(policy.fault_plan,
                                           device=self.device)
        pipelines = [self._make_worker_pipeline()
                     for _ in range(workers)]
        retired: List = []  # abandoned (deadline-wedged) pipelines
        chunk_q: "queue_mod.Queue" = queue_mod.Queue(
            maxsize=policy.prefetch_depth)
        window = threading.Semaphore(policy.prefetch_depth + workers)
        cond = threading.Condition()
        results = {}
        finished_workers = [0]
        errors: List[BaseException] = []
        stop = threading.Event()
        stage_in = [0.0]
        idle = [0.0] * workers

        def fail(exc: BaseException) -> None:
            errors.append(exc)
            stop.set()
            with cond:
                cond.notify_all()

        def produce() -> None:
            try:
                iterator = enumerate(
                    assembly.chunks(self.chunk_size, pattern.plen))
                index = -1
                while True:
                    mark = time.perf_counter()
                    with tracing.span("stage_in", cat="stage") as span:
                        item = next(iterator, None)
                        if item is not None:
                            span.args["chunk"] = item[0]
                    stage_in[0] += time.perf_counter() - mark
                    if item is None:
                        return
                    index, chunk = item
                    while not window.acquire(timeout=_POLL_S):
                        if stop.is_set():
                            return
                    while True:
                        if stop.is_set():
                            return
                        try:
                            chunk_q.put((index, chunk), timeout=_POLL_S)
                            break
                        except queue_mod.Full:
                            continue
            except BaseException as exc:
                fail(exc)
            finally:
                for _ in range(workers):
                    while True:
                        try:
                            chunk_q.put(None, timeout=_POLL_S)
                            break
                        except queue_mod.Full:
                            if stop.is_set():
                                return

        def process_once(worker_index: int, index: int, chunk: Chunk):
            """One processing attempt, under the deadline watchdog.

            Without a deadline the chunk runs inline.  With one, it runs
            on a watchdog thread: on overrun the (possibly wedged)
            pipeline is abandoned to ``retired`` and the worker gets a
            fresh pipeline, so a stalled queue cannot poison later
            chunks.
            """
            pipeline = pipelines[worker_index]

            def execute():
                if injector is not None:
                    injector.inject(index)
                base = len(pipeline.launches)
                output = pipeline._process_chunk(
                    chunk, pattern, request.queries, compiled_queries,
                    batched=use_batched)
                return output, list(pipeline.launches[base:])

            if policy.chunk_deadline_s is None:
                return execute()
            box: dict = {}

            def watchdog_target():
                try:
                    box["result"] = execute()
                except BaseException as exc:
                    box["error"] = exc

            watcher = threading.Thread(
                target=watchdog_target, daemon=True,
                name=f"chunk-{index}-attempt")
            watcher.start()
            watcher.join(policy.chunk_deadline_s)
            if watcher.is_alive():
                retired.append(pipeline)
                pipelines[worker_index] = self._make_worker_pipeline()
                raise ChunkDeadlineExceeded(index,
                                            policy.chunk_deadline_s)
            if "error" in box:
                raise box["error"]
            return box["result"]

        def process_chunk(worker_index: int, index: int, chunk: Chunk):
            """Retry loop: attempts = 1 + max_retries, capped backoff."""
            attempts = policy.max_retries + 1
            last: Optional[BaseException] = None
            for attempt in range(attempts):
                try:
                    with tracing.span("chunk", cat="chunk", chunk=index,
                                      worker=worker_index,
                                      attempt=attempt):
                        return process_once(worker_index, index, chunk)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:
                    last = exc
                    tracing.instant("chunk_retry", cat="fault",
                                    chunk=index, attempt=attempt,
                                    error=type(exc).__name__)
                    if attempt + 1 < attempts:
                        self._backoff_sleep(attempt, stop)
                        if stop.is_set():
                            break
            raise _RetriesExhausted(last, attempts)

        def consume(worker_index: int) -> None:
            try:
                while True:
                    mark = time.perf_counter()
                    item = chunk_q.get()
                    waited = time.perf_counter() - mark
                    if item is None:
                        # Shutdown drain: blocking on the end-of-stream
                        # sentinel is not idleness, so the clock stops
                        # here.
                        return
                    idle[worker_index] += waited
                    if stop.is_set():
                        continue
                    index, chunk = item
                    restored = (session.restore(chunk)
                                if session is not None else None)
                    if restored is not None:
                        tracing.instant("checkpoint_skip",
                                        cat="checkpoint", chunk=index)
                        payload = (chunk, restored, [], True)
                    else:
                        try:
                            output, records = process_chunk(worker_index,
                                                            index, chunk)
                            payload = (chunk, output, records, False)
                        except _RetriesExhausted as exc:
                            payload = _ChunkFailure(chunk, exc.error,
                                                    exc.attempts)
                    with cond:
                        results[index] = payload
                        cond.notify_all()
            except BaseException as exc:
                fail(exc)
            finally:
                with cond:
                    finished_workers[0] += 1
                    cond.notify_all()

        producer = threading.Thread(target=produce, name="chunk-producer",
                                    daemon=True)
        consumers = [threading.Thread(target=consume, args=(i,),
                                      name=f"chunk-worker-{i}",
                                      daemon=True)
                     for i in range(workers)]
        launches: List[LaunchRecord] = []
        fallback_box: list = []
        try:
            producer.start()
            for thread in consumers:
                thread.start()
            next_index = 0
            while True:
                with cond:
                    while True:
                        if next_index in results:
                            item = results.pop(next_index)
                            break
                        if stop.is_set():
                            item = None
                            break
                        if finished_workers[0] == workers:
                            item = None
                            break
                        cond.wait(_POLL_S)
                if item is None:
                    break
                if isinstance(item, _ChunkFailure):
                    output, records = self._serial_fallback_run(
                        next_index, item, fallback_box, pattern,
                        request.queries, compiled_queries, use_batched,
                        injector)
                    chunk = item.chunk
                    from_journal = False
                else:
                    chunk, output, records, from_journal = item
                with tracing.span("merge", cat="merge",
                                  chunk=next_index):
                    acc.add_chunk(chunk, output)
                launches.extend(records)
                if session is not None and not from_journal:
                    with tracing.span("checkpoint_write",
                                      cat="checkpoint",
                                      chunk=next_index):
                        session.record(chunk, output,
                                       **self._journal_meta())
                window.release()
                next_index += 1
            producer.join()
            for thread in consumers:
                thread.join()
            if errors:
                raise errors[0]
        finally:
            stop.set()
            self._release_pipelines(pipelines + retired + fallback_box)
        template = pipelines[0]
        return (launches, stage_in[0], sum(idle), template.api,
                template.variant, template.work_group_size)


class _RetriesExhausted(Exception):
    """Internal: carries the last error out of the worker retry loop."""

    def __init__(self, error: Optional[BaseException], attempts: int):
        super().__init__(f"{attempts} attempt(s) failed: {error!r}")
        self.error = error if error is not None else RuntimeError(
            "chunk processing interrupted")
        self.attempts = attempts


class _ResolvedFuture:
    """Future-alike wrapping a value computed inline (broken-pool path)."""

    def __init__(self, value):
        self._value = value

    def result(self, timeout=None):
        return self._value

    def cancel(self):
        return False


def streaming_search(assembly: Assembly, request: SearchRequest,
                     api: str = "sycl", device: str = "MI100",
                     variant: str = "base", mode: str = "vectorized",
                     chunk_size: int = DEFAULT_CHUNK_SIZE,
                     work_group_size: int = 256,
                     policy: Optional[ExecutionPolicy] = None
                     ) -> PipelineResult:
    """Convenience wrapper over :class:`StreamingEngine`."""
    engine = StreamingEngine(policy, api=api, device=device,
                             variant=variant, mode=mode,
                             chunk_size=chunk_size,
                             work_group_size=work_group_size)
    return engine.search(assembly, request)
