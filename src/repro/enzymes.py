"""Declarative Cas enzyme registry: PAM + guide anatomy as data.

Cas-OFFinder's command line hard-wires one search pattern per run; the
paper's case study likewise fixes SpCas9's ``N``x20+NRG anatomy.  Real
deployments serve several nucleases side by side — SpCas9, Cas12a
(whose TTTV PAM sits 5' of the spacer), engineered variants — and the
only thing that changes between them is *data*: the PAM codes, which
side of the protospacer they sit on, the guide length, and which
empirical scoring profile applies.  This module makes that data
declarative:

* :class:`CasEnzyme` is a frozen record of one enzyme's anatomy; the
  full search ``pattern`` (the exact string the finder kernel compiles)
  is derived from it — ``N``*guide+PAM for 3'-PAM enzymes, PAM+``N``*
  guide for 5'-PAM ones — so an enzyme definition can never disagree
  with the pattern served for it;
* definitions load from TOML or JSON config files (``[[enzymes]]``
  tables / an ``"enzymes"`` list) with typed :class:`EnzymeError`
  validation naming the file and field, so a malformed config fails at
  startup, not at query time;
* :class:`EnzymeRegistry` holds the validated set; the serving tier
  builds one separately-fingerprinted site index per registered enzyme
  and routes requests carrying an ``"enzyme"`` field to it.

Only 3'-PAM enzymes admit guide *design* (the design layer enumerates
into a degenerate prefix); 5'-PAM enzymes are searchable but the server
rejects design requests against them with a typed error.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

try:
    import tomllib  # Python 3.11+
except ImportError:  # pragma: no cover - 3.10 fallback, not exercised
    tomllib = None  # type: ignore[assignment]

from .core.patterns import PatternError, validate_iupac


class EnzymeError(ValueError):
    """A malformed enzyme definition or an unknown enzyme name."""


#: Where the PAM sits relative to the protospacer.
PAM_SIDES = ("3prime", "5prime")

#: Scoring profiles the serving stack knows how to apply.
SCORING_PROFILES = ("mit", "cfd")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: Keys an enzyme mapping may carry; anything else is a typo, not an
#: extension point — reject it so config drift fails loudly.
_ALLOWED_KEYS = frozenset(
    {"name", "guide_length", "pam", "pam_side", "scoring", "pattern",
     "description"})


@dataclass(frozen=True)
class CasEnzyme:
    """One nuclease's search anatomy, fully declarative."""

    name: str
    guide_length: int
    pam: str              # uppercase IUPAC PAM codes
    pam_side: str         # "3prime" (SpCas9-like) or "5prime" (Cas12a)
    scoring: str          # "mit" or "cfd"
    pattern: str          # full finder pattern, derived from the above
    description: str = ""

    @property
    def plen(self) -> int:
        return self.guide_length + len(self.pam)

    @property
    def designable(self) -> bool:
        """Whether the design layer can enumerate guides for it.

        Guide design fills a degenerate *prefix*; only 3'-PAM patterns
        have one.
        """
        return self.pam_side == "3prime"

    def to_payload(self) -> Dict[str, Any]:
        """Wire form for the ``enzymes`` server op."""
        return {
            "name": self.name,
            "guide_length": int(self.guide_length),
            "pam": self.pam,
            "pam_side": self.pam_side,
            "scoring": self.scoring,
            "pattern": self.pattern,
            "description": self.description,
        }


def derive_pattern(guide_length: int, pam: str, pam_side: str) -> str:
    """The finder pattern implied by an enzyme's anatomy."""
    spacer = "N" * guide_length
    return spacer + pam if pam_side == "3prime" else pam + spacer


def enzyme_from_mapping(mapping: Mapping[str, Any],
                        source: str = "<mapping>") -> CasEnzyme:
    """Validate one enzyme definition; raises :class:`EnzymeError`.

    ``source`` names where the definition came from (file and entry
    index) so errors point at the offending config line, not at this
    module.
    """
    if not isinstance(mapping, Mapping):
        raise EnzymeError(
            f"{source}: enzyme definition must be a table/object, got "
            f"{type(mapping).__name__}")
    unknown = set(mapping) - _ALLOWED_KEYS
    if unknown:
        raise EnzymeError(
            f"{source}: unknown enzyme field(s) {sorted(unknown)}; "
            f"allowed: {sorted(_ALLOWED_KEYS)}")

    name = mapping.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise EnzymeError(
            f"{source}: 'name' must be a non-empty identifier "
            f"(letters, digits, '_', '-', '.'), got {name!r}")

    guide_length = mapping.get("guide_length")
    if isinstance(guide_length, bool) or not isinstance(guide_length, int):
        raise EnzymeError(
            f"{source}: 'guide_length' must be an integer, got "
            f"{guide_length!r}")
    if guide_length < 1:
        raise EnzymeError(
            f"{source}: 'guide_length' must be >= 1, got {guide_length}")

    pam = mapping.get("pam")
    if not isinstance(pam, str) or not pam:
        raise EnzymeError(
            f"{source}: 'pam' must be a non-empty IUPAC string, got "
            f"{pam!r}")
    try:
        pam = validate_iupac(pam).tobytes().decode("ascii")
    except PatternError as exc:
        raise EnzymeError(f"{source}: bad PAM {mapping.get('pam')!r}: "
                          f"{exc}") from exc

    pam_side = mapping.get("pam_side", "3prime")
    if pam_side not in PAM_SIDES:
        raise EnzymeError(
            f"{source}: 'pam_side' must be one of {list(PAM_SIDES)}, "
            f"got {pam_side!r}")

    scoring = mapping.get("scoring", "mit")
    if scoring not in SCORING_PROFILES:
        raise EnzymeError(
            f"{source}: 'scoring' must be one of "
            f"{list(SCORING_PROFILES)}, got {scoring!r}")

    description = mapping.get("description", "")
    if not isinstance(description, str):
        raise EnzymeError(
            f"{source}: 'description' must be a string, got "
            f"{description!r}")

    derived = derive_pattern(guide_length, pam, pam_side)
    declared = mapping.get("pattern")
    if declared is not None:
        if not isinstance(declared, str):
            raise EnzymeError(
                f"{source}: 'pattern' must be a string, got "
                f"{declared!r}")
        try:
            declared = validate_iupac(declared).tobytes().decode("ascii")
        except PatternError as exc:
            raise EnzymeError(
                f"{source}: bad pattern {mapping.get('pattern')!r}: "
                f"{exc}") from exc
        if declared != derived:
            raise EnzymeError(
                f"{source}: declared pattern {declared!r} disagrees "
                f"with the anatomy-derived pattern {derived!r} "
                f"(guide_length={guide_length}, pam={pam!r}, "
                f"pam_side={pam_side!r})")
    return CasEnzyme(name=name, guide_length=guide_length, pam=pam,
                     pam_side=pam_side, scoring=scoring, pattern=derived,
                     description=description)


def load_enzymes(path: str) -> List[CasEnzyme]:
    """Load enzyme definitions from a TOML or JSON config file.

    TOML files carry ``[[enzymes]]`` tables; JSON files an object with
    an ``"enzymes"`` list.  Raises :class:`EnzymeError` for unreadable
    files, parse errors, or any invalid definition.
    """
    text_path = str(path)
    if text_path.endswith(".toml"):
        if tomllib is None:  # pragma: no cover
            raise EnzymeError(
                f"{text_path}: TOML enzyme configs need Python 3.11+ "
                f"(tomllib); use a .json config instead")
        try:
            with open(text_path, "rb") as handle:
                raw = tomllib.load(handle)
        except OSError as exc:
            raise EnzymeError(
                f"cannot read enzyme config {text_path}: {exc}") from exc
        except tomllib.TOMLDecodeError as exc:
            raise EnzymeError(
                f"{text_path}: TOML parse error: {exc}") from exc
    elif text_path.endswith(".json"):
        try:
            with open(text_path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except OSError as exc:
            raise EnzymeError(
                f"cannot read enzyme config {text_path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise EnzymeError(
                f"{text_path}: JSON parse error: {exc}") from exc
    else:
        raise EnzymeError(
            f"enzyme config {text_path!r} must end in .toml or .json")

    if not isinstance(raw, Mapping) or "enzymes" not in raw:
        raise EnzymeError(
            f"{text_path}: expected a top-level 'enzymes' list "
            f"([[enzymes]] tables in TOML)")
    entries = raw["enzymes"]
    if not isinstance(entries, list) or not entries:
        raise EnzymeError(
            f"{text_path}: 'enzymes' must be a non-empty list, got "
            f"{entries!r}")
    return [enzyme_from_mapping(entry, source=f"{text_path}#enzymes[{i}]")
            for i, entry in enumerate(entries)]


class EnzymeRegistry:
    """Validated, name-keyed set of enzymes a server can serve."""

    def __init__(self, enzymes: Sequence[CasEnzyme] = ()):
        self._by_name: Dict[str, CasEnzyme] = {}
        for enzyme in enzymes:
            self.add(enzyme)

    def add(self, enzyme: CasEnzyme) -> None:
        if enzyme.name in self._by_name:
            raise EnzymeError(
                f"duplicate enzyme name {enzyme.name!r} in registry")
        self._by_name[enzyme.name] = enzyme

    def get(self, name: str) -> CasEnzyme:
        try:
            return self._by_name[name]
        except KeyError:
            raise EnzymeError(
                f"unknown enzyme {name!r}; registry has "
                f"{sorted(self._by_name) or 'no enzymes'}") from None

    @property
    def names(self) -> List[str]:
        """Registration order, the order indexes are built in."""
        return list(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[CasEnzyme]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)


#: Built-in definitions, usable without any config file.  SpCas9's PAM
#: is written NRG (its leading N merges into the guide run textually);
#: Cas12a's TTTV PAM sits 5' of a 23-nt spacer.
SPCAS9 = CasEnzyme(
    name="SpCas9", guide_length=20, pam="NRG", pam_side="3prime",
    scoring="cfd", pattern=derive_pattern(20, "NRG", "3prime"),
    description="S. pyogenes Cas9; 20-nt guide, 3' NGG-family PAM")

CAS12A = CasEnzyme(
    name="Cas12a", guide_length=23, pam="TTTV", pam_side="5prime",
    scoring="mit", pattern=derive_pattern(23, "TTTV", "5prime"),
    description="Cas12a (Cpf1); 23-nt spacer, 5' TTTV PAM")

BUILTIN_ENZYMES = (SPCAS9, CAS12A)


def builtin_registry() -> EnzymeRegistry:
    return EnzymeRegistry(BUILTIN_ENZYMES)
