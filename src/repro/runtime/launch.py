"""Launch records: the common trace format both front-ends emit.

Each kernel launch or host<->device transfer appends a
:class:`LaunchRecord` to its queue.  The profiler
(:mod:`repro.analysis.profiling`) aggregates these to reproduce the
paper's hotspot analysis ("the compare kernel accounts for ~98 % of the
total kernel execution time"), and the device timing model
(:mod:`repro.devices.timing`) re-costs the same records on each modeled
GPU to regenerate the elapsed-time tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .executor import ExecutionStats


@dataclass
class LaunchRecord:
    """One traced command: a kernel launch or a buffer transfer."""

    kind: str                      # "kernel" | "h2d" | "d2h"
    name: str                      # kernel name or transfer direction
    api: str                       # "opencl" | "sycl"
    wall_time_s: float             # measured Python wall time
    global_size: int = 0
    local_size: int = 0
    bytes_moved: int = 0
    stats: Optional[ExecutionStats] = None
    #: True when the runtime (not the host program) chose the work-group
    #: size, as in the paper's OpenCL application.
    runtime_chosen_wg: bool = False
    #: Kernel variant label ("base", "opt1" ... "opt4") when applicable.
    variant: str = "base"
    #: Number of queries fused into this launch (1 for the per-query
    #: comparer loop; > 1 for the batched multi-query comparer).
    batch: int = 1
    #: Free-form counters the timing model consumes (e.g. candidate count,
    #: average compare-loop trip count).
    profile: dict = field(default_factory=dict)

    @classmethod
    def kernel(cls, name: str, global_size: int, local_size: int,
               wall_time_s: float, stats: ExecutionStats, api: str,
               runtime_chosen_wg: bool = False, variant: str = "base",
               batch: int = 1,
               profile: Optional[dict] = None) -> "LaunchRecord":
        return cls(kind="kernel", name=name, api=api,
                   wall_time_s=wall_time_s, global_size=global_size,
                   local_size=local_size, stats=stats,
                   runtime_chosen_wg=runtime_chosen_wg, variant=variant,
                   batch=batch, profile=profile or {})

    @classmethod
    def transfer(cls, direction: str, bytes_moved: int, wall_time_s: float,
                 api: str) -> "LaunchRecord":
        return cls(kind=direction, name=direction, api=api,
                   wall_time_s=wall_time_s, bytes_moved=bytes_moved)

    @property
    def is_kernel(self) -> bool:
        return self.kind == "kernel"
