"""Error types shared by the OpenCL-style and SYCL-style runtime models.

The two API front-ends report failures differently, mirroring the real
programming models the paper contrasts:

* the OpenCL-style API (:mod:`repro.runtime.opencl`) returns / raises
  :class:`CLError` values carrying a numeric status code, like the C API's
  ``cl_int`` error codes;
* the SYCL-style API (:mod:`repro.runtime.sycl`) raises
  :class:`SYCLException` subclasses, like SYCL 2020's exception hierarchy.

Both hierarchies derive from :class:`RuntimeModelError` so library code can
catch runtime-model failures generically.
"""

from __future__ import annotations


class RuntimeModelError(Exception):
    """Base class for every error raised by the runtime models."""


# ---------------------------------------------------------------------------
# OpenCL-style status codes (the subset the application exercises).
# ---------------------------------------------------------------------------

CL_SUCCESS = 0
CL_DEVICE_NOT_FOUND = -1
CL_OUT_OF_RESOURCES = -5
CL_OUT_OF_HOST_MEMORY = -6
CL_MEM_OBJECT_ALLOCATION_FAILURE = -4
CL_INVALID_VALUE = -30
CL_INVALID_BUFFER_SIZE = -61
CL_INVALID_CONTEXT = -34
CL_INVALID_COMMAND_QUEUE = -36
CL_INVALID_MEM_OBJECT = -38
CL_INVALID_PROGRAM = -44
CL_INVALID_PROGRAM_EXECUTABLE = -45
CL_INVALID_KERNEL_NAME = -46
CL_INVALID_KERNEL = -48
CL_INVALID_ARG_INDEX = -49
CL_INVALID_ARG_VALUE = -50
CL_INVALID_KERNEL_ARGS = -52
CL_INVALID_WORK_DIMENSION = -53
CL_INVALID_WORK_GROUP_SIZE = -54
CL_INVALID_GLOBAL_OFFSET = -56
CL_INVALID_EVENT = -58
CL_INVALID_OPERATION = -59

_CL_ERROR_NAMES = {
    CL_SUCCESS: "CL_SUCCESS",
    CL_DEVICE_NOT_FOUND: "CL_DEVICE_NOT_FOUND",
    CL_OUT_OF_RESOURCES: "CL_OUT_OF_RESOURCES",
    CL_OUT_OF_HOST_MEMORY: "CL_OUT_OF_HOST_MEMORY",
    CL_MEM_OBJECT_ALLOCATION_FAILURE: "CL_MEM_OBJECT_ALLOCATION_FAILURE",
    CL_INVALID_VALUE: "CL_INVALID_VALUE",
    CL_INVALID_BUFFER_SIZE: "CL_INVALID_BUFFER_SIZE",
    CL_INVALID_CONTEXT: "CL_INVALID_CONTEXT",
    CL_INVALID_COMMAND_QUEUE: "CL_INVALID_COMMAND_QUEUE",
    CL_INVALID_MEM_OBJECT: "CL_INVALID_MEM_OBJECT",
    CL_INVALID_PROGRAM: "CL_INVALID_PROGRAM",
    CL_INVALID_PROGRAM_EXECUTABLE: "CL_INVALID_PROGRAM_EXECUTABLE",
    CL_INVALID_KERNEL_NAME: "CL_INVALID_KERNEL_NAME",
    CL_INVALID_KERNEL: "CL_INVALID_KERNEL",
    CL_INVALID_ARG_INDEX: "CL_INVALID_ARG_INDEX",
    CL_INVALID_ARG_VALUE: "CL_INVALID_ARG_VALUE",
    CL_INVALID_KERNEL_ARGS: "CL_INVALID_KERNEL_ARGS",
    CL_INVALID_WORK_DIMENSION: "CL_INVALID_WORK_DIMENSION",
    CL_INVALID_WORK_GROUP_SIZE: "CL_INVALID_WORK_GROUP_SIZE",
    CL_INVALID_GLOBAL_OFFSET: "CL_INVALID_GLOBAL_OFFSET",
    CL_INVALID_EVENT: "CL_INVALID_EVENT",
    CL_INVALID_OPERATION: "CL_INVALID_OPERATION",
}


def cl_error_name(code: int) -> str:
    """Return the symbolic name of an OpenCL status code."""
    return _CL_ERROR_NAMES.get(code, f"CL_UNKNOWN_ERROR({code})")


class CLError(RuntimeModelError):
    """An OpenCL-style failure carrying a numeric status code."""

    def __init__(self, code: int, detail: str = ""):
        self.code = code
        self.detail = detail
        message = cl_error_name(code)
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# SYCL-style exception hierarchy (SYCL 2020 errc categories).
# ---------------------------------------------------------------------------


class SYCLException(RuntimeModelError):
    """Base class mirroring ``sycl::exception``."""


class SYCLRuntimeError(SYCLException):
    """Generic runtime failure (``errc::runtime``)."""


class SYCLInvalidParameter(SYCLException):
    """Bad argument to an API call (``errc::invalid``)."""


class SYCLMemoryAllocationError(SYCLException):
    """Buffer or allocation failure (``errc::memory_allocation``)."""


class SYCLNDRangeError(SYCLException):
    """Invalid ND-range configuration (``errc::nd_range``)."""


class SYCLAccessorError(SYCLException):
    """Illegal accessor construction or use (``errc::accessor``)."""


class SYCLKernelError(SYCLException):
    """Failure raised from inside a kernel function."""


# ---------------------------------------------------------------------------
# Executor-level errors shared by both front-ends.
# ---------------------------------------------------------------------------


class BarrierDivergenceError(RuntimeModelError):
    """Work-items of one work-group disagreed about reaching a barrier.

    Real GPUs hang or produce undefined behaviour here; the executor turns
    the situation into a hard error so tests can assert on it.
    """


class AddressSpaceViolation(RuntimeModelError):
    """A kernel accessed memory with the wrong access mode or address space."""


class DeviceAllocationError(RuntimeModelError):
    """The device memory model could not satisfy an allocation."""
