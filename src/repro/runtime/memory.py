"""Abstract device memory model (Figure 1 of the paper).

The paper's Figure 1 shows the memory hierarchy a kernel executes against:
a device **global** memory visible to all work-items, a read-only
**constant** memory, a per-work-group **shared local** memory, and
per-work-item **private** memory (registers).  This module models those
address spaces for both API front-ends:

* :class:`DeviceMemoryModel` tracks a device's global-memory capacity and
  hands out :class:`DeviceAllocation` objects (the storage behind OpenCL
  ``cl_mem`` objects and SYCL buffers);
* :class:`MemoryView` wraps an allocation with an access mode so the
  executor can enforce read/write permissions the way accessors do;
* :class:`LocalMemory` models the per-work-group scratchpad, re-zeroed for
  every work-group the way hardware LDS contents are undefined across
  groups (we zero it to keep runs deterministic).

All storage is numpy-backed so the vectorized kernel fast paths can operate
on the raw arrays after their access modes have been checked once.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .errors import AddressSpaceViolation, DeviceAllocationError


class AddressSpace(enum.Enum):
    """The four address spaces of the abstract memory model."""

    GLOBAL = "global"
    CONSTANT = "constant"
    LOCAL = "local"
    PRIVATE = "private"


class AccessMode(enum.Enum):
    """How a kernel may touch an allocation (OpenCL flags / SYCL modes)."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"

    @property
    def can_read(self) -> bool:
        return self in (AccessMode.READ, AccessMode.READ_WRITE)

    @property
    def can_write(self) -> bool:
        return self in (AccessMode.WRITE, AccessMode.READ_WRITE)


@dataclass
class AccessCounters:
    """Traffic counters used by the profiler and the timing model."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def merge(self, other: "AccessCounters") -> None:
        self.reads += other.reads
        self.writes += other.writes
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0


_allocation_ids = itertools.count(1)


class DeviceAllocation:
    """A typed block of device memory in a given address space.

    This is the storage object behind an OpenCL memory object or the device
    side of a SYCL buffer.  It is created through
    :meth:`DeviceMemoryModel.allocate` and must be released through
    :meth:`DeviceMemoryModel.release` (the SYCL front-end does this from
    buffer destructors; the OpenCL front-end requires an explicit call,
    mirroring ``clReleaseMemObject``).
    """

    def __init__(self, model: "DeviceMemoryModel", array: np.ndarray,
                 space: AddressSpace, name: str = ""):
        self.id = next(_allocation_ids)
        self.model = model
        self.array = array
        self.space = space
        self.name = name or f"alloc{self.id}"
        self.released = False
        self.counters = AccessCounters()

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    @property
    def size(self) -> int:
        return self.array.size

    def check_alive(self) -> None:
        if self.released:
            raise AddressSpaceViolation(
                f"use of released allocation {self.name!r}")

    def view(self, mode: AccessMode, offset: int = 0,
             count: Optional[int] = None) -> "MemoryView":
        """Return an access-checked view over ``[offset, offset+count)``."""
        self.check_alive()
        if self.space is AddressSpace.CONSTANT and mode.can_write:
            raise AddressSpaceViolation(
                f"write access requested on constant allocation {self.name!r}")
        if count is None:
            count = self.size - offset
        if offset < 0 or count < 0 or offset + count > self.size:
            raise AddressSpaceViolation(
                f"range [{offset}, {offset + count}) outside allocation "
                f"{self.name!r} of size {self.size}")
        return MemoryView(self, mode, offset, count)

    def __repr__(self) -> str:
        state = "released" if self.released else "live"
        return (f"DeviceAllocation({self.name!r}, {self.space.value}, "
                f"{self.dtype}, n={self.size}, {state})")


class MemoryView:
    """An access-mode-enforcing window into a :class:`DeviceAllocation`.

    Interpreted kernels index it element-wise; vectorized kernels call
    :meth:`ndarray` once (which validates the mode and records the traffic
    estimate) and then use numpy directly.
    """

    __slots__ = ("allocation", "mode", "offset", "count")

    def __init__(self, allocation: DeviceAllocation, mode: AccessMode,
                 offset: int, count: int):
        self.allocation = allocation
        self.mode = mode
        self.offset = offset
        self.count = count

    def __len__(self) -> int:
        return self.count

    def _read_checked(self):
        if not self.mode.can_read:
            raise AddressSpaceViolation(
                f"read through write-only view of "
                f"{self.allocation.name!r}")
        self.allocation.check_alive()

    def _write_checked(self):
        if not self.mode.can_write:
            raise AddressSpaceViolation(
                f"write through read-only view of "
                f"{self.allocation.name!r}")
        self.allocation.check_alive()

    def __getitem__(self, index):
        self._read_checked()
        counters = self.allocation.counters
        counters.reads += 1
        counters.bytes_read += self.allocation.array.itemsize
        return self.allocation.array[self._translate(index)]

    def __setitem__(self, index, value):
        self._write_checked()
        counters = self.allocation.counters
        counters.writes += 1
        counters.bytes_written += self.allocation.array.itemsize
        self.allocation.array[self._translate(index)] = value

    def _translate(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.count)
            return slice(self.offset + start, self.offset + stop, step)
        if index < 0 or index >= self.count:
            raise AddressSpaceViolation(
                f"index {index} outside view of length {self.count} on "
                f"{self.allocation.name!r}")
        return self.offset + index

    def ndarray(self) -> np.ndarray:
        """Return the raw numpy window (for vectorized kernels).

        Read-only views return a non-writeable numpy view so accidental
        writes still fail loudly.
        """
        self.allocation.check_alive()
        window = self.allocation.array[self.offset:self.offset + self.count]
        if not self.mode.can_write:
            window = window.view()
            window.flags.writeable = False
        return window

    def record_bulk_traffic(self, bytes_read: int = 0,
                            bytes_written: int = 0) -> None:
        """Account traffic produced by a vectorized kernel."""
        counters = self.allocation.counters
        counters.bytes_read += bytes_read
        counters.bytes_written += bytes_written
        if bytes_read:
            counters.reads += max(1, bytes_read // self.allocation.array.itemsize)
        if bytes_written:
            counters.writes += max(
                1, bytes_written // self.allocation.array.itemsize)


class LocalMemory:
    """Per-work-group shared local memory (LDS).

    A kernel declares named local arrays (OpenCL ``__local`` arguments /
    SYCL local accessors); the executor instantiates one :class:`LocalMemory`
    per work-group and tears it down afterwards.  Capacity is enforced
    against the device's per-work-group LDS limit.
    """

    def __init__(self, capacity_bytes: int):
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self.arrays: Dict[str, np.ndarray] = {}

    def declare(self, name: str, dtype, count: int) -> np.ndarray:
        if name in self.arrays:
            raise DeviceAllocationError(
                f"local array {name!r} declared twice in one work-group")
        arr = np.zeros(count, dtype=dtype)
        if self.used_bytes + arr.nbytes > self.capacity_bytes:
            raise DeviceAllocationError(
                f"local memory overflow: {self.used_bytes + arr.nbytes} B "
                f"requested, capacity {self.capacity_bytes} B")
        self.used_bytes += arr.nbytes
        self.arrays[name] = arr
        return arr

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]


class DeviceMemoryModel:
    """Tracks global-memory capacity and live allocations for one device."""

    def __init__(self, capacity_bytes: int, name: str = "device"):
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.used_bytes = 0
        self.allocations: Dict[int, DeviceAllocation] = {}
        self.peak_bytes = 0
        self._lock = threading.Lock()

    def allocate(self, shape_or_count, dtype,
                 space: AddressSpace = AddressSpace.GLOBAL,
                 initial: Optional[np.ndarray] = None,
                 name: str = "") -> DeviceAllocation:
        """Allocate device memory, optionally initialized from host data."""
        if space is AddressSpace.LOCAL:
            raise DeviceAllocationError(
                "local memory is allocated per work-group, not per device; "
                "use LocalMemory")
        if initial is not None:
            array = np.array(initial, dtype=dtype).ravel().copy()
        else:
            count = int(np.prod(shape_or_count))
            if count < 0:
                raise DeviceAllocationError(f"negative allocation size {count}")
            array = np.zeros(count, dtype=dtype)
        with self._lock:
            if self.used_bytes + array.nbytes > self.capacity_bytes:
                raise DeviceAllocationError(
                    f"device {self.name!r} out of memory: "
                    f"{array.nbytes} B requested, "
                    f"{self.capacity_bytes - self.used_bytes} B free")
            allocation = DeviceAllocation(self, array, space, name)
            self.allocations[allocation.id] = allocation
            self.used_bytes += array.nbytes
            self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        return allocation

    def release(self, allocation: DeviceAllocation) -> None:
        with self._lock:
            if allocation.released:
                raise DeviceAllocationError(
                    f"double release of {allocation.name!r}")
            allocation.released = True
            del self.allocations[allocation.id]
            self.used_bytes -= allocation.nbytes

    @property
    def live_allocation_count(self) -> int:
        return len(self.allocations)

    def leak_report(self) -> Tuple[int, int]:
        """Return (live allocation count, live bytes) for leak checks."""
        with self._lock:
            return len(self.allocations), self.used_bytes

    def __repr__(self) -> str:
        return (f"DeviceMemoryModel({self.name!r}, "
                f"used={self.used_bytes}/{self.capacity_bytes} B, "
                f"live={len(self.allocations)})")
