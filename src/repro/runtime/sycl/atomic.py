"""SYCL atomic operations (Table V of the paper).

The paper migrates OpenCL's ``atomic_inc`` to a SYCL ``atomic_ref`` with
relaxed memory order, device scope and global address space, wrapped in a
small template helper.  :class:`AtomicRef` models the class;
:func:`atomic_inc` is the paper's helper verbatim.  The executor is
sequential, so atomicity holds trivially, but the class still validates
its memory-order/scope/address-space parameters the way the SYCL
specification does, and tests exercise kernels under shuffled work-group
order to check that results do not depend on update order (the property
the paper calls out: "multiple updates do not overlap, but the order of
updates is not deterministic").
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import SYCLInvalidParameter

MEMORY_ORDERS = ("relaxed", "acquire", "release", "acq_rel", "seq_cst")
MEMORY_SCOPES = ("work_item", "sub_group", "work_group", "device", "system")
ADDRESS_SPACES = ("global_space", "local_space", "generic_space")


class AtomicRef:
    """Model of ``sycl::atomic_ref`` over one element of a numpy array."""

    def __init__(self, array: np.ndarray, index: int = 0,
                 memory_order: str = "relaxed",
                 memory_scope: str = "device",
                 address_space: str = "global_space"):
        if memory_order not in MEMORY_ORDERS:
            raise SYCLInvalidParameter(
                f"unknown memory order {memory_order!r}")
        if memory_scope not in MEMORY_SCOPES:
            raise SYCLInvalidParameter(
                f"unknown memory scope {memory_scope!r}")
        if address_space not in ADDRESS_SPACES:
            raise SYCLInvalidParameter(
                f"unknown address space {address_space!r}")
        if not isinstance(array, np.ndarray):
            raise SYCLInvalidParameter(
                "atomic_ref requires a device array (numpy ndarray)")
        self._array = array
        self._index = index
        self.memory_order = memory_order
        self.memory_scope = memory_scope
        self.address_space = address_space

    def load(self):
        return self._array[self._index]

    def store(self, value) -> None:
        self._array[self._index] = value

    def exchange(self, value):
        old = self._array[self._index]
        self._array[self._index] = value
        return old

    def fetch_add(self, value):
        old = self._array[self._index]
        self._array[self._index] = old + value
        return old

    def fetch_sub(self, value):
        old = self._array[self._index]
        self._array[self._index] = old - value
        return old

    def fetch_min(self, value):
        old = self._array[self._index]
        self._array[self._index] = min(old, value)
        return old

    def fetch_max(self, value):
        old = self._array[self._index]
        self._array[self._index] = max(old, value)
        return old

    def compare_exchange_strong(self, expected, desired) -> bool:
        if self._array[self._index] == expected:
            self._array[self._index] = desired
            return True
        return False


def atomic_inc(array: np.ndarray, index: int = 0):
    """The paper's Table V helper: atomic increment, returning the old value.

    Equivalent to::

        template<typename T> T atomic_inc(T &val) {
            atomic_ref<T, memory_order::relaxed, memory_scope::device,
                       access::address_space::global_space> obj(val);
            return obj.fetch_add((T)1);
        }
    """
    ref = AtomicRef(array, index, memory_order="relaxed",
                    memory_scope="device", address_space="global_space")
    return ref.fetch_add(array.dtype.type(1))
