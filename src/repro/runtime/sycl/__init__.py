"""SYCL-style runtime model (the paper's target programming model).

The eight programming steps of Table I map onto:

1–3. :func:`device selectors <repro.runtime.sycl.device.default_selector>`
4.   :class:`~repro.runtime.sycl.queue.Queue`
5.   :class:`~repro.runtime.sycl.buffer.Buffer`
8–10. lambda kernels via :meth:`Handler.parallel_for
      <repro.runtime.sycl.queue.Handler.parallel_for>`
11.  implicit via accessors (or explicit :meth:`Handler.copy`)
12.  :class:`~repro.runtime.sycl.queue.SyclEvent`
13.  implicit via buffer destruction (``close()`` / ``with`` blocks)
"""

from .accessor import (Accessor, HostAccessor, LocalAccessor,
                       TARGET_CONSTANT, TARGET_DEVICE, TARGET_LOCAL,
                       sycl_lmem, sycl_read, sycl_read_write, sycl_write)
from .atomic import AtomicRef, atomic_inc
from .buffer import Buffer
from .device import (SyclDevice, cpu_selector, default_selector,
                     get_devices, gpu_selector, named_selector,
                     select_device)
from .queue import Handler, Queue, SyclEvent
from .ranges import Id, NdRange, Range
from .usm import (UsmKind, UsmPointer, free, malloc_device, malloc_host,
                  malloc_shared)

__all__ = [
    "Accessor", "AtomicRef", "Buffer", "Handler", "HostAccessor", "Id",
    "LocalAccessor", "NdRange", "Queue", "Range", "SyclDevice",
    "SyclEvent", "TARGET_CONSTANT", "TARGET_DEVICE", "TARGET_LOCAL",
    "atomic_inc", "cpu_selector", "default_selector", "get_devices",
    "UsmKind", "UsmPointer", "free", "gpu_selector", "malloc_device",
    "malloc_host", "malloc_shared", "named_selector", "select_device",
    "sycl_lmem", "sycl_read", "sycl_read_write", "sycl_write",
]
