"""SYCL range classes: ``range``, ``id`` and ``nd_range`` (Section III.C).

The paper's kernels are one-dimensional; these classes support 1–3
dimensions for API completeness but the executor accepts only 1-D
ND-ranges, raising :class:`~repro.runtime.errors.SYCLNDRangeError`
otherwise — the same restriction the paper's application lives within.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..errors import SYCLNDRangeError


class Range:
    """``sycl::range<D>``: the extent of an index space (D = 1..3)."""

    def __init__(self, *sizes: int):
        if not 1 <= len(sizes) <= 3:
            raise SYCLNDRangeError(
                f"range supports 1 to 3 dimensions, got {len(sizes)}")
        for s in sizes:
            if int(s) != s or s < 0:
                raise SYCLNDRangeError(f"range extent {s!r} must be a "
                                       "non-negative integer")
        self._sizes: Tuple[int, ...] = tuple(int(s) for s in sizes)

    @property
    def dimensions(self) -> int:
        return len(self._sizes)

    def get(self, dim: int) -> int:
        self._check_dim(dim)
        return self._sizes[dim]

    def size(self) -> int:
        total = 1
        for s in self._sizes:
            total *= s
        return total

    def _check_dim(self, dim: int) -> None:
        if not 0 <= dim < len(self._sizes):
            raise SYCLNDRangeError(
                f"dimension {dim} out of range for {self!r}")

    def __getitem__(self, dim: int) -> int:
        return self.get(dim)

    def __iter__(self) -> Iterator[int]:
        return iter(self._sizes)

    def __len__(self) -> int:
        return len(self._sizes)

    def __eq__(self, other) -> bool:
        if isinstance(other, Range):
            return self._sizes == other._sizes
        if isinstance(other, tuple):
            return self._sizes == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._sizes)

    def __repr__(self) -> str:
        return f"Range{self._sizes}"


class Id(Range):
    """``sycl::id<D>``: a point in an index space."""

    def __repr__(self) -> str:
        return f"Id{tuple(self)}"


class NdRange:
    """``sycl::nd_range<D>``: global + local extents.

    SYCL requires the local range to divide the global range in every
    dimension; violations raise at construction, matching the
    strict behaviour the paper relies on when it pins the SYCL
    work-group size to 256.
    """

    def __init__(self, global_range: Range, local_range: Range):
        if not isinstance(global_range, Range):
            global_range = Range(*_as_tuple(global_range))
        if not isinstance(local_range, Range):
            local_range = Range(*_as_tuple(local_range))
        if global_range.dimensions != local_range.dimensions:
            raise SYCLNDRangeError(
                f"global range {global_range!r} and local range "
                f"{local_range!r} have different dimensionality")
        for dim in range(global_range.dimensions):
            g, l = global_range.get(dim), local_range.get(dim)
            if l == 0:
                raise SYCLNDRangeError("local range extent must be positive")
            if g % l:
                raise SYCLNDRangeError(
                    f"local range {l} does not divide global range {g} "
                    f"in dimension {dim}")
        self.global_range = global_range
        self.local_range = local_range

    @property
    def dimensions(self) -> int:
        return self.global_range.dimensions

    def get_global_range(self) -> Range:
        return self.global_range

    def get_local_range(self) -> Range:
        return self.local_range

    def get_group_range(self) -> Range:
        return Range(*(g // l for g, l in
                       zip(self.global_range, self.local_range)))

    def __repr__(self) -> str:
        return f"NdRange(global={self.global_range!r}, " \
               f"local={self.local_range!r})"


def _as_tuple(value) -> Tuple[int, ...]:
    if isinstance(value, int):
        return (value,)
    return tuple(value)
