"""SYCL device discovery and selection (Table I, steps 1–3 → one class).

SYCL collapses OpenCL's platform query / device query / context creation
into a *device selector*: a callable that scores candidate devices, the
highest score winning.  :func:`default_selector`, :func:`gpu_selector`
and :func:`cpu_selector` reproduce the standard selectors; arbitrary
callables work too, mirroring SYCL 2020's callable selectors.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from ...devices.specs import ALL_DEVICES, DeviceSpec
from ..device import ComputeDevice
from ..errors import SYCLRuntimeError


class SyclDevice(ComputeDevice):
    """A SYCL device handle (shared :class:`ComputeDevice` state)."""

    def __repr__(self) -> str:
        return f"SyclDevice({self.spec.short_name})"


_device_cache: Optional[List[SyclDevice]] = None


def get_devices(fresh: bool = False) -> List[SyclDevice]:
    """All devices visible to the SYCL runtime model."""
    global _device_cache
    if _device_cache is None or fresh:
        _device_cache = [SyclDevice(spec) for spec in ALL_DEVICES.values()]
    return _device_cache


Selector = Callable[[SyclDevice], int]


def default_selector(device: SyclDevice) -> int:
    """Prefer GPUs over CPUs, larger devices over smaller ones."""
    score = 1000 if device.is_gpu else 100
    return score + device.spec.cores // 64


def gpu_selector(device: SyclDevice) -> int:
    """Accept only GPUs (negative score rejects a device)."""
    return 1000 + device.spec.cores // 64 if device.is_gpu else -1


def cpu_selector(device: SyclDevice) -> int:
    return 1000 if device.is_cpu else -1


def named_selector(short_name: str) -> Selector:
    """Selector accepting exactly one device by short name."""

    def select(device: SyclDevice) -> int:
        return 1000 if device.short_name == short_name else -1

    select.__name__ = f"named_selector[{short_name}]"
    return select


def select_device(selector: Union[Selector, str, SyclDevice, None] = None,
                  devices: Optional[List[SyclDevice]] = None) -> SyclDevice:
    """Run a selector over the visible devices, as ``sycl::queue`` does.

    ``selector`` may be a callable, a device short name (``"MI100"``), an
    already-constructed device, or ``None`` for the default selector.
    """
    if isinstance(selector, SyclDevice):
        return selector
    if isinstance(selector, ComputeDevice):
        # Allow sharing a device instance across front-ends.
        shared = SyclDevice(selector.spec)
        shared.memory = selector.memory
        return shared
    if selector is None:
        selector = default_selector
    elif isinstance(selector, str):
        selector = named_selector(selector)
    candidates = devices if devices is not None else get_devices()
    best: Optional[SyclDevice] = None
    best_score = -1
    for device in candidates:
        score = selector(device)
        if score > best_score:
            best, best_score = device, score
    if best is None or best_score < 0:
        raise SYCLRuntimeError(
            f"no device accepted by selector "
            f"{getattr(selector, '__name__', selector)!r}")
    return best
