"""SYCL buffers (Section III.A and Table II of the paper).

A :class:`Buffer` is the SYCL-side replacement for an OpenCL memory
object.  The migration-relevant semantics the paper describes are all
modeled:

* construction from a size alone (``buffer<T, 1> d(WS)``) or from a host
  pointer (``buffer<T, 1> d(h, WS)``), in which case the buffer owns the
  host memory for its lifetime and writes changes back on destruction;
* no explicit release: destruction (here ``close()``, a ``with`` block,
  or garbage collection) waits for outstanding work and copies the
  content back to host memory if needed;
* construction failures surface as exceptions
  (:class:`~repro.runtime.errors.SYCLMemoryAllocationError`), not error
  codes.

Device residency is lazy: the first accessor bound on a queue's device
allocates device memory there and uploads the authoritative content.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

import numpy as np

from ..device import ComputeDevice
from ..errors import SYCLInvalidParameter, SYCLMemoryAllocationError
from ..memory import AccessMode, AddressSpace, DeviceAllocation
from .accessor import (Accessor, HostAccessor, TARGET_DEVICE, sycl_read,
                       sycl_read_write)

_buffer_ids = itertools.count(1)


class Buffer:
    """A 1-D SYCL buffer over a trivially-copyable element type."""

    def __init__(self, host_data: Optional[np.ndarray] = None, *,
                 count: Optional[int] = None, dtype=None, name: str = "",
                 write_back: bool = True):
        self.id = next(_buffer_ids)
        self.name = name or f"buffer{self.id}"
        if host_data is not None:
            host_data = np.asarray(host_data)
            if host_data.ndim != 1:
                raise SYCLInvalidParameter(
                    f"buffer {self.name!r}: host data must be 1-D, got "
                    f"shape {host_data.shape}")
            if dtype is not None and np.dtype(dtype) != host_data.dtype:
                raise SYCLInvalidParameter(
                    f"buffer {self.name!r}: dtype {dtype!r} disagrees with "
                    f"host data dtype {host_data.dtype}")
            if count is not None and count != host_data.size:
                raise SYCLInvalidParameter(
                    f"buffer {self.name!r}: count {count} disagrees with "
                    f"host data size {host_data.size}")
            self.dtype = host_data.dtype
            self.count = host_data.size
            self._host_data: Optional[np.ndarray] = host_data
            # SYCL takes ownership of the host memory for the buffer's
            # lifetime; the model keeps a private working copy and only
            # touches the caller's array again at write-back.
            self._shadow = host_data.copy()
        else:
            if count is None or dtype is None:
                raise SYCLInvalidParameter(
                    f"buffer {self.name!r}: need count and dtype when no "
                    "host data is given")
            if count <= 0:
                raise SYCLMemoryAllocationError(
                    f"buffer {self.name!r}: element count {count} must be "
                    "positive")
            self.dtype = np.dtype(dtype)
            self.count = int(count)
            self._host_data = None
            self._shadow = np.zeros(self.count, dtype=self.dtype)
        self.write_back = write_back and self._host_data is not None
        self.closed = False
        self._device_copies: Dict[int, DeviceAllocation] = {}
        self._devices: Dict[int, ComputeDevice] = {}
        #: id(device) whose copy is authoritative, or None for host.
        self._authoritative: Optional[int] = None
        self._any_device_write = False
        self._any_host_write = False

    # -- lifetime --------------------------------------------------------

    def close(self) -> None:
        """Destroy the buffer: write back to host memory, free device copies.

        Idempotent, like running a SYCL buffer destructor exactly once.
        """
        if self.closed:
            return
        if self.write_back and (self._any_device_write
                                or self._any_host_write):
            self._sync_to_shadow()
            self._host_data[...] = self._shadow
        for dev_id, allocation in list(self._device_copies.items()):
            self._devices[dev_id].memory.release(allocation)
        self._device_copies.clear()
        self._devices.clear()
        self.closed = True

    def set_write_back(self, flag: bool) -> None:
        """Model of ``buffer::set_write_back``."""
        self.write_back = flag and self._host_data is not None

    def __enter__(self) -> "Buffer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass  # interpreter teardown; nothing sensible to do

    def _check_open(self) -> None:
        if self.closed:
            raise SYCLInvalidParameter(
                f"buffer {self.name!r} used after destruction")

    # -- accessor factories ----------------------------------------------

    def get_access(self, handler, mode: AccessMode = sycl_read_write,
                   target: str = TARGET_DEVICE,
                   count: Optional[int] = None, offset: int = 0) -> Accessor:
        """Create a (ranged) device accessor inside a command group."""
        self._check_open()
        accessor = Accessor(self, mode, target, count, offset)
        handler.require(accessor)
        return accessor

    def get_host_access(self, mode: AccessMode = sycl_read) -> HostAccessor:
        """Create a host accessor (synchronizes device -> host)."""
        self._check_open()
        return HostAccessor(self, mode)

    @property
    def nbytes(self) -> int:
        return self.count * self.dtype.itemsize

    def get_range(self) -> int:
        return self.count

    # -- residency & coherence (internal; used by accessors/handlers) ----

    def _ensure_resident(self, device: ComputeDevice) -> DeviceAllocation:
        self._check_open()
        key = id(device)
        allocation = self._device_copies.get(key)
        if allocation is None:
            self._sync_to_shadow()
            allocation = device.memory.allocate(
                self.count, self.dtype, AddressSpace.GLOBAL,
                initial=self._shadow, name=self.name)
            self._device_copies[key] = allocation
            self._devices[key] = device
        elif self._authoritative is not None and self._authoritative != key:
            # Another device holds the newest content: route through host.
            self._sync_to_shadow()
            allocation.array[...] = self._shadow
        elif self._authoritative is None:
            allocation.array[...] = self._shadow
        return allocation

    def _mark_device_dirty(self, device: ComputeDevice) -> None:
        self._authoritative = id(device)
        self._any_device_write = True

    def _mark_host_dirty(self) -> None:
        self._authoritative = None
        self._any_host_write = True

    def _sync_to_shadow(self) -> None:
        """Pull the authoritative device copy into the host shadow."""
        if self._authoritative is not None:
            allocation = self._device_copies[self._authoritative]
            self._shadow[...] = allocation.array
            self._authoritative = None

    def _host_synchronized_array(self, mode: AccessMode) -> np.ndarray:
        self._check_open()
        self._sync_to_shadow()
        return self._shadow

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (f"Buffer({self.name!r}, {self.dtype}, n={self.count}, "
                f"{state}, devices={len(self._device_copies)})")
