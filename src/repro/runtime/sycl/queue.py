"""SYCL queue, command-group handler and event (Tables I, III and VI).

``Queue.submit`` takes a *command group function* — the Python analog of
the lambda the paper submits — runs it against a fresh :class:`Handler`,
and executes the single command the group recorded (a ``parallel_for``
launch or a ``copy``).  The model queue is in-order and synchronous, so
``Event.wait()`` and ``Queue.wait()`` return immediately, but the code
shape (submit → handler → wait) matches the migration examples exactly.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ...observability import tracing
from ..device import ComputeDevice
from ..errors import SYCLInvalidParameter, SYCLRuntimeError
from ..executor import ExecutionStats, LocalDecl, NDRangeExecutor
from ..launch import LaunchRecord
from ..memory import AccessMode
from .accessor import Accessor, LocalAccessor
from .device import SyclDevice, select_device
from .ranges import NdRange, Range
from .usm import UsmPointer, resolve_copy_operand


class SyclEvent:
    """Model of ``sycl::event`` with profiling info."""

    def __init__(self, command: str, start: float, end: float,
                 stats: Optional[ExecutionStats] = None):
        self.command = command
        self._start = start
        self._end = end
        self.stats = stats

    def wait(self) -> "SyclEvent":
        return self

    def get_profiling_info(self, which: str) -> float:
        if which == "command_start":
            return self._start
        if which == "command_end":
            return self._end
        raise SYCLInvalidParameter(f"unknown profiling descriptor {which!r}")

    @property
    def duration(self) -> float:
        return self._end - self._start


class Handler:
    """The command-group handler (``cgh`` in the paper's listings)."""

    def __init__(self, queue: "Queue"):
        self.queue = queue
        self._accessors: List[Accessor] = []
        self._locals: List[LocalAccessor] = []
        self._command: Optional[Callable[[], SyclEvent]] = None

    # -- requirements ---------------------------------------------------

    def require(self, accessor: Accessor) -> None:
        """Register a buffer requirement (done by ``get_access``)."""
        self._accessors.append(accessor)
        accessor._bind(self.queue.device)

    def require_local(self, local: LocalAccessor) -> None:
        self._locals.append(local)

    # -- commands ---------------------------------------------------------

    def parallel_for(self, nd_range: NdRange, kernel: Callable,
                     args: Sequence = (), vectorized: bool = False,
                     kernel_name: str = "", variant: str = "base",
                     batch: int = 1,
                     profile: Optional[dict] = None) -> None:
        """Record an ND-range kernel launch.

        ``args`` may mix scalars, bound :class:`Accessor` objects and
        :class:`LocalAccessor` objects; accessors resolve to their numpy
        windows and local accessors to per-work-group arrays appended in
        declaration order, matching the call shape of Table VI where the
        lambda passes the accessors into the ``finder`` function.
        """
        if self._command is not None:
            raise SYCLRuntimeError(
                "a command group may contain at most one command")
        if nd_range.dimensions != 1:
            raise SYCLInvalidParameter(
                "the executor models 1-D ND-ranges only")
        global_size = nd_range.get_global_range().get(0)
        local_size = nd_range.get_local_range().get(0)
        resolved: List = []
        local_decls: List[LocalDecl] = []
        for arg in args:
            if isinstance(arg, Accessor):
                resolved.append(arg.data)
            elif isinstance(arg, UsmPointer):
                resolved.append(arg.data)
            elif isinstance(arg, LocalAccessor):
                if arg not in self._locals:
                    self.require_local(arg)
                local_decls.append(LocalDecl(arg.name, arg.dtype, arg.count))
            else:
                resolved.append(arg)
        name = kernel_name or getattr(kernel, "__name__", "kernel")

        def run() -> SyclEvent:
            with tracing.span(f"kernel:{name}", cat="kernel", api="sycl",
                              kernel=name, global_size=global_size,
                              local_size=local_size, variant=variant,
                              batch=batch):
                start = time.perf_counter()
                if vectorized:
                    stats = self.queue.executor.run_vectorized(
                        kernel, global_size, local_size, resolved,
                        local_decls, kernel_name=name)
                else:
                    stats = self.queue.executor.run(
                        kernel, global_size, local_size, resolved,
                        local_decls, kernel_name=name, opencl_style=False)
                end = time.perf_counter()
            self.queue.launches.append(LaunchRecord.kernel(
                name, global_size, local_size, end - start, stats,
                api="sycl", variant=variant, batch=batch,
                profile=profile))
            return SyclEvent("parallel_for", start, end, stats)

        self._command = run

    def single_task(self, kernel: Callable, args: Sequence = ()) -> None:
        """Record a single-work-item launch."""

        def wrapped(item, *a):
            kernel(*a)

        wrapped.__name__ = getattr(kernel, "__name__", "single_task")
        self.parallel_for(NdRange(Range(1), Range(1)), wrapped, args)

    def copy(self, src, dst) -> None:
        """Record a copy command (Table III's migration path).

        Either ``src`` is an accessor and ``dst`` a host array (device →
        host read) or ``src`` is a host array and ``dst`` an accessor
        (host → device write).
        """
        if self._command is not None:
            raise SYCLRuntimeError(
                "a command group may contain at most one command")
        if isinstance(src, Accessor) and not isinstance(dst, Accessor):
            direction, accessor, host = "d2h", src, np.asarray(dst)
            if not accessor.mode.can_read:
                raise SYCLInvalidParameter(
                    "copy(accessor, host) needs a readable accessor")
        elif isinstance(dst, Accessor) and not isinstance(src, Accessor):
            direction, accessor, host = "h2d", dst, np.asarray(src)
            if not accessor.mode.can_write:
                raise SYCLInvalidParameter(
                    "copy(host, accessor) needs a writable accessor")
        else:
            raise SYCLInvalidParameter(
                "copy expects exactly one accessor and one host array")
        if host.size < accessor.count:
            raise SYCLInvalidParameter(
                f"host array of {host.size} elements cannot back an "
                f"accessor range of {accessor.count}")

        def run() -> SyclEvent:
            start = time.perf_counter()
            nbytes = accessor.count * accessor.buffer.dtype.itemsize
            if direction == "d2h":
                flat = host.ravel()
                flat[:accessor.count] = accessor.data
                view = accessor._require_bound()
                view.record_bulk_traffic(bytes_read=nbytes)
            else:
                window = accessor._require_bound()
                window.ndarray()[...] = host.ravel()[:accessor.count]
                window.record_bulk_traffic(bytes_written=nbytes)
            end = time.perf_counter()
            self.queue.launches.append(LaunchRecord.transfer(
                direction, nbytes, end - start, api="sycl"))
            return SyclEvent(f"copy_{direction}", start, end)

        self._command = run

    def _execute(self) -> SyclEvent:
        if self._command is None:
            start = end = time.perf_counter()
            return SyclEvent("empty", start, end)
        return self._command()


class Queue:
    """Model of ``sycl::queue``: device selection + command submission."""

    def __init__(self, selector=None,
                 executor: Optional[NDRangeExecutor] = None):
        self.device: SyclDevice = select_device(selector)
        self.executor = executor or NDRangeExecutor(
            lds_capacity_bytes=self.device.spec.lds_per_cu_bytes)
        self.launches: List[LaunchRecord] = []

    def submit(self, command_group: Callable[[Handler], None]) -> SyclEvent:
        handler = Handler(self)
        command_group(handler)
        return handler._execute()

    def wait(self) -> None:
        """In-order synchronous model: nothing outstanding."""

    def get_device(self) -> SyclDevice:
        return self.device

    # -- USM operations (pointer-based model, Section III.A) ----------

    def memcpy(self, dst, src, count: Optional[int] = None) -> SyclEvent:
        """Pointer-based copy between USM pointers and host arrays."""
        start = time.perf_counter()
        dst_arr = resolve_copy_operand(dst, writing=True).ravel()
        src_arr = resolve_copy_operand(src, writing=False).ravel()
        if count is None:
            count = min(dst_arr.size, src_arr.size)
        if count > dst_arr.size or count > src_arr.size:
            raise SYCLInvalidParameter(
                f"memcpy of {count} elements exceeds an operand")
        dst_arr[:count] = src_arr[:count]
        end = time.perf_counter()
        nbytes = int(count) * dst_arr.itemsize
        direction = "h2d" if isinstance(dst, UsmPointer) else "d2h"
        self.launches.append(LaunchRecord.transfer(
            direction, nbytes, end - start, api="sycl"))
        return SyclEvent("memcpy", start, end)

    def memset(self, dst: UsmPointer, value: int,
               count: Optional[int] = None) -> SyclEvent:
        """Byte-wise fill of a USM allocation."""
        start = time.perf_counter()
        arr = resolve_copy_operand(dst, writing=True)
        if count is None:
            count = arr.size
        arr.view(np.uint8)[:count * arr.itemsize] = np.uint8(value)
        end = time.perf_counter()
        return SyclEvent("memset", start, end)

    def fill(self, dst: UsmPointer, value,
             count: Optional[int] = None) -> SyclEvent:
        """Typed fill of a USM allocation."""
        start = time.perf_counter()
        arr = resolve_copy_operand(dst, writing=True)
        if count is None:
            count = arr.size
        arr[:count] = value
        end = time.perf_counter()
        return SyclEvent("fill", start, end)

    def parallel_for(self, nd_range: NdRange, kernel: Callable,
                     args: Sequence = (), vectorized: bool = False,
                     kernel_name: str = "",
                     variant: str = "base", batch: int = 1) -> SyclEvent:
        """Queue shortcut: submit a one-command group (USM style).

        With USM there are no accessors to declare, so SYCL programs
        commonly launch kernels directly on the queue; this mirrors
        ``queue.parallel_for`` in SYCL 2020.
        """
        return self.submit(lambda h: h.parallel_for(
            nd_range, kernel, args=args, vectorized=vectorized,
            kernel_name=kernel_name, variant=variant, batch=batch))

    def __repr__(self) -> str:
        return f"Queue(device={self.device.short_name})"
