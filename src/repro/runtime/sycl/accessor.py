"""SYCL accessors: how kernels see buffer and local memory (Section III.A).

Accessors carry three facts the paper keeps stressing: *where* the data
lives (the access **target**: device global memory, constant memory, or
work-group local memory), *how* it may be touched (the access **mode**),
and *which part* is visible (a ranged accessor's offset + count, used by
the Table III data-movement path).

Short names match the paper's usage: ``sycl_read``, ``sycl_write``,
``sycl_read_write``, ``sycl_lmem`` and ``constant_buffer``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import SYCLAccessorError
from ..memory import AccessMode, MemoryView

# Access modes, with the paper's short names.
sycl_read = AccessMode.READ
sycl_write = AccessMode.WRITE
sycl_read_write = AccessMode.READ_WRITE

# Access targets.
TARGET_DEVICE = "device"
TARGET_CONSTANT = "constant_buffer"
TARGET_LOCAL = "local"
sycl_lmem = TARGET_LOCAL


class Accessor:
    """A requirement on a buffer, resolved to device memory at submit time.

    Created through :meth:`repro.runtime.sycl.buffer.Buffer.get_access`
    inside a command group.  After the handler binds it to the queue's
    device, :attr:`data` is the mode-enforced numpy window kernels read
    and write.
    """

    def __init__(self, buffer, mode: AccessMode, target: str = TARGET_DEVICE,
                 count: Optional[int] = None, offset: int = 0):
        if target not in (TARGET_DEVICE, TARGET_CONSTANT):
            raise SYCLAccessorError(
                f"buffer accessors target device or constant_buffer memory, "
                f"got {target!r}")
        if target == TARGET_CONSTANT and mode is not sycl_read:
            raise SYCLAccessorError(
                "constant_buffer accessors must be read-only")
        if offset < 0:
            raise SYCLAccessorError(f"negative accessor offset {offset}")
        self.buffer = buffer
        self.mode = mode
        self.target = target
        self.offset = offset
        self.count = count if count is not None else buffer.count - offset
        if self.offset + self.count > buffer.count:
            raise SYCLAccessorError(
                f"accessor range [{offset}, {offset + self.count}) exceeds "
                f"buffer of {buffer.count} elements")
        self._view: Optional[MemoryView] = None

    # -- binding (done by the handler at submit time) -------------------

    def _bind(self, device) -> None:
        allocation = self.buffer._ensure_resident(device)
        self._view = allocation.view(self.mode, self.offset, self.count)
        if self.mode.can_write:
            self.buffer._mark_device_dirty(device)

    @property
    def bound(self) -> bool:
        return self._view is not None

    def _require_bound(self) -> MemoryView:
        if self._view is None:
            raise SYCLAccessorError(
                "accessor used outside a command group (not bound to a "
                "device); create it via buffer.get_access(handler, ...)")
        return self._view

    # -- kernel-visible interface ---------------------------------------

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index):
        return self._require_bound()[index]

    def __setitem__(self, index, value):
        self._require_bound()[index] = value

    @property
    def data(self) -> np.ndarray:
        """Raw numpy window (read-only for read accessors)."""
        return self._require_bound().ndarray()

    def get_range(self) -> int:
        return self.count

    def get_offset(self) -> int:
        return self.offset

    def __repr__(self) -> str:
        state = "bound" if self.bound else "unbound"
        return (f"Accessor({self.buffer.name!r}, {self.mode.value}, "
                f"{self.target}, [{self.offset}:{self.offset + self.count}], "
                f"{state})")


class LocalAccessor:
    """A work-group local array requirement (``sycl_lmem`` in the paper).

    The executor materializes one array per work-group; kernels receive it
    as a positional argument after the buffer arguments, in the order the
    local accessors were created — the same convention the paper's SYCL
    ``finder``/``comparer`` wrappers use (Table VI).
    """

    _counter = 0

    def __init__(self, dtype, count: int, handler=None, name: str = ""):
        if count <= 0:
            raise SYCLAccessorError(
                f"local accessor needs a positive element count, got {count}")
        self.dtype = np.dtype(dtype)
        self.count = int(count)
        LocalAccessor._counter += 1
        self.name = name or f"local{LocalAccessor._counter}"
        if handler is not None:
            handler.require_local(self)

    @property
    def nbytes(self) -> int:
        return self.count * self.dtype.itemsize

    def __repr__(self) -> str:
        return f"LocalAccessor({self.name!r}, {self.dtype}, n={self.count})"


class HostAccessor:
    """Host-side access to a buffer (blocks until the device is done)."""

    def __init__(self, buffer, mode: AccessMode = sycl_read_write):
        self.buffer = buffer
        self.mode = mode
        self._array = buffer._host_synchronized_array(mode)

    def __len__(self) -> int:
        return len(self._array)

    def __getitem__(self, index):
        if not self.mode.can_read:
            raise SYCLAccessorError("read through write-only host accessor")
        return self._array[index]

    def __setitem__(self, index, value):
        if not self.mode.can_write:
            raise SYCLAccessorError("write through read-only host accessor")
        self._array[index] = value
        self.buffer._mark_host_dirty()

    @property
    def data(self) -> np.ndarray:
        arr = self._array
        if not self.mode.can_write:
            arr = arr.view()
            arr.flags.writeable = False
        return arr
