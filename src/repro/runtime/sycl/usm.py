"""Unified shared memory (USM) — the other SYCL memory abstraction.

Section III.A of the paper: "Two abstractions are commonly used for
managing memory in SYCL: unified shared memory and buffer.  The former
is a pointer-based approach that allows for easier integration with
existing C/C++ programs.  To migrate the OpenCL program, we get started
with SYCL buffers."  This module supplies the road not taken, so the
library supports both migration end-states:

* :func:`malloc_device` — device-only allocation, host access is an
  error (matching real USM device allocations);
* :func:`malloc_host` — host-resident allocation the device can read
  over the interconnect;
* :func:`malloc_shared` — migratable allocation both sides may touch;
* :meth:`UsmPointer.free` / :func:`free` — explicit deallocation (USM
  gives up the buffer model's destructor-driven lifetime);
* ``queue.memcpy`` / ``queue.memset`` / ``queue.fill`` — pointer-based
  data movement (implemented on :class:`~repro.runtime.sycl.queue.Queue`).

A :class:`UsmPointer` wraps the allocation with kind-aware access
checks; kernels receive its numpy array via :attr:`UsmPointer.data`, so
the same kernel functions work under buffers and USM — exactly the
interoperability argument the paper makes for USM.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

import numpy as np

from ..device import ComputeDevice
from ..errors import SYCLInvalidParameter, SYCLMemoryAllocationError
from ..memory import AddressSpace, DeviceAllocation


class UsmKind(enum.Enum):
    DEVICE = "device"
    HOST = "host"
    SHARED = "shared"


class UsmPointer:
    """A typed USM allocation bound to one device's memory model."""

    def __init__(self, device: ComputeDevice, kind: UsmKind, count: int,
                 dtype, name: str = ""):
        if count <= 0:
            raise SYCLMemoryAllocationError(
                f"USM allocation needs a positive element count, "
                f"got {count}")
        self.device = device
        self.kind = kind
        self.dtype = np.dtype(dtype)
        self.count = int(count)
        self.name = name or f"usm_{kind.value}"
        # Host allocations live outside device memory; device and shared
        # allocations are charged against the device's capacity.
        if kind is UsmKind.HOST:
            self._allocation: Optional[DeviceAllocation] = None
            self._array = np.zeros(self.count, dtype=self.dtype)
        else:
            self._allocation = device.memory.allocate(
                self.count, self.dtype, AddressSpace.GLOBAL,
                name=self.name)
            self._array = self._allocation.array
        self.freed = False

    # -- access -----------------------------------------------------------

    def _check_live(self) -> None:
        if self.freed:
            raise SYCLInvalidParameter(
                f"use of freed USM pointer {self.name!r}")

    @property
    def data(self) -> np.ndarray:
        """The backing array, for kernel argument binding."""
        self._check_live()
        return self._array

    def host_view(self) -> np.ndarray:
        """Host-side access; illegal for device allocations."""
        self._check_live()
        if self.kind is UsmKind.DEVICE:
            raise SYCLInvalidParameter(
                f"host dereference of device USM pointer {self.name!r}; "
                "copy it with queue.memcpy first")
        return self._array

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index):
        return self.host_view()[index]

    def __setitem__(self, index, value):
        self.host_view()[index] = value

    @property
    def nbytes(self) -> int:
        return self.count * self.dtype.itemsize

    # -- lifetime -----------------------------------------------------------

    def free(self) -> None:
        """Explicit deallocation (``sycl::free``)."""
        self._check_live()
        if self._allocation is not None:
            self.device.memory.release(self._allocation)
        self.freed = True

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return (f"UsmPointer({self.name!r}, {self.kind.value}, "
                f"{self.dtype}, n={self.count}, {state})")


def _device_of(queue_or_device) -> ComputeDevice:
    device = getattr(queue_or_device, "device", queue_or_device)
    if not isinstance(device, ComputeDevice):
        raise SYCLInvalidParameter(
            f"expected a queue or device, got {type(queue_or_device)}")
    return device


def malloc_device(count: int, dtype, queue_or_device,
                  name: str = "") -> UsmPointer:
    """Allocate device-only USM memory."""
    return UsmPointer(_device_of(queue_or_device), UsmKind.DEVICE,
                      count, dtype, name or "usm_device")


def malloc_host(count: int, dtype, queue_or_device,
                name: str = "") -> UsmPointer:
    """Allocate host USM memory (device-readable)."""
    return UsmPointer(_device_of(queue_or_device), UsmKind.HOST,
                      count, dtype, name or "usm_host")


def malloc_shared(count: int, dtype, queue_or_device,
                  name: str = "") -> UsmPointer:
    """Allocate migratable shared USM memory."""
    return UsmPointer(_device_of(queue_or_device), UsmKind.SHARED,
                      count, dtype, name or "usm_shared")


def free(pointer: UsmPointer) -> None:
    """Model of ``sycl::free``."""
    pointer.free()


def resolve_copy_operand(operand: Union[UsmPointer, np.ndarray],
                         writing: bool) -> np.ndarray:
    """Resolve a memcpy operand to its array with USM access checks.

    Device pointers are legal memcpy operands (that is the point of
    memcpy); raw numpy arrays stand in for ordinary host memory.
    """
    if isinstance(operand, UsmPointer):
        operand._check_live()
        return operand._array
    array = np.asarray(operand)
    if writing and not array.flags.writeable:
        raise SYCLInvalidParameter("memcpy destination is read-only")
    return array
