"""Heterogeneous-runtime substrate: OpenCL-style and SYCL-style front-ends
over a shared ND-range executor and abstract memory model.

See :mod:`repro.runtime.opencl` (source model, 13 explicit steps) and
:mod:`repro.runtime.sycl` (target model, 8 steps) — the migration the
paper describes is between these two front-ends.
"""

from .device import ComputeDevice, make_devices, make_gpu_devices
from .executor import (ExecutionStats, FenceSpace, GroupContext, LocalDecl,
                       NDRangeExecutor, OpenCLWorkItemFunctions, WorkItem)
from .launch import LaunchRecord
from .memory import (AccessCounters, AccessMode, AddressSpace,
                     DeviceAllocation, DeviceMemoryModel, LocalMemory,
                     MemoryView)

__all__ = [
    "AccessCounters", "AccessMode", "AddressSpace", "ComputeDevice",
    "DeviceAllocation", "DeviceMemoryModel", "ExecutionStats",
    "FenceSpace", "GroupContext", "LaunchRecord", "LocalDecl",
    "LocalMemory", "MemoryView", "NDRangeExecutor",
    "OpenCLWorkItemFunctions", "WorkItem", "make_devices",
    "make_gpu_devices",
]
