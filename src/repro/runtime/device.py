"""Compute-device state shared by the OpenCL and SYCL front-ends.

A :class:`ComputeDevice` pairs a static :class:`~repro.devices.specs.DeviceSpec`
with live memory-model state.  Both front-ends wrap the same class so a
test can, for example, run the OpenCL pipeline and the SYCL pipeline
against distinct instances of the same modeled GPU.
"""

from __future__ import annotations

from typing import Dict, List

from ..devices.specs import ALL_DEVICES, DeviceSpec, PAPER_GPUS
from .memory import DeviceMemoryModel


class ComputeDevice:
    """A compute device: static spec plus a live memory model."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec
        self.memory = DeviceMemoryModel(spec.global_memory_bytes,
                                        name=spec.short_name)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def short_name(self) -> str:
        return self.spec.short_name

    @property
    def is_gpu(self) -> bool:
        return self.spec.device_type == "gpu"

    @property
    def is_cpu(self) -> bool:
        return self.spec.device_type == "cpu"

    @property
    def max_work_group_size(self) -> int:
        return 1024 if self.is_gpu else 256

    @property
    def preferred_work_group_size(self) -> int:
        """Work-group size an OpenCL runtime picks when the host passes NULL.

        The paper's OpenCL application leaves the local work size to the
        runtime; ROCm's OpenCL picks the wavefront size (64) for these
        kernels, while the SYCL port pins 256.  This asymmetry is one
        source of the Table VIII performance difference.
        """
        return self.spec.wavefront_size if self.is_gpu else 8

    def __repr__(self) -> str:
        return f"ComputeDevice({self.spec.short_name})"


def make_devices(fresh_memory: bool = True) -> Dict[str, ComputeDevice]:
    """Instantiate one :class:`ComputeDevice` per known spec."""
    return {short: ComputeDevice(spec) for short, spec in ALL_DEVICES.items()}


def make_gpu_devices() -> List[ComputeDevice]:
    """Instantiate the paper's three evaluation GPUs, in Table VII order."""
    return [ComputeDevice(spec) for spec in PAPER_GPUS.values()]
