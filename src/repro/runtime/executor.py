"""ND-range kernel executor shared by the OpenCL and SYCL front-ends.

Both programming models in the paper execute kernels the same way
(Section II.B): an ND-range of work-items is divided into work-groups;
work-items in a group share local memory and synchronize with barriers;
groups are scheduled independently.  This module implements that execution
model for Python kernels in two modes:

**Interpreted mode** executes one Python frame per work-item.  Kernels that
use barriers are written as *generator functions* that ``yield`` at each
barrier point (``yield item.barrier()``); the executor advances every
work-item of a group to its next barrier before resuming any of them, which
gives real barrier semantics including divergence detection.  Kernels
without barriers may be plain functions.

**Vectorized mode** lets a kernel supply a numpy implementation that
computes the whole ND-range at once.  The executor still handles work-group
decomposition, local-memory provisioning and statistics; the kernel author
is responsible for barrier-equivalent ordering inside the vectorized body
(trivial for the paper's kernels, whose single barrier separates a
local-memory fill from its use).

Work-group scheduling order is configurable (``linear`` or ``shuffled``)
because the paper notes that atomic update order is non-deterministic on
real devices; shuffled order lets tests verify that results are
order-independent.
"""

from __future__ import annotations

import inspect
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .errors import BarrierDivergenceError, SYCLNDRangeError
from .memory import LocalMemory

#: Default per-work-group local memory capacity (64 KiB, as on GCN/CDNA).
DEFAULT_LDS_BYTES = 64 * 1024


class FenceSpace:
    """Barrier fence spaces (``access::fence_space`` / ``CLK_*_MEM_FENCE``)."""

    LOCAL = "local_space"
    GLOBAL = "global_space"
    GLOBAL_AND_LOCAL = "global_and_local"


class _BarrierToken:
    """Returned by ``item.barrier()``; kernels must ``yield`` it."""

    __slots__ = ("fence",)

    def __init__(self, fence: str):
        self.fence = fence


@dataclass
class LocalDecl:
    """Declaration of a per-work-group local array.

    The OpenCL front-end produces these from ``__local`` kernel arguments
    (``clSetKernelArg`` with a size and NULL pointer); the SYCL front-end
    produces them from local accessors created in the command group.
    """

    name: str
    dtype: object
    count: int


@dataclass
class ExecutionStats:
    """Counters describing one kernel launch."""

    kernel_name: str = ""
    work_items: int = 0
    work_groups: int = 0
    work_group_size: int = 0
    barriers: int = 0
    mode: str = "interpreted"

    def merge(self, other: "ExecutionStats") -> None:
        self.work_items += other.work_items
        self.work_groups += other.work_groups
        self.barriers += other.barriers


class WorkItem:
    """A single kernel instance's view of the ND-range (1-D).

    The method names match SYCL's ``nd_item`` (Table IV of the paper); the
    OpenCL front-end wraps an instance in :class:`OpenCLWorkItemFunctions`
    to expose the OpenCL spellings.
    """

    __slots__ = ("global_id", "local_id", "group_id", "local_range",
                 "global_range", "_barrier_count")

    def __init__(self, global_id: int, local_id: int, group_id: int,
                 local_range: int, global_range: int):
        self.global_id = global_id
        self.local_id = local_id
        self.group_id = group_id
        self.local_range = local_range
        self.global_range = global_range
        self._barrier_count = 0

    def get_global_id(self, dim: int = 0) -> int:
        self._check_dim(dim)
        return self.global_id

    def get_local_id(self, dim: int = 0) -> int:
        self._check_dim(dim)
        return self.local_id

    def get_group(self, dim: int = 0) -> int:
        self._check_dim(dim)
        return self.group_id

    def get_local_range(self, dim: int = 0) -> int:
        self._check_dim(dim)
        return self.local_range

    def get_global_range(self, dim: int = 0) -> int:
        self._check_dim(dim)
        return self.global_range

    def barrier(self, fence: str = FenceSpace.LOCAL) -> _BarrierToken:
        """Create a barrier token; the kernel must ``yield`` it."""
        self._barrier_count += 1
        return _BarrierToken(fence)

    @staticmethod
    def _check_dim(dim: int) -> None:
        if dim != 0:
            raise SYCLNDRangeError(
                f"this executor models 1-D ND-ranges; dimension {dim} "
                "was requested")


class OpenCLWorkItemFunctions:
    """OpenCL spellings of the work-item functions (Table IV, left column).

    An instance is passed as the first argument of every interpreted
    OpenCL-style kernel, standing in for OpenCL C's global built-ins.
    """

    __slots__ = ("_item",)

    CLK_LOCAL_MEM_FENCE = FenceSpace.LOCAL
    CLK_GLOBAL_MEM_FENCE = FenceSpace.GLOBAL

    def __init__(self, item: WorkItem):
        self._item = item

    def get_global_id(self, dim: int = 0) -> int:
        return self._item.get_global_id(dim)

    def get_local_id(self, dim: int = 0) -> int:
        return self._item.get_local_id(dim)

    def get_group_id(self, dim: int = 0) -> int:
        return self._item.get_group(dim)

    def get_local_size(self, dim: int = 0) -> int:
        return self._item.get_local_range(dim)

    def get_global_size(self, dim: int = 0) -> int:
        return self._item.get_global_range(dim)

    def barrier(self, fence: str = FenceSpace.LOCAL) -> _BarrierToken:
        return self._item.barrier(fence)


@dataclass
class GroupContext:
    """Passed to vectorized kernels: one work-group's coordinates + LDS."""

    group_id: int
    group_start: int
    group_size: int
    global_range: int
    local_memory: LocalMemory


class NDRangeExecutor:
    """Executes 1-D ND-range kernels over work-groups.

    Parameters
    ----------
    lds_capacity_bytes:
        Per-work-group shared-local-memory capacity (default 64 KiB).
    group_order:
        ``"linear"`` schedules work-groups in index order; ``"shuffled"``
        permutes them with ``seed`` to emulate non-deterministic hardware
        scheduling (the paper notes atomic update order is not
        deterministic).
    """

    def __init__(self, lds_capacity_bytes: int = DEFAULT_LDS_BYTES,
                 group_order: str = "linear", seed: int = 0):
        if group_order not in ("linear", "shuffled"):
            raise ValueError(f"unknown group order {group_order!r}")
        self.lds_capacity_bytes = lds_capacity_bytes
        self.group_order = group_order
        self.seed = seed

    # -- public API ---------------------------------------------------

    def run(self, kernel: Callable, global_size: int, local_size: int,
            args: Sequence, local_decls: Sequence[LocalDecl] = (),
            kernel_name: str = "", opencl_style: bool = False,
            ) -> ExecutionStats:
        """Run ``kernel`` interpreted over the ND-range.

        ``args`` are passed after the work-item context; local arrays from
        ``local_decls`` are appended after ``args`` in declaration order,
        matching how both front-ends bind ``__local`` arguments / local
        accessors last in the paper's kernels.
        """
        self._validate_range(global_size, local_size)
        stats = ExecutionStats(
            kernel_name=kernel_name or getattr(kernel, "__name__", "kernel"),
            work_group_size=local_size, mode="interpreted")
        is_generator = inspect.isgeneratorfunction(kernel)
        for group_id in self._group_schedule(global_size, local_size):
            lds = LocalMemory(self.lds_capacity_bytes)
            local_arrays = [lds.declare(d.name, d.dtype, d.count)
                            for d in local_decls]
            group_start = group_id * local_size
            group_size = min(local_size, global_size - group_start)
            items = [
                WorkItem(global_id=group_start + li, local_id=li,
                         group_id=group_id, local_range=local_size,
                         global_range=global_size)
                for li in range(group_size)
            ]
            if is_generator:
                stats.barriers += self._run_group_with_barriers(
                    kernel, items, args, local_arrays, opencl_style)
            else:
                for item in items:
                    ctx = OpenCLWorkItemFunctions(item) if opencl_style else item
                    kernel(ctx, *args, *local_arrays)
            stats.work_groups += 1
            stats.work_items += group_size
        return stats

    def run_vectorized(self, kernel: Callable, global_size: int,
                       local_size: int, args: Sequence,
                       local_decls: Sequence[LocalDecl] = (),
                       kernel_name: str = "",
                       block_items: Optional[int] = None) -> ExecutionStats:
        """Run a vectorized kernel over the ND-range in large blocks.

        The kernel signature is ``kernel(group: GroupContext, *args,
        *local_arrays)`` and it must compute all work-items of
        ``[group.group_start, group.group_start + group.group_size)``
        with numpy.  Work-group decomposition only affects shared local
        memory, which vectorized kernels stage internally, so for speed
        the executor fuses whole multiples of the work-group size into
        one call (``block_items`` per call, default 1 MiB of work-items);
        reported statistics still count true work-groups.  Vectorized
        kernels must therefore not rely on ``group_id`` meaning a
        hardware group index.
        """
        self._validate_range(global_size, local_size)
        stats = ExecutionStats(
            kernel_name=kernel_name or getattr(kernel, "__name__", "kernel"),
            work_group_size=local_size, mode="vectorized")
        if block_items is None:
            block_items = 1 << 20
        groups_per_block = max(1, block_items // local_size)
        block_size = groups_per_block * local_size
        n_groups = (global_size + local_size - 1) // local_size
        start = 0
        block_id = 0
        while start < global_size:
            size = min(block_size, global_size - start)
            lds = LocalMemory(self.lds_capacity_bytes)
            local_arrays = [lds.declare(d.name, d.dtype, d.count)
                            for d in local_decls]
            ctx = GroupContext(group_id=block_id, group_start=start,
                               group_size=size, global_range=global_size,
                               local_memory=lds)
            kernel(ctx, *args, *local_arrays)
            start += size
            block_id += 1
        stats.work_groups = n_groups
        stats.work_items = global_size
        return stats

    # -- internals ----------------------------------------------------

    def _validate_range(self, global_size: int, local_size: int) -> None:
        if global_size <= 0:
            raise SYCLNDRangeError(f"global size must be positive, "
                                   f"got {global_size}")
        if local_size <= 0:
            raise SYCLNDRangeError(f"local size must be positive, "
                                   f"got {local_size}")
        if global_size % local_size:
            # SYCL requires the work-group size to divide the ND-range size
            # in each dimension (Section III.C); we allow a ragged final
            # group only for OpenCL-style launches where the host rounded
            # the range up -- callers are expected to round up themselves,
            # so enforce divisibility here exactly as SYCL does.
            raise SYCLNDRangeError(
                f"work-group size {local_size} does not divide ND-range "
                f"size {global_size}")

    def _group_schedule(self, global_size: int, local_size: int) -> List[int]:
        n_groups = (global_size + local_size - 1) // local_size
        order = list(range(n_groups))
        if self.group_order == "shuffled":
            random.Random(self.seed).shuffle(order)
        return order

    def _run_group_with_barriers(self, kernel, items: List[WorkItem],
                                 args, local_arrays,
                                 opencl_style: bool) -> int:
        """Advance all work-items of a group in barrier-aligned phases."""
        frames = []
        for item in items:
            ctx = OpenCLWorkItemFunctions(item) if opencl_style else item
            frames.append(kernel(ctx, *args, *local_arrays))
        live = list(range(len(frames)))
        barriers = 0
        while live:
            arrived: List[int] = []
            finished: List[int] = []
            fences = set()
            for idx in live:
                try:
                    token = next(frames[idx])
                except StopIteration:
                    finished.append(idx)
                    continue
                if not isinstance(token, _BarrierToken):
                    raise BarrierDivergenceError(
                        f"kernel yielded {token!r}; kernels must yield "
                        "item.barrier() tokens only")
                fences.add(token.fence)
                arrived.append(idx)
            if arrived and finished:
                raise BarrierDivergenceError(
                    f"{len(arrived)} work-item(s) reached a barrier while "
                    f"{len(finished)} work-item(s) returned; barriers must "
                    "be encountered by all work-items of a work-group")
            if arrived:
                if len(fences) > 1:
                    raise BarrierDivergenceError(
                        f"work-items disagree on barrier fence space: "
                        f"{sorted(fences)}")
                barriers += 1
                live = arrived
            else:
                live = []
        return barriers
