"""Object model behind the OpenCL-style API.

These classes model the OpenCL runtime objects the paper's original
application manages explicitly (Table I, left column): platforms, devices,
contexts, command queues, memory objects, programs, kernels and events.
The C-flavoured entry points in :mod:`repro.runtime.opencl.api` are thin
wrappers over this object model; library code may use either layer.

Resource lifetimes are explicit, exactly as in OpenCL: every object has a
reference count and a ``release()`` method, and the memory model reports
leaks for objects that were never released.  (The SYCL front-end, by
contrast, ties lifetimes to Python object lifetimes — the migration the
paper describes in Section III.A.)
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ...devices.specs import ALL_DEVICES, DeviceSpec, PAPER_GPUS
from ...observability import tracing
from ..device import ComputeDevice
from ..errors import (CL_INVALID_ARG_INDEX, CL_INVALID_ARG_VALUE,
                      CL_INVALID_BUFFER_SIZE, CL_INVALID_CONTEXT,
                      CL_INVALID_KERNEL_ARGS, CL_INVALID_KERNEL_NAME,
                      CL_INVALID_MEM_OBJECT, CL_INVALID_OPERATION,
                      CL_INVALID_PROGRAM_EXECUTABLE, CL_INVALID_VALUE,
                      CL_INVALID_WORK_GROUP_SIZE, CLError)
from ..executor import ExecutionStats, LocalDecl, NDRangeExecutor
from ..launch import LaunchRecord
from ..memory import (AccessMode, AddressSpace, DeviceAllocation,
                      DeviceMemoryModel, MemoryView)

# --- memory flags (subset of cl_mem_flags) ------------------------------

CL_MEM_READ_WRITE = 1 << 0
CL_MEM_WRITE_ONLY = 1 << 1
CL_MEM_READ_ONLY = 1 << 2
CL_MEM_COPY_HOST_PTR = 1 << 5

_ACCESS_FOR_FLAGS = {
    CL_MEM_READ_WRITE: AccessMode.READ_WRITE,
    CL_MEM_WRITE_ONLY: AccessMode.WRITE,
    CL_MEM_READ_ONLY: AccessMode.READ,
}

# --- device types --------------------------------------------------------

CL_DEVICE_TYPE_GPU = "gpu"
CL_DEVICE_TYPE_CPU = "cpu"
CL_DEVICE_TYPE_ALL = "all"


class _RefCounted:
    """OpenCL-style explicit reference counting."""

    def __init__(self):
        self._refcount = 1

    def retain(self) -> None:
        if self._refcount <= 0:
            raise CLError(CL_INVALID_OPERATION, "retain of released object")
        self._refcount += 1

    def release(self) -> None:
        if self._refcount <= 0:
            raise CLError(CL_INVALID_OPERATION, "double release")
        self._refcount -= 1
        if self._refcount == 0:
            self._destroy()

    @property
    def alive(self) -> bool:
        return self._refcount > 0

    def _destroy(self) -> None:  # overridden where teardown matters
        pass

    def _check_alive(self, what: str, code: int) -> None:
        if not self.alive:
            raise CLError(code, f"use of released {what}")


class Platform:
    """An OpenCL platform: a vendor runtime exposing devices."""

    def __init__(self, name: str, vendor: str, devices: List["Device"]):
        self.name = name
        self.vendor = vendor
        self.version = "OpenCL 2.0 repro-sim"
        self._devices = devices

    def get_devices(self, device_type: str = CL_DEVICE_TYPE_ALL
                    ) -> List["Device"]:
        if device_type == CL_DEVICE_TYPE_ALL:
            return list(self._devices)
        return [d for d in self._devices if d.spec.device_type == device_type]

    def __repr__(self) -> str:
        return f"Platform({self.name!r}, devices={len(self._devices)})"


class Device(ComputeDevice):
    """An OpenCL device handle (shared :class:`ComputeDevice` state)."""

    def __repr__(self) -> str:
        return f"Device({self.spec.short_name})"


_platform_cache: Optional[List[Platform]] = None


def get_platforms(fresh: bool = False) -> List[Platform]:
    """Model of ``clGetPlatformIDs``: one GPU platform + one CPU platform.

    ``fresh=True`` rebuilds devices (and their memory models) from scratch,
    which tests use for isolation.
    """
    global _platform_cache
    if _platform_cache is None or fresh:
        gpu_devices = [Device(spec) for spec in PAPER_GPUS.values()]
        cpu_devices = [Device(ALL_DEVICES["CPU"])]
        _platform_cache = [
            Platform("AMD Accelerated Parallel Processing (model)",
                     "Advanced Micro Devices, Inc.", gpu_devices),
            Platform("Portable Computing Language (model)", "repro",
                     cpu_devices),
        ]
    return _platform_cache


class Context(_RefCounted):
    """An OpenCL context over one or more devices."""

    def __init__(self, devices: Sequence[Device]):
        super().__init__()
        if not devices:
            raise CLError(CL_INVALID_VALUE, "context needs at least one device")
        self.devices = list(devices)

    @property
    def device(self) -> Device:
        return self.devices[0]


class Mem(_RefCounted):
    """An OpenCL memory object (``cl_mem``)."""

    def __init__(self, context: Context, flags: int, size_bytes: int,
                 host_ptr: Optional[np.ndarray] = None, name: str = "",
                 dtype=None):
        super().__init__()
        context._check_alive("context", CL_INVALID_CONTEXT)
        if size_bytes <= 0:
            raise CLError(CL_INVALID_BUFFER_SIZE,
                          f"buffer size {size_bytes} must be positive")
        access = AccessMode.READ_WRITE
        for flag, mode in _ACCESS_FOR_FLAGS.items():
            if flags & flag:
                access = mode
        self.context = context
        self.flags = flags
        self.access = access
        # OpenCL buffers are untyped bytes; the kernel's pointer type gives
        # them meaning.  The model carries an element dtype (inferred from
        # the host pointer, or given explicitly) so numpy kernels see
        # correctly-typed arrays.
        if dtype is None:
            dtype = (np.uint8 if host_ptr is None
                     else np.asarray(host_ptr).dtype)
        if size_bytes % np.dtype(dtype).itemsize:
            raise CLError(CL_INVALID_BUFFER_SIZE,
                          f"size {size_bytes} B not a multiple of element "
                          f"size {np.dtype(dtype).itemsize}")
        count = (size_bytes // np.dtype(dtype).itemsize)
        initial = None
        if flags & CL_MEM_COPY_HOST_PTR:
            if host_ptr is None:
                raise CLError(CL_INVALID_VALUE,
                              "CL_MEM_COPY_HOST_PTR without host pointer")
            initial = np.asarray(host_ptr).ravel()[:count]
        self.allocation: DeviceAllocation = context.device.memory.allocate(
            count, dtype, AddressSpace.GLOBAL, initial=initial,
            name=name or "cl_mem")
        self.size_bytes = size_bytes

    def device_view(self, mode: AccessMode) -> MemoryView:
        """View for kernel execution, clamped to the buffer's access flags."""
        self._check_alive("mem object", CL_INVALID_MEM_OBJECT)
        if mode.can_write and not self.access.can_write:
            mode = AccessMode.READ
        if mode.can_read and not self.access.can_read:
            mode = AccessMode.WRITE
        return self.allocation.view(mode)

    def _destroy(self) -> None:
        self.context.device.memory.release(self.allocation)


@dataclass
class LocalArg:
    """A ``clSetKernelArg(k, i, size, NULL)`` local-memory argument."""

    dtype: object
    count: int


@dataclass
class KernelParam:
    """Declared parameter of a kernel: address space + access intent.

    ``space``: "global", "constant", "local" or "scalar".
    ``access``: "r", "w" or "rw" (ignored for scalars).
    """

    name: str
    space: str
    access: str = "rw"

    def access_mode(self) -> AccessMode:
        return {"r": AccessMode.READ, "w": AccessMode.WRITE,
                "rw": AccessMode.READ_WRITE}[self.access]


class Program(_RefCounted):
    """An OpenCL program object holding named kernel functions.

    Instead of OpenCL C source we register Python callables with declared
    parameter lists (:class:`KernelParam`), which play the role of the
    address-space qualifiers in Section III.E of the paper.
    """

    def __init__(self, context: Context,
                 kernels: Dict[str, "KernelDefinition"]):
        super().__init__()
        self.context = context
        self.kernels = dict(kernels)
        self.built = False
        self.build_options = ""

    def build(self, options: str = "") -> None:
        self._check_alive("program", CL_INVALID_PROGRAM_EXECUTABLE)
        self.build_options = options
        self.built = True

    def create_kernel(self, name: str) -> "Kernel":
        self._check_alive("program", CL_INVALID_PROGRAM_EXECUTABLE)
        if not self.built:
            raise CLError(CL_INVALID_PROGRAM_EXECUTABLE,
                          f"program not built before creating kernel {name!r}")
        if name not in self.kernels:
            raise CLError(CL_INVALID_KERNEL_NAME,
                          f"no kernel {name!r}; have {sorted(self.kernels)}")
        return Kernel(self, name, self.kernels[name])


@dataclass
class KernelDefinition:
    """A kernel function plus its parameter declarations."""

    function: Callable
    params: List[KernelParam]
    #: Optional vectorized implementation (``GroupContext`` based).
    vectorized: Optional[Callable] = None


class Kernel(_RefCounted):
    """An OpenCL kernel object with positional argument binding."""

    def __init__(self, program: Program, name: str,
                 definition: KernelDefinition):
        super().__init__()
        self.program = program
        self.name = name
        self.definition = definition
        self._args: List = [None] * len(definition.params)
        self._args_set = [False] * len(definition.params)

    def set_arg(self, index: int, value) -> None:
        """Model of ``clSetKernelArg``."""
        self._check_alive("kernel", CL_INVALID_OPERATION)
        if not 0 <= index < len(self.definition.params):
            raise CLError(CL_INVALID_ARG_INDEX,
                          f"kernel {self.name!r} has "
                          f"{len(self.definition.params)} args, got index "
                          f"{index}")
        param = self.definition.params[index]
        if param.space == "local":
            if not isinstance(value, LocalArg):
                raise CLError(CL_INVALID_ARG_VALUE,
                              f"arg {index} ({param.name}) is __local; pass "
                              "a LocalArg(dtype, count)")
        elif param.space in ("global", "constant"):
            if not isinstance(value, Mem):
                raise CLError(CL_INVALID_ARG_VALUE,
                              f"arg {index} ({param.name}) is a buffer "
                              f"argument; got {type(value).__name__}")
        else:  # scalar
            if isinstance(value, (Mem, LocalArg)):
                raise CLError(CL_INVALID_ARG_VALUE,
                              f"arg {index} ({param.name}) is scalar")
        self._args[index] = value
        self._args_set[index] = True

    def bound_arguments(self):
        """Resolve bound args into executor inputs.

        Returns ``(kernel_args, local_decls)`` where buffer args become
        numpy windows with access enforcement and local args become
        :class:`LocalDecl` entries appended in declaration order.
        """
        if not all(self._args_set):
            missing = [p.name for p, s in
                       zip(self.definition.params, self._args_set) if not s]
            raise CLError(CL_INVALID_KERNEL_ARGS,
                          f"kernel {self.name!r} args not set: {missing}")
        kernel_args: List = []
        local_decls: List[LocalDecl] = []
        for param, value in zip(self.definition.params, self._args):
            if param.space == "local":
                local_decls.append(
                    LocalDecl(param.name, value.dtype, value.count))
            elif param.space in ("global", "constant"):
                mode = (AccessMode.READ if param.space == "constant"
                        else param.access_mode())
                kernel_args.append(value.device_view(mode).ndarray())
            else:
                kernel_args.append(value)
        return kernel_args, local_decls


CL_COMMAND_NDRANGE_KERNEL = "ndrange_kernel"
CL_COMMAND_READ_BUFFER = "read_buffer"
CL_COMMAND_WRITE_BUFFER = "write_buffer"

_event_ids = itertools.count(1)


class Event:
    """An OpenCL event with wall-clock profiling info."""

    def __init__(self, command_type: str, start: float, end: float,
                 stats: Optional[ExecutionStats] = None):
        self.id = next(_event_ids)
        self.command_type = command_type
        self.profile_start = start
        self.profile_end = end
        self.stats = stats
        self.complete = True

    @property
    def duration(self) -> float:
        return self.profile_end - self.profile_start

    def wait(self) -> None:
        """In-order model queue: commands complete at enqueue time."""


def wait_for_events(events: Sequence[Event]) -> None:
    for event in events:
        event.wait()


class CommandQueue(_RefCounted):
    """An in-order OpenCL command queue.

    Every launch is recorded as a :class:`~repro.runtime.launch.LaunchRecord`
    so the profiler (:mod:`repro.analysis.profiling`) and the device timing
    model (:mod:`repro.devices.timing`) can reconstruct where time went.
    """

    def __init__(self, context: Context, device: Device,
                 executor: Optional[NDRangeExecutor] = None):
        super().__init__()
        context._check_alive("context", CL_INVALID_CONTEXT)
        if device not in context.devices:
            raise CLError(CL_INVALID_VALUE,
                          f"device {device!r} not in context")
        self.context = context
        self.device = device
        self.executor = executor or NDRangeExecutor(
            lds_capacity_bytes=device.spec.lds_per_cu_bytes)
        self.launches: List[LaunchRecord] = []

    # -- data movement --------------------------------------------------

    def enqueue_write_buffer(self, mem: Mem, host: np.ndarray,
                             offset_bytes: int = 0,
                             size_bytes: Optional[int] = None,
                             blocking: bool = True) -> Event:
        """Model of ``clEnqueueWriteBuffer`` (host -> device)."""
        mem._check_alive("mem object", CL_INVALID_MEM_OBJECT)
        start = time.perf_counter()
        host_flat = np.asarray(host).ravel()
        itemsize = mem.allocation.array.itemsize
        if offset_bytes % itemsize:
            raise CLError(CL_INVALID_VALUE,
                          f"offset {offset_bytes} not aligned to "
                          f"element size {itemsize}")
        if size_bytes is None:
            size_bytes = host_flat.nbytes
        count = size_bytes // itemsize
        offset = offset_bytes // itemsize
        view = mem.allocation.view(AccessMode.WRITE, offset, count)
        target = mem.allocation.array
        target[offset:offset + count] = host_flat[:count].view(
            mem.allocation.array.dtype)
        view.record_bulk_traffic(bytes_written=size_bytes)
        end = time.perf_counter()
        event = Event(CL_COMMAND_WRITE_BUFFER, start, end)
        self.launches.append(LaunchRecord.transfer(
            "h2d", size_bytes, end - start, api="opencl"))
        return event

    def enqueue_read_buffer(self, mem: Mem, host: np.ndarray,
                            offset_bytes: int = 0,
                            size_bytes: Optional[int] = None,
                            blocking: bool = True) -> Event:
        """Model of ``clEnqueueReadBuffer`` (device -> host)."""
        mem._check_alive("mem object", CL_INVALID_MEM_OBJECT)
        start = time.perf_counter()
        host_flat = np.asarray(host).ravel()
        itemsize = mem.allocation.array.itemsize
        if offset_bytes % itemsize:
            raise CLError(CL_INVALID_VALUE,
                          f"offset {offset_bytes} not aligned to "
                          f"element size {itemsize}")
        if size_bytes is None:
            size_bytes = min(host_flat.nbytes,
                             mem.size_bytes - offset_bytes)
        count = size_bytes // itemsize
        offset = offset_bytes // itemsize
        view = mem.allocation.view(AccessMode.READ, offset, count)
        host_flat[:count] = view.ndarray().view(host_flat.dtype)[:count]
        view.record_bulk_traffic(bytes_read=size_bytes)
        end = time.perf_counter()
        event = Event(CL_COMMAND_READ_BUFFER, start, end)
        self.launches.append(LaunchRecord.transfer(
            "d2h", size_bytes, end - start, api="opencl"))
        return event

    # -- kernel launch ----------------------------------------------------

    def enqueue_nd_range_kernel(self, kernel: Kernel, global_size: int,
                                local_size: Optional[int] = None,
                                vectorized: bool = False,
                                batch: int = 1) -> Event:
        """Model of ``clEnqueueNDRangeKernel``.

        Passing ``local_size=None`` lets the runtime choose the work-group
        size (the paper's OpenCL application does this); the model uses the
        device's preferred size, padding the global size up the way OpenCL
        runtimes do for automatic local sizes.
        """
        kernel._check_alive("kernel", CL_INVALID_OPERATION)
        runtime_chosen = local_size is None
        if runtime_chosen:
            # As real OpenCL runtimes do for a NULL local size, pick the
            # largest size <= the device preference that divides the
            # global size.
            local_size = self.device.preferred_work_group_size
            while local_size > 1 and global_size % local_size:
                local_size //= 2
            if global_size % local_size:
                local_size = 1
        if local_size > self.device.max_work_group_size:
            raise CLError(CL_INVALID_WORK_GROUP_SIZE,
                          f"work-group size {local_size} exceeds device "
                          f"limit {self.device.max_work_group_size}")
        if global_size % local_size:
            raise CLError(CL_INVALID_WORK_GROUP_SIZE,
                          f"local size {local_size} does not divide global "
                          f"size {global_size}")
        padded = global_size
        kernel_args, local_decls = kernel.bound_arguments()
        with tracing.span(f"kernel:{kernel.name}", cat="kernel",
                          api="opencl", kernel=kernel.name,
                          global_size=padded, local_size=local_size,
                          batch=batch):
            start = time.perf_counter()
            fn = kernel.definition.function
            if vectorized:
                if kernel.definition.vectorized is None:
                    raise CLError(CL_INVALID_OPERATION,
                                  f"kernel {kernel.name!r} has no "
                                  "vectorized implementation")
                stats = self.executor.run_vectorized(
                    kernel.definition.vectorized, padded, local_size,
                    kernel_args, local_decls, kernel_name=kernel.name)
            else:
                stats = self.executor.run(
                    fn, padded, local_size, kernel_args, local_decls,
                    kernel_name=kernel.name, opencl_style=True)
            end = time.perf_counter()
        event = Event(CL_COMMAND_NDRANGE_KERNEL, start, end, stats)
        self.launches.append(LaunchRecord.kernel(
            kernel.name, padded, local_size, end - start, stats,
            api="opencl", runtime_chosen_wg=runtime_chosen, batch=batch))
        return event

    def finish(self) -> None:
        """In-order model queue: nothing outstanding."""

    def flush(self) -> None:
        """In-order model queue: nothing outstanding."""
