"""OpenCL-style runtime model (the paper's source programming model).

Two layers are exposed:

* :mod:`repro.runtime.opencl.objects` — the object model (platforms,
  devices, contexts, queues, memory objects, programs, kernels, events)
  with explicit reference-counted lifetimes;
* :mod:`repro.runtime.opencl.api` — C-flavoured ``cl*`` entry points over
  the object model, matching the thirteen programming steps of Table I.
"""

from .api import *  # noqa: F401,F403
from .api import __all__ as _api_all
from .objects import (CommandQueue, Context, Device, Event, Platform,
                      Program, get_platforms)

__all__ = list(_api_all) + [
    "CommandQueue", "Context", "Device", "Event", "Platform", "Program",
    "get_platforms",
]
