"""C-flavoured OpenCL entry points over the object model.

These functions mirror the thirteen programming steps the paper counts for
an OpenCL application (Table I): platform query, device query, context
creation, command-queue creation, memory-object creation, program
creation, program build, kernel creation, kernel-argument setup, kernel
enqueue, device-to-host transfer, event handling and resource release.
Each wrapper follows the C API's calling conventions as closely as Python
allows — explicit error codes via :class:`~repro.runtime.errors.CLError`,
explicit release calls — so :mod:`repro.analysis.productivity` can count
the steps an application actually performs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import CL_DEVICE_NOT_FOUND, CLError
from .objects import (CL_DEVICE_TYPE_ALL, CL_DEVICE_TYPE_CPU,
                      CL_DEVICE_TYPE_GPU, CL_MEM_COPY_HOST_PTR,
                      CL_MEM_READ_ONLY, CL_MEM_READ_WRITE,
                      CL_MEM_WRITE_ONLY, CommandQueue, Context, Device,
                      Event, Kernel, KernelDefinition, KernelParam,
                      LocalArg, Mem, Platform, Program, get_platforms,
                      wait_for_events)

__all__ = [
    "CL_DEVICE_TYPE_ALL", "CL_DEVICE_TYPE_CPU", "CL_DEVICE_TYPE_GPU",
    "CL_MEM_COPY_HOST_PTR", "CL_MEM_READ_ONLY", "CL_MEM_READ_WRITE",
    "CL_MEM_WRITE_ONLY",
    "clGetPlatformIDs", "clGetDeviceIDs", "clCreateContext",
    "clCreateCommandQueue", "clCreateBuffer", "clCreateProgram",
    "clBuildProgram", "clCreateKernel", "clSetKernelArg",
    "clEnqueueNDRangeKernel", "clEnqueueReadBuffer",
    "clEnqueueWriteBuffer", "clWaitForEvents", "clFinish",
    "clReleaseMemObject", "clReleaseKernel", "clReleaseProgram",
    "clReleaseCommandQueue", "clReleaseContext",
    "Kernel", "KernelDefinition", "KernelParam", "LocalArg", "Mem",
]


# Step 1: platform query.
def clGetPlatformIDs(fresh: bool = False) -> List[Platform]:
    platforms = get_platforms(fresh=fresh)
    if not platforms:
        raise CLError(CL_DEVICE_NOT_FOUND, "no platforms available")
    return platforms


# Step 2: device query of a platform.
def clGetDeviceIDs(platform: Platform,
                   device_type: str = CL_DEVICE_TYPE_ALL) -> List[Device]:
    devices = platform.get_devices(device_type)
    if not devices:
        raise CLError(CL_DEVICE_NOT_FOUND,
                      f"platform {platform.name!r} has no "
                      f"{device_type!r} devices")
    return devices


# Step 3: create context for devices.
def clCreateContext(devices: Sequence[Device]) -> Context:
    return Context(devices)


# Step 4: create command queue for context.
def clCreateCommandQueue(context: Context, device: Device) -> CommandQueue:
    return CommandQueue(context, device)


# Step 5: create memory objects.
def clCreateBuffer(context: Context, flags: int, size_bytes: int,
                   host_ptr: Optional[np.ndarray] = None,
                   name: str = "", dtype=None) -> Mem:
    return Mem(context, flags, size_bytes, host_ptr, name, dtype)


# Step 6: create program object.  (The C API compiles OpenCL C source; the
# model registers Python kernel definitions instead.)
def clCreateProgram(context: Context,
                    kernels: Dict[str, KernelDefinition]) -> Program:
    return Program(context, kernels)


# Step 7: build a program.
def clBuildProgram(program: Program, options: str = "") -> None:
    program.build(options)


# Step 8: create kernel(s).
def clCreateKernel(program: Program, name: str) -> Kernel:
    return program.create_kernel(name)


# Step 9: set kernel arguments.
def clSetKernelArg(kernel: Kernel, index: int, value) -> None:
    kernel.set_arg(index, value)


# Step 10: enqueue a kernel object for execution.
def clEnqueueNDRangeKernel(queue: CommandQueue, kernel: Kernel,
                           global_size: int,
                           local_size: Optional[int] = None,
                           vectorized: bool = False,
                           batch: int = 1) -> Event:
    return queue.enqueue_nd_range_kernel(kernel, global_size, local_size,
                                         vectorized=vectorized, batch=batch)


# Step 11: transfer data between device and host.
def clEnqueueReadBuffer(queue: CommandQueue, mem: Mem, host: np.ndarray,
                        offset_bytes: int = 0,
                        size_bytes: Optional[int] = None,
                        blocking: bool = True) -> Event:
    return queue.enqueue_read_buffer(mem, host, offset_bytes, size_bytes,
                                     blocking)


def clEnqueueWriteBuffer(queue: CommandQueue, mem: Mem, host: np.ndarray,
                         offset_bytes: int = 0,
                         size_bytes: Optional[int] = None,
                         blocking: bool = True) -> Event:
    return queue.enqueue_write_buffer(mem, host, offset_bytes, size_bytes,
                                      blocking)


# Step 12: event handling.
def clWaitForEvents(events: Sequence[Event]) -> None:
    wait_for_events(events)


def clFinish(queue: CommandQueue) -> None:
    queue.finish()


# Step 13: release resources — one call per object class, as in C.
def clReleaseMemObject(mem: Mem) -> None:
    mem.release()


def clReleaseKernel(kernel: Kernel) -> None:
    kernel.release()


def clReleaseProgram(program: Program) -> None:
    program.release()


def clReleaseCommandQueue(queue: CommandQueue) -> None:
    queue.release()


def clReleaseContext(context: Context) -> None:
    context.release()
