"""Hotspot profiling (Section IV.B's 98 % / 50–80 % claims).

The paper profiles the application and finds the ``compare`` kernel
"accounts for approximately 98 % of the total kernel execution time and
50 % to 80 % of the elapsed time".  This module reproduces that analysis
two ways:

* :func:`profile_launches` aggregates the *measured* wall times of the
  launch records a pipeline produced (Python-scale timings);
* :func:`profile_modeled` asks the device timing model for the same
  breakdown at full-genome scale on a chosen GPU, which is the setting
  in which the paper's percentages hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.workload import WorkloadProfile
from ..devices.specs import DeviceSpec
from ..devices.timing import (DEFAULT_CALIBRATION, ElapsedTimeModel,
                              TimingCalibration, model_elapsed)
from ..runtime.launch import LaunchRecord


@dataclass
class KernelProfile:
    """Aggregate statistics for one kernel across a run."""

    name: str
    launches: int = 0
    total_time_s: float = 0.0
    work_items: int = 0

    def add(self, record: LaunchRecord) -> None:
        self.launches += 1
        self.total_time_s += record.wall_time_s
        self.work_items += record.global_size


@dataclass
class RunProfile:
    """Hotspot breakdown of one pipeline run."""

    kernels: Dict[str, KernelProfile]
    transfer_time_s: float
    total_kernel_time_s: float

    def share_of_kernel_time(self, kernel_name: str) -> float:
        if not self.total_kernel_time_s:
            return 0.0
        profile = self.kernels.get(kernel_name)
        if profile is None:
            return 0.0
        return profile.total_time_s / self.total_kernel_time_s

    def hotspot(self) -> Optional[KernelProfile]:
        if not self.kernels:
            return None
        return max(self.kernels.values(), key=lambda k: k.total_time_s)


def profile_launches(launches: Iterable[LaunchRecord]) -> RunProfile:
    """Aggregate measured launch records into a hotspot profile."""
    kernels: Dict[str, KernelProfile] = {}
    transfer = 0.0
    kernel_total = 0.0
    for record in launches:
        if record.is_kernel:
            profile = kernels.setdefault(record.name,
                                         KernelProfile(record.name))
            profile.add(record)
            kernel_total += record.wall_time_s
        else:
            transfer += record.wall_time_s
    return RunProfile(kernels=kernels, transfer_time_s=transfer,
                      total_kernel_time_s=kernel_total)


@dataclass
class ModeledProfile:
    """Modeled full-scale breakdown (the paper's profiling numbers)."""

    model: ElapsedTimeModel

    @property
    def comparer_share_of_kernel(self) -> float:
        return self.model.comparer_share_of_kernel

    @property
    def comparer_share_of_elapsed(self) -> float:
        if not self.model.elapsed_s:
            return 0.0
        return self.model.comparer_s / self.model.elapsed_s


def profile_modeled(spec: DeviceSpec, workload: WorkloadProfile,
                    api: str = "sycl", variant: str = "base",
                    cal: TimingCalibration = DEFAULT_CALIBRATION
                    ) -> ModeledProfile:
    """Model the hotspot percentages at the given workload scale."""
    return ModeledProfile(model_elapsed(spec, workload, api, variant,
                                        cal=cal))
