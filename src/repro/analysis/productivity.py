"""Programming-steps / productivity model (Table I and Section II.C).

The paper counts 13 logical programming steps for an OpenCL application
and 8 for the equivalent SYCL application, concluding SYCL "could improve
programming productivity with abstractions".  This module encodes that
mapping as data — each OpenCL step with the SYCL construct that subsumes
it — and can also *measure* the step counts dynamically by tracing the
API calls a pipeline actually makes, so the claim is checked against the
real ported application rather than quoted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ProgrammingStep:
    """One row of Table I."""

    number: int
    opencl: str
    sycl: str                  # "" when subsumed by an earlier SYCL row
    #: The SYCL construct that covers this OpenCL step.
    sycl_construct: str


TABLE1_STEPS: List[ProgrammingStep] = [
    ProgrammingStep(1, "Platform query", "",
                    "Device selector class"),
    ProgrammingStep(2, "Device query of a platform", "Device selector class",
                    "Device selector class"),
    ProgrammingStep(3, "Create context for devices", "",
                    "Device selector class"),
    ProgrammingStep(4, "Create command queue for context", "Queue class",
                    "Queue class"),
    ProgrammingStep(5, "Create memory objects", "Buffer class",
                    "Buffer class"),
    ProgrammingStep(6, "Create program object", "",
                    "Lambda expressions"),
    ProgrammingStep(7, "Build a program", "",
                    "Lambda expressions"),
    ProgrammingStep(8, "Create kernel(s)", "Lambda expressions",
                    "Lambda expressions"),
    ProgrammingStep(9, "Set kernel arguments", "",
                    "Lambda expressions"),
    ProgrammingStep(10, "Enqueue a kernel object for execution",
                    "Submit a SYCL kernel to a queue",
                    "Queue submit"),
    ProgrammingStep(11, "Transfer data from device to host",
                    "Implicit via accessors", "Accessors"),
    ProgrammingStep(12, "Event handling", "Event class", "Event class"),
    ProgrammingStep(13, "Release resources", "Implicit via destructors",
                    "Destructors"),
]


def opencl_step_count() -> int:
    """The paper's count of OpenCL programming steps (13)."""
    return len(TABLE1_STEPS)


def sycl_step_count() -> int:
    """The paper's count of SYCL programming steps (8).

    Distinct SYCL constructs/rows: steps that map to the same construct
    collapse, exactly as Table I shows blank cells.
    """
    distinct = []
    for step in TABLE1_STEPS:
        if step.sycl:
            distinct.append(step.sycl)
    return len(distinct)


def table1_rows() -> List[Tuple[int, str, str]]:
    """Rows in the paper's format: (step, OpenCL, SYCL-or-blank)."""
    return [(s.number, s.opencl, s.sycl) for s in TABLE1_STEPS]


# ---------------------------------------------------------------------------
# Dynamic measurement: count the distinct API step classes a pipeline
# actually exercised.
# ---------------------------------------------------------------------------

#: OpenCL entry points grouped by Table I step.
OPENCL_STEP_OF_CALL: Dict[str, int] = {
    "clGetPlatformIDs": 1,
    "clGetDeviceIDs": 2,
    "clCreateContext": 3,
    "clCreateCommandQueue": 4,
    "clCreateBuffer": 5,
    "clCreateProgram": 6,
    "clBuildProgram": 7,
    "clCreateKernel": 8,
    "clSetKernelArg": 9,
    "clEnqueueNDRangeKernel": 10,
    "clEnqueueReadBuffer": 11,
    "clEnqueueWriteBuffer": 11,
    "clWaitForEvents": 12,
    "clFinish": 12,
    "clReleaseMemObject": 13,
    "clReleaseKernel": 13,
    "clReleaseProgram": 13,
    "clReleaseCommandQueue": 13,
    "clReleaseContext": 13,
}

#: SYCL constructs grouped by the collapsed step list.
SYCL_STEP_OF_CALL: Dict[str, str] = {
    "device_selector": "Device selector class",
    "queue": "Queue class",
    "buffer": "Buffer class",
    "parallel_for": "Lambda expressions",
    "submit": "Queue submit",
    "accessor": "Accessors",
    "event_wait": "Event class",
    "buffer_close": "Destructors",
}


def count_opencl_steps(call_names: List[str]) -> int:
    """Distinct Table I steps exercised by a traced OpenCL call list."""
    steps = {OPENCL_STEP_OF_CALL[name] for name in call_names
             if name in OPENCL_STEP_OF_CALL}
    return len(steps)


def count_sycl_steps(construct_names: List[str]) -> int:
    """Distinct collapsed steps exercised by a traced SYCL construct
    list."""
    steps = {SYCL_STEP_OF_CALL[name] for name in construct_names
             if name in SYCL_STEP_OF_CALL}
    return len(steps)


@dataclass
class ProductivityReport:
    """Table I summary plus the measured counts for the two pipelines."""

    opencl_steps: int
    sycl_steps: int

    @property
    def reduction(self) -> float:
        return 1.0 - self.sycl_steps / self.opencl_steps


def paper_report() -> ProductivityReport:
    return ProductivityReport(opencl_steps=opencl_step_count(),
                              sycl_steps=sycl_step_count())
