"""Table and figure renderers for the benchmark harness.

Plain-text renderers that print the paper's tables in the paper's layout
(monospace, suitable for terminals and EXPERIMENTS.md), each paired with
the published values so model-vs-paper deltas are visible at a glance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Published Table VIII values: (device, dataset) -> (OCL s, SYCL s).
PAPER_TABLE8: Dict[Tuple[str, str], Tuple[int, int]] = {
    ("RVII", "hg19"): (54, 48), ("MI60", "hg19"): (51, 50),
    ("MI100", "hg19"): (49, 41),
    ("RVII", "hg38"): (71, 61), ("MI60", "hg38"): (63, 63),
    ("MI100", "hg38"): (61, 58),
}

#: Published Table IX values: (device, dataset) -> (base s, opt s).
PAPER_TABLE9: Dict[Tuple[str, str], Tuple[int, int]] = {
    ("RVII", "hg19"): (48, 39), ("MI60", "hg19"): (50, 42),
    ("MI100", "hg19"): (41, 36),
    ("RVII", "hg38"): (61, 52), ("MI60", "hg38"): (63, 57),
    ("MI100", "hg38"): (58, 53),
}

#: Published Table X rows: variant -> (code bytes, VGPRs, SGPRs,
#: occupancy).  Register rows follow the paper's *prose* (Section IV.B),
#: which is self-consistent, rather than its table labels, which swap
#: the SGPR/VGPR headings.
PAPER_TABLE10: Dict[str, Tuple[int, int, int, int]] = {
    "base": (6064, 64, 22, 10),
    "opt1": (5852, 64, 22, 10),
    "opt2": (5408, 64, 22, 10),
    "opt3": (4408, 57, 10, 10),
    "opt4": (3660, 82, 10, 9),
}

#: Figure 2's cumulative base->opt3 kernel-time reductions per device,
#: as given in the running text: (dataset) -> per-device percentages.
PAPER_FIG2_OPT3_REDUCTION: Dict[str, Tuple[float, float, float]] = {
    "hg38": (0.229, 0.211, 0.217),
    "hg19": (0.278, 0.234, 0.231),
}


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a monospace table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table8(models: Dict[Tuple[str, str], Tuple[float, float]]
                  ) -> str:
    """Render modeled Table VIII next to the published numbers.

    ``models`` maps (device, dataset) to (ocl seconds, sycl seconds).
    """
    rows = []
    for (device, dataset), (ocl, sycl) in sorted(models.items()):
        paper_ocl, paper_sycl = PAPER_TABLE8[(device, dataset)]
        rows.append((device, dataset, f"{ocl:.1f}", f"{sycl:.1f}",
                     f"{ocl / sycl:.2f}", paper_ocl, paper_sycl,
                     f"{paper_ocl / paper_sycl:.2f}"))
    return format_table(
        ("Device", "Dataset", "OCL(s)", "SYCL(s)", "speedup",
         "paper OCL", "paper SYCL", "paper spd"),
        rows, title="Table VIII — elapsed time, OpenCL vs SYCL")


def render_table9(models: Dict[Tuple[str, str], Tuple[float, float]]
                  ) -> str:
    """``models`` maps (device, dataset) to (base s, opt s)."""
    rows = []
    for (device, dataset), (base, opt) in sorted(models.items()):
        paper_base, paper_opt = PAPER_TABLE9[(device, dataset)]
        rows.append((device, dataset, f"{base:.1f}", f"{opt:.1f}",
                     f"{base / opt:.2f}", paper_base, paper_opt,
                     f"{paper_base / paper_opt:.2f}"))
    return format_table(
        ("Device", "Dataset", "base(s)", "opt(s)", "speedup",
         "paper base", "paper opt", "paper spd"),
        rows, title="Table IX — optimized SYCL application")


def render_table10(rows_model: Dict[str, Tuple[int, int, int, int]]
                   ) -> str:
    """``rows_model`` maps variant to (code, vgpr, sgpr, occupancy)."""
    rows = []
    for variant in ("base", "opt1", "opt2", "opt3", "opt4"):
        code, vgpr, sgpr, occ = rows_model[variant]
        pcode, pvgpr, psgpr, pocc = PAPER_TABLE10[variant]
        rows.append((variant, code, pcode, vgpr, pvgpr, sgpr, psgpr,
                     occ, pocc))
    return format_table(
        ("Variant", "Code(B)", "paper", "VGPRs", "paper", "SGPRs",
         "paper", "Occup", "paper"),
        rows, title="Table X — resource usage and occupancy")


def render_stage_timings(stages) -> str:
    """Per-stage wall-second breakdown of an engine/pipeline run.

    ``stages`` is a :class:`repro.core.workload.StageTimings`; rendered
    as one row per stage with its share of the run's wall time.
    """
    wall = stages.wall_s or 0.0
    rows = []
    for label, seconds in (("stage-in", stages.stage_in_s),
                           ("finder", stages.finder_s),
                           ("comparer", stages.comparer_s),
                           ("merge", stages.merge_s),
                           ("idle", stages.idle_s)):
        share = f"{seconds / wall:.1%}" if wall > 0 else "-"
        rows.append((label, f"{seconds:.3f}", share))
    rows.append(("wall", f"{wall:.3f}", "100.0%" if wall > 0 else "-"))
    rows.append(("overlap", f"{stages.overlap_ratio:.2f}", ""))
    return format_table(("Stage", "Seconds", "Share"), rows,
                        title="Stage timings")


def render_trace_summary(spans) -> str:
    """Aggregate a trace into per-category/per-kernel summary rows.

    ``spans`` is a sequence of :class:`repro.observability.tracing.Span`.
    Complete events ("X") aggregate by name within category (kernels
    keep their per-kernel names, so finder and comparer report
    separately); instant events ("i") are counted, with cache instants
    split into hits and misses.
    """
    durations: Dict[Tuple[str, str], List[float]] = {}
    counts: Dict[Tuple[str, str], int] = {}
    for span in spans:
        if span.phase == "X":
            durations.setdefault((span.cat, span.name),
                                 []).append(span.duration_s)
            continue
        name = span.name
        if span.cat == "cache":
            name += " hit" if span.args.get("hit") else " miss"
        key = (span.cat, name)
        counts[key] = counts.get(key, 0) + 1
    rows = []
    for (cat, name), values in sorted(durations.items()):
        total = sum(values)
        rows.append((cat, name, len(values), f"{total:.4f}",
                     f"{total / len(values):.5f}",
                     f"{max(values):.5f}"))
    for (cat, name), count in sorted(counts.items()):
        rows.append((cat, name, count, "-", "-", "-"))
    return format_table(
        ("Category", "Event", "Count", "Total(s)", "Mean(s)", "Max(s)"),
        rows, title="Trace summary")


def render_fig2(series: Dict[Tuple[str, str], List[float]]) -> str:
    """Figure 2 as a table: kernel seconds per variant.

    ``series`` maps (device, dataset) to [base, opt1..opt4] seconds.
    """
    rows = []
    for (device, dataset), times in sorted(series.items()):
        base = times[0]
        rows.append((device, dataset,
                     *(f"{t:.1f}" for t in times),
                     f"{1 - times[3] / base:.1%}",
                     f"{times[4] / times[3]:.2f}x"))
    return format_table(
        ("Device", "Dataset", "base", "opt1", "opt2", "opt3", "opt4",
         "opt3 cut", "opt4/opt3"),
        rows,
        title="Figure 2 — comparer kernel time by optimization level")
