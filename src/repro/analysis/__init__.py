"""Analyses over pipeline runs: productivity (Table I), hotspot
profiling (Section IV.B) and table/figure renderers."""

from .productivity import (ProductivityReport, ProgrammingStep,
                           TABLE1_STEPS, count_opencl_steps,
                           count_sycl_steps, opencl_step_count,
                           paper_report, sycl_step_count, table1_rows)
from .profiling import (KernelProfile, ModeledProfile, RunProfile,
                        profile_launches, profile_modeled)
from .reporting import (PAPER_FIG2_OPT3_REDUCTION, PAPER_TABLE8,
                        PAPER_TABLE9, PAPER_TABLE10, format_table,
                        render_fig2, render_table8, render_table9,
                        render_table10)
from .sweeps import (ChunkSweepRow, OccupancySweepRow, ThresholdSweepRow,
                     WorkGroupSweepRow, chunk_size_sweep, occupancy_sweep,
                     threshold_sweep, work_group_size_sweep)

__all__ = [
    "KernelProfile", "ModeledProfile", "PAPER_FIG2_OPT3_REDUCTION",
    "PAPER_TABLE10", "PAPER_TABLE8", "PAPER_TABLE9",
    "ProductivityReport", "ProgrammingStep", "RunProfile",
    "TABLE1_STEPS", "count_opencl_steps", "count_sycl_steps",
    "format_table", "opencl_step_count", "paper_report",
    "profile_launches", "profile_modeled", "render_fig2",
    "render_table10", "render_table8", "render_table9",
    "sycl_step_count", "table1_rows",
    "ChunkSweepRow", "OccupancySweepRow", "ThresholdSweepRow",
    "WorkGroupSweepRow", "chunk_size_sweep", "occupancy_sweep",
    "threshold_sweep", "work_group_size_sweep",
]
