"""Parameter sweeps: the ablation studies DESIGN.md calls out.

Each sweep varies one design parameter the paper fixes (or varies
implicitly) and reports how the modeled or measured behaviour responds:

* :func:`work_group_size_sweep` — the Section IV.A asymmetry, swept:
  how the comparer's staging share and total time respond to the
  work-group size (64 = the OpenCL runtime's choice, 256 = the paper's
  SYCL choice);
* :func:`occupancy_sweep` — kernel time as a function of register
  pressure, the continuous version of the opt3 -> opt4 cliff;
* :func:`threshold_sweep` — how the mismatch threshold drives the
  compare loop's early-exit trip count and the hit volume (measured on
  real pipeline runs);
* :func:`chunk_size_sweep` — device-memory chunking versus launch
  count (measured; results are invariant, cost varies mildly).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import Query, SearchRequest
from ..core.pipeline import search
from ..core.workload import WorkloadProfile
from ..devices.codegen import analyze_comparer
from ..devices.occupancy import waves_per_simd
from ..devices.specs import DeviceSpec, MI60
from ..devices.timing import (DEFAULT_CALIBRATION, TimingCalibration,
                              model_comparer_cycles)


@dataclass(frozen=True)
class WorkGroupSweepRow:
    work_group_size: int
    comparer_cycles: float
    staging_share: float


def work_group_size_sweep(workload: WorkloadProfile,
                          spec: DeviceSpec = MI60,
                          variant: str = "base",
                          sizes: Sequence[int] = (64, 128, 256, 512),
                          cal: TimingCalibration = DEFAULT_CALIBRATION,
                          ) -> List[WorkGroupSweepRow]:
    """Sweep the work-group size through the comparer timing model."""
    rows = []
    for size in sizes:
        breakdown = model_comparer_cycles(spec, workload, variant, size,
                                          cal)
        rows.append(WorkGroupSweepRow(
            work_group_size=size,
            comparer_cycles=breakdown["total"],
            staging_share=breakdown["staging"] / breakdown["total"]))
    return rows


@dataclass(frozen=True)
class OccupancySweepRow:
    vgprs: int
    waves: int
    relative_time: float


def occupancy_sweep(vgpr_values: Sequence[int] = (32, 48, 57, 64, 72,
                                                  80, 96, 128),
                    spec: DeviceSpec = MI60,
                    latency: float = 700.0,
                    issue_floor: float = 148.0
                    ) -> List[OccupancySweepRow]:
    """Latency-bound iteration time versus register pressure.

    Uses the occupancy model's wave counts and the analytic model's
    per-iteration form ``max(latency / waves, issue)``; times are
    normalized to the best configuration.
    """
    rows = []
    times = []
    for vgprs in vgpr_values:
        waves = waves_per_simd(vgprs, 16, 230, 256, spec)
        times.append(max(latency / waves, issue_floor))
    best = min(times)
    for vgprs, time in zip(vgpr_values, times):
        waves = waves_per_simd(vgprs, 16, 230, 256, spec)
        rows.append(OccupancySweepRow(vgprs=vgprs, waves=waves,
                                      relative_time=time / best))
    return rows


@dataclass(frozen=True)
class ThresholdSweepRow:
    threshold: int
    avg_trips_forward: float
    hits: int
    candidates: int


def threshold_sweep(assembly, pattern: str, query: str,
                    thresholds: Sequence[int] = (0, 2, 4, 6, 8),
                    chunk_size: int = 1 << 20
                    ) -> List[ThresholdSweepRow]:
    """Measure early-exit trip counts and hit volume per threshold."""
    rows = []
    for threshold in thresholds:
        request = SearchRequest(pattern, [Query(query, threshold)])
        result = search(assembly, request, chunk_size=chunk_size)
        load = result.workload.queries[0]
        rows.append(ThresholdSweepRow(
            threshold=threshold,
            avg_trips_forward=load.avg_trips_forward,
            hits=load.hits,
            candidates=result.workload.candidates))
    return rows


@dataclass(frozen=True)
class ChunkSweepRow:
    chunk_size: int
    chunk_count: int
    hits: int
    wall_time_s: float


def chunk_size_sweep(assembly, request: SearchRequest,
                     sizes: Sequence[int] = (1 << 16, 1 << 18, 1 << 20)
                     ) -> List[ChunkSweepRow]:
    """Measure the chunk-size trade-off on real pipeline runs."""
    rows = []
    for size in sizes:
        result = search(assembly, request, chunk_size=size)
        rows.append(ChunkSweepRow(
            chunk_size=size,
            chunk_count=result.workload.chunk_count,
            hits=len(result.hits),
            wall_time_s=result.wall_time_s))
    return rows
