"""Guide-design smoke: ``python -m repro.design --smoke``.

Builds a small synthetic index, computes the in-process
:func:`~repro.design.ranking.design_guides` reference, then serves the
same index over TCP and checks two things a deployment cares about:

* the served ``design`` response is **byte-identical** to the
  in-process payload, and
* the request's candidate queries all rode one batched comparer pass
  (``comparer_stats``: one batch, all queries), never per-guide
  rescans.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .ranking import design_guides


def _smoke(scale: float, mismatches: int, top: int,
           estimator: str) -> int:
    from ..genome.synthetic import synthetic_assembly
    from ..service.client import ServiceClient
    from ..service.index import GenomeSiteIndex
    from ..service.server import OffTargetServer

    assembly = synthetic_assembly("hg19", scale=scale, seed=7)
    chrom = assembly.chromosomes[0].name
    end = min(400, len(assembly.chromosomes[0].sequence))
    index = GenomeSiteIndex.build(assembly, "NNNNNNRG",
                                  chunk_size=1 << 15)
    before = index.comparer_stats()
    reference = design_guides(index, chrom, 0, end, mismatches,
                              top_n=top, estimator=estimator)
    after = index.comparer_stats()
    batches = after["batches"] - before["batches"]
    scanned = after["queries_total"] - before["queries_total"]
    expected = json.dumps({"ok": True, **reference.payload()})

    server = OffTargetServer(index, max_wait_ms=1.0)
    handle = server.start_background()
    try:
        with ServiceClient(handle.host, handle.port) as client:
            response = client._call({
                "op": "design", "chrom": chrom, "start": 0,
                "end": end, "mismatches": mismatches, "top": top,
                "estimator": estimator})
            response.pop("id", None)
            served = json.dumps(response)
    finally:
        handle.stop()

    report = {
        "region": f"{chrom}:0-{end}",
        "estimator": estimator,
        "candidates": len(reference.candidates),
        "queries": len(reference.queries),
        "reports": len(reference.reports),
        "comparer_batches": batches,
        "comparer_queries": scanned,
        "served_bytes": len(served),
        "byte_identical": served == expected,
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    if not reference.candidates:
        print("smoke FAILED: no candidates enumerated")
        return 1
    if batches != 1 or scanned != len(reference.queries):
        print(f"smoke FAILED: expected 1 comparer batch covering "
              f"{len(reference.queries)} queries, saw {batches} "
              f"batch(es) / {scanned} queries")
        return 1
    if served != expected:
        print("smoke FAILED: served design response diverges from "
              "the in-process reference")
        return 1
    print(f"smoke OK: {len(reference.reports)} guides ranked from "
          f"{len(reference.candidates)} candidates in one batched "
          f"scan; served response byte-identical")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.design",
        description="Guide-design smoke test: in-process reference "
                    "vs a served design request.")
    parser.add_argument("--smoke", action="store_true",
                        help="run the design smoke")
    parser.add_argument("--scale", type=float, default=0.0002,
                        help="synthetic assembly scale factor")
    parser.add_argument("--mismatches", type=int, default=2,
                        help="off-target search depth per candidate")
    parser.add_argument("--top", type=int, default=5,
                        help="ranked guides to request")
    parser.add_argument("--estimator", choices=("mit", "cfd"),
                        default="mit")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke is supported; use the `design` "
                     "CLI subcommand for real requests")
    return _smoke(args.scale, args.mismatches, args.top,
                  args.estimator)


if __name__ == "__main__":
    sys.exit(main())
