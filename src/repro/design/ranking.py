"""Ranked guide selection: one batched scan, genome-wide penalties.

:func:`design_guides` is the end-to-end workflow: enumerate candidate
protospacers over a target region, submit **all** of them as one
multi-query batch through the resident index's batched comparer (one
``query_batch`` call — the single-scan invariant; never a per-guide
rescan), aggregate each candidate's genome-wide off-target penalty
under an estimator, and return the top-N as
:class:`GuideDesignReport` rows.

Everything the service tiers need to produce *byte-identical* design
responses lives here as pure functions over plain data:

* :func:`decode_design_spec` — one shared request validator, so the
  server and the router reject malformed requests identically;
* :func:`rank_candidates` — per-candidate summaries + the
  deterministic sort ``(-specificity, guide, chrom, position,
  strand)``;
* :func:`design_payload` — the one response encoder (fixed key and
  row layout) used verbatim by the in-process path, the server and
  the router.

Floats are bit-deterministic because every tier feeds the same hit
lists in the same (deterministically merged) order through the same
summation — the same property the query op's byte-identity rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..core import scoring
from ..core.config import Query
from ..core.records import OffTargetHit
from .enumerate import (DEFAULT_GC_MAX, DEFAULT_GC_MIN,
                        DEFAULT_MAX_HOMOPOLYMER, PatternAnatomy,
                        ProtospacerCandidate, candidate_queries,
                        encode_candidates, enumerate_protospacers,
                        pattern_anatomy)
from .estimators import GuideEstimator, get_estimator

#: Hard cap on candidates per design request; a pathological region
#: cannot flood the batch path with an unbounded query list.
MAX_CANDIDATES = 4096

#: Wire row layout for one ranked report (the ``design`` op).
REPORT_FIELDS = ("guide", "pam", "chrom", "position", "strand",
                 "gc_fraction", "specificity", "on_targets",
                 "off_targets", "worst_off_target")


@dataclass(frozen=True)
class GuideDesignReport:
    """One ranked candidate: where it sits and how specific it is."""

    guide: str
    pam: str
    chrom: str
    position: int
    strand: str
    gc_fraction: float
    specificity: float        # 0-100, higher = fewer/weaker off-targets
    on_targets: int           # exact (0-mismatch) genome sites
    off_targets: int
    worst_off_target: float

    @staticmethod
    def header() -> Tuple[str, ...]:
        return REPORT_FIELDS

    def tsv_row(self) -> str:
        return "\t".join((
            self.guide, self.pam, self.chrom, str(self.position),
            self.strand, f"{self.gc_fraction:.3f}",
            f"{self.specificity:.4f}", str(self.on_targets),
            str(self.off_targets), f"{self.worst_off_target:.4f}"))


def encode_reports(reports: Sequence[GuideDesignReport]
                   ) -> List[List[Any]]:
    return [[r.guide, r.pam, r.chrom, int(r.position), r.strand,
             float(r.gc_fraction), float(r.specificity),
             int(r.on_targets), int(r.off_targets),
             float(r.worst_off_target)] for r in reports]


def decode_reports(rows: Sequence[Sequence[Any]]
                   ) -> List[GuideDesignReport]:
    reports = []
    for row in rows:
        if not isinstance(row, (list, tuple)) \
                or len(row) != len(REPORT_FIELDS):
            raise ValueError(
                f"bad report row {row!r}: expected "
                f"{list(REPORT_FIELDS)}")
        reports.append(GuideDesignReport(
            guide=str(row[0]), pam=str(row[1]), chrom=str(row[2]),
            position=int(row[3]), strand=str(row[4]),
            gc_fraction=float(row[5]), specificity=float(row[6]),
            on_targets=int(row[7]), off_targets=int(row[8]),
            worst_off_target=float(row[9])))
    return reports


# ---------------------------------------------------------------------------
# Request spec (shared between server, router, client and CLI)


@dataclass(frozen=True)
class DesignSpec:
    """A validated ``design``/``enumerate`` request."""

    chrom: str
    start: int
    end: int
    max_mismatches: int
    top_n: int = 5
    estimator: str = "mit"
    guide_length: Optional[int] = None
    gc_min: float = DEFAULT_GC_MIN
    gc_max: float = DEFAULT_GC_MAX
    max_homopolymer: int = DEFAULT_MAX_HOMOPOLYMER

    def to_request(self, op: str) -> Dict[str, Any]:
        """The wire form of this spec (router -> backend RPCs)."""
        request: Dict[str, Any] = {
            "op": op, "chrom": self.chrom, "start": self.start,
            "end": self.end, "mismatches": self.max_mismatches,
            "top": self.top_n, "estimator": self.estimator,
            "gc_min": self.gc_min, "gc_max": self.gc_max,
            "max_homopolymer": self.max_homopolymer,
        }
        if self.guide_length is not None:
            request["guide_length"] = self.guide_length
        return request


def _require_int(request: Mapping[str, Any], field: str,
                 minimum: int, default: Optional[int] = None,
                 required: bool = True) -> Optional[int]:
    raw = request.get(field, default)
    if raw is None:
        if required:
            raise ValueError(f"missing required field {field!r}")
        return None
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ValueError(f"{field} must be an integer, got {raw!r}")
    if raw < minimum:
        raise ValueError(f"{field} must be >= {minimum}, got {raw}")
    return raw


def _require_float(request: Mapping[str, Any], field: str,
                   default: float) -> float:
    raw = request.get(field, default)
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ValueError(f"{field} must be a number, got {raw!r}")
    return float(raw)


def decode_design_spec(request: Mapping[str, Any]) -> DesignSpec:
    """Validate a design/enumerate request into a :class:`DesignSpec`.

    Raises ``ValueError`` with a client-actionable message; the server
    and router both use this, so malformed requests fail identically
    at every tier.
    """
    chrom = request.get("chrom")
    if not isinstance(chrom, str) or not chrom:
        raise ValueError(
            f"'chrom' must be a chromosome name, got {chrom!r}")
    start = _require_int(request, "start", 0)
    end = _require_int(request, "end", 1)
    if end <= start:
        raise ValueError(
            f"bad region {chrom}:{start}-{end}: need start < end")
    mismatches = _require_int(request, "mismatches", 0)
    top_n = _require_int(request, "top", 1, default=5)
    estimator = request.get("estimator", "mit")
    if not isinstance(estimator, str):
        raise ValueError(
            f"'estimator' must be a string, got {estimator!r}")
    guide_length = _require_int(request, "guide_length", 1,
                                required=False)
    gc_min = _require_float(request, "gc_min", DEFAULT_GC_MIN)
    gc_max = _require_float(request, "gc_max", DEFAULT_GC_MAX)
    if not 0.0 <= gc_min <= gc_max <= 1.0:
        raise ValueError(
            f"bad GC bounds [{gc_min}, {gc_max}]: need "
            f"0 <= gc_min <= gc_max <= 1")
    max_homopolymer = _require_int(request, "max_homopolymer", 0,
                                   default=DEFAULT_MAX_HOMOPOLYMER)
    return DesignSpec(chrom=chrom, start=start, end=end,
                      max_mismatches=mismatches, top_n=top_n,
                      estimator=estimator, guide_length=guide_length,
                      gc_min=gc_min, gc_max=gc_max,
                      max_homopolymer=max_homopolymer)


# ---------------------------------------------------------------------------
# Ranking and response encoding (pure; shared by every tier)


def scoring_guide_length(anatomy: PatternAnatomy) -> int:
    """Scored guide positions: the guide region, capped at the weight
    tables' 20 positions (markup past the tables is PAM-distal spill
    the schemes do not model)."""
    return min(anatomy.guide_length, scoring.GUIDE_LENGTH)


def rank_candidates(candidates: Sequence[ProtospacerCandidate],
                    hits_by_query: Mapping[str, List[OffTargetHit]],
                    estimator: GuideEstimator,
                    top_n: Optional[int] = None
                    ) -> List[GuideDesignReport]:
    """Summarize every candidate and sort best-first, deterministically.

    The sort key ``(-specificity, guide, chrom, position, strand)``
    breaks every possible tie on candidate identity, so rankings are
    byte-identical across runs and serving tiers.
    """
    reports: List[GuideDesignReport] = []
    for candidate in candidates:
        hits = hits_by_query.get(candidate.query_sequence, [])
        specificity, on_targets, off_targets, worst = \
            estimator.summarize(hits)
        reports.append(GuideDesignReport(
            guide=candidate.protospacer, pam=candidate.pam,
            chrom=candidate.chrom, position=candidate.position,
            strand=candidate.strand,
            gc_fraction=candidate.gc_fraction,
            specificity=specificity, on_targets=on_targets,
            off_targets=off_targets, worst_off_target=worst))
    reports.sort(key=lambda r: (-r.specificity, r.guide, r.chrom,
                                r.position, r.strand))
    if top_n is not None:
        reports = reports[:top_n]
    return reports


def design_payload(anatomy: PatternAnatomy,
                   estimator: GuideEstimator,
                   candidates: Sequence[ProtospacerCandidate],
                   queries: Sequence[str],
                   reports: Sequence[GuideDesignReport]
                   ) -> Dict[str, Any]:
    """The ``design`` response body (everything except ok/id).

    Single source of truth for key order and row layout: the server
    and the router both serialize exactly this dict, which is what
    makes routed design responses byte-identical to in-process ones.
    """
    return {
        "estimator": estimator.name,
        "pattern": anatomy.pattern,
        "guide_length": anatomy.guide_length,
        "pam": anatomy.pam,
        "candidates": len(candidates),
        "queries": len(queries),
        "reports": encode_reports(reports),
    }


def enumerate_payload(anatomy: PatternAnatomy,
                      candidates: Sequence[ProtospacerCandidate],
                      queries: Sequence[str]) -> Dict[str, Any]:
    """The ``enumerate`` response body (candidates on the wire)."""
    return {
        "pattern": anatomy.pattern,
        "guide_length": anatomy.guide_length,
        "pam": anatomy.pam,
        "candidates": encode_candidates(candidates),
        "queries": list(queries),
    }


# ---------------------------------------------------------------------------
# The in-process workflow


@dataclass(frozen=True)
class DesignResult:
    """Everything a design run produced, pre- and post-ranking."""

    anatomy: PatternAnatomy
    estimator: GuideEstimator
    candidates: Tuple[ProtospacerCandidate, ...]
    queries: Tuple[str, ...]
    reports: Tuple[GuideDesignReport, ...]

    def payload(self) -> Dict[str, Any]:
        return design_payload(self.anatomy, self.estimator,
                              self.candidates, self.queries,
                              self.reports)


def enumerate_for_design(assembly, pattern: str, spec: DesignSpec
                         ) -> Tuple[PatternAnatomy,
                                    List[ProtospacerCandidate],
                                    List[str]]:
    """Anatomy + filtered candidates + unique queries for one spec."""
    anatomy = pattern_anatomy(pattern, spec.guide_length)
    candidates = enumerate_protospacers(
        assembly, spec.chrom, spec.start, spec.end, anatomy,
        gc_min=spec.gc_min, gc_max=spec.gc_max,
        max_homopolymer=spec.max_homopolymer)
    if len(candidates) > MAX_CANDIDATES:
        raise ValueError(
            f"region {spec.chrom}:{spec.start}-{spec.end} yields "
            f"{len(candidates)} candidates, over the "
            f"{MAX_CANDIDATES}-candidate request cap; split the "
            f"region")
    return anatomy, candidates, candidate_queries(candidates)


def design_guides(index, chrom: str, start: int, end: int,
                  max_mismatches: int, top_n: int = 5,
                  estimator: Union[str, GuideEstimator] = "mit",
                  guide_length: Optional[int] = None,
                  gc_min: float = DEFAULT_GC_MIN,
                  gc_max: float = DEFAULT_GC_MAX,
                  max_homopolymer: int = DEFAULT_MAX_HOMOPOLYMER,
                  querier: Optional[Callable[[List[Query]],
                                             List[List[OffTargetHit]]]]
                  = None) -> DesignResult:
    """Enumerate, scan once, rank: the guide-design workflow.

    ``index`` is anything with the resident-index surface
    (``pattern``, ``assembly``, ``query_batch``) — the in-process
    :class:`~repro.service.index.GenomeSiteIndex` or the sharded
    tier.  All unique candidate queries go through exactly one
    ``querier`` call (default ``index.query_batch``): one batched
    comparer pass over the resident index for the entire candidate
    set.
    """
    spec = DesignSpec(chrom=chrom, start=start, end=end,
                      max_mismatches=max_mismatches, top_n=top_n,
                      guide_length=guide_length, gc_min=gc_min,
                      gc_max=gc_max, max_homopolymer=max_homopolymer)
    anatomy, candidates, queries = enumerate_for_design(
        index.assembly, index.pattern, spec)
    chosen = get_estimator(estimator, scoring_guide_length(anatomy))
    hits_by_query: Dict[str, List[OffTargetHit]] = {}
    if queries:
        run = querier if querier is not None else index.query_batch
        results = run([Query(sequence=query,
                             max_mismatches=max_mismatches)
                       for query in queries])
        hits_by_query = dict(zip(queries, results))
    reports = rank_candidates(candidates, hits_by_query, chosen, top_n)
    return DesignResult(anatomy=anatomy, estimator=chosen,
                        candidates=tuple(candidates),
                        queries=tuple(queries),
                        reports=tuple(reports))
