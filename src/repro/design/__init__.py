"""Guide-design subsystem: pick guides, not just look them up.

The serving stack answers "where does this guide bind"; this package
answers the question real users ask — "which guide should I use for
this region".  Three layers, in the spirit of the crisprtree estimator
API:

* :mod:`repro.design.enumerate` — scan a target region of the
  assembly, both strands, for PAM-adjacent protospacer candidates with
  composition filters (GC bounds, homopolymer runs, ACGT-only);
* :mod:`repro.design.estimators` — estimator objects (MIT, CFD-style)
  with a uniform ``score_hits``/``rank`` API over
  :mod:`repro.core.scoring`;
* :mod:`repro.design.ranking` — the :func:`design_guides` workflow:
  every enumerated candidate rides ONE multi-query batch through the
  resident :class:`~repro.service.index.GenomeSiteIndex` (a single
  batched comparer pass — never per-guide rescans), genome-wide
  off-target penalties are aggregated per candidate, and the ranked
  top-N come back as :class:`GuideDesignReport` rows.

The same workflow is exposed as the ``design`` op of the query service
(server, sharded tier and router alike, byte-identical), via
``repro.service.client.ServiceClient.design`` and the ``design`` CLI
subcommand.  ``python -m repro.design --smoke`` checks a live server's
``design`` response against the in-process reference.
"""

from .enumerate import (DesignError, PatternAnatomy,
                        ProtospacerCandidate, candidate_queries,
                        decode_candidates, encode_candidates,
                        enumerate_protospacers, pattern_anatomy)
from .estimators import (CFDEstimator, ESTIMATORS, GuideEstimator,
                         MITEstimator, get_estimator)
from .ranking import (DesignResult, DesignSpec, GuideDesignReport,
                      MAX_CANDIDATES, REPORT_FIELDS, decode_design_spec,
                      decode_reports, design_guides, design_payload,
                      encode_reports, enumerate_for_design,
                      enumerate_payload, rank_candidates,
                      scoring_guide_length)

__all__ = [
    "CFDEstimator",
    "DesignError",
    "DesignResult",
    "DesignSpec",
    "ESTIMATORS",
    "GuideDesignReport",
    "GuideEstimator",
    "MAX_CANDIDATES",
    "MITEstimator",
    "PatternAnatomy",
    "ProtospacerCandidate",
    "REPORT_FIELDS",
    "candidate_queries",
    "decode_candidates",
    "decode_design_spec",
    "decode_reports",
    "design_guides",
    "design_payload",
    "encode_candidates",
    "encode_reports",
    "enumerate_for_design",
    "enumerate_payload",
    "enumerate_protospacers",
    "get_estimator",
    "pattern_anatomy",
    "rank_candidates",
    "scoring_guide_length",
]
