"""Estimator objects over the scoring schemes, crisprtree-style.

crisprtree wraps its mismatch-scoring rules in sklearn-like estimator
objects so downstream code (ranking workflows, pipelines) is generic
over the scheme.  The same split here: a :class:`GuideEstimator` turns
pipeline hit lists into per-site scores, per-guide summaries and
ranked :class:`~repro.core.scoring.GuideReport` lists, and the two
concrete estimators plug in the MIT and CFD-style site scorers from
:mod:`repro.core.scoring` — so an estimator's numbers are *exactly*
the numbers direct ``score_hit``/``cfd_score_hit`` calls produce (the
test suite pins this equality).

Estimators are resolved by name through :data:`ESTIMATORS`, which is
how the ``design`` service op and CLI select a scheme on the wire.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type, Union

from ..core import scoring
from ..core.records import OffTargetHit
from .enumerate import DesignError


class GuideEstimator:
    """Uniform scoring API over one site-scoring scheme.

    ``guide_length`` is the number of PAM-distal positions whose
    markup is scored — the served pattern's degenerate guide region
    (capped at the weight tables' 20 positions).
    """

    #: Wire/CLI name; subclasses override.
    name = "base"

    def __init__(self, guide_length: int = scoring.GUIDE_LENGTH):
        if guide_length < 1:
            raise DesignError(
                f"guide_length must be >= 1, got {guide_length}")
        self.guide_length = int(guide_length)

    @staticmethod
    def _site_scorer(hit: OffTargetHit, guide_length: int) -> float:
        raise NotImplementedError

    def site_score(self, hit: OffTargetHit) -> float:
        """Score of one site, 0-100 (100 = exact match)."""
        return self._site_scorer(hit, self.guide_length)

    def score_hits(self, hits: Iterable[OffTargetHit]) -> List[float]:
        """Per-site scores, in hit order."""
        return [self.site_score(hit) for hit in hits]

    def summarize(self, hits: Iterable[OffTargetHit]
                  ) -> "tuple[float, int, int, float]":
        """``(specificity, on_targets, off_targets, worst)`` of one
        guide's hit list (see :func:`repro.core.scoring.summarize_hits`).
        """
        return scoring.summarize_hits(hits, self.guide_length,
                                      self._site_scorer)

    def aggregate(self, hits: Iterable[OffTargetHit]
                  ) -> Dict[str, scoring.GuideReport]:
        """Per-guide reports over a mixed hit list."""
        return scoring.aggregate_reports(hits, self.guide_length,
                                         self._site_scorer)

    def rank(self, hits: Iterable[OffTargetHit]
             ) -> List[scoring.GuideReport]:
        """Guides best-first, deterministic ``(-specificity, guide)``."""
        return scoring.rank_guides(hits, self.guide_length,
                                   self._site_scorer)


class MITEstimator(GuideEstimator):
    """MIT/Zhang position-weight scheme (Hsu et al. 2013)."""

    name = "mit"
    _site_scorer = staticmethod(scoring.score_hit)


class CFDEstimator(GuideEstimator):
    """CFD-style position x substitution scheme (after Doench 2016)."""

    name = "cfd"
    _site_scorer = staticmethod(scoring.cfd_score_hit)


#: Wire/CLI name -> estimator class.
ESTIMATORS: Dict[str, Type[GuideEstimator]] = {
    MITEstimator.name: MITEstimator,
    CFDEstimator.name: CFDEstimator,
}


def get_estimator(spec: Union[str, GuideEstimator],
                  guide_length: int = scoring.GUIDE_LENGTH
                  ) -> GuideEstimator:
    """Resolve an estimator name (or pass an instance through)."""
    if isinstance(spec, GuideEstimator):
        return spec
    cls = ESTIMATORS.get(str(spec).lower())
    if cls is None:
        raise DesignError(
            f"unknown estimator {spec!r}; expected one of "
            f"{sorted(ESTIMATORS)}")
    return cls(guide_length)
