"""Protospacer enumeration: candidate guides for a target region.

A Cas-OFFinder pattern is a degenerate guide region followed by a PAM
(e.g. ``NNNNNNRG``: six ``N`` guide positions, then the ``RG`` PAM).
Designing a guide for a region means finding every window whose PAM
side mask-matches the pattern's PAM — on either strand — and whose
guide side passes basic composition filters:

* concrete bases only (assembly gaps and ambiguity codes are not
  synthesizable guide sequences);
* GC fraction within bounds, inclusive on both ends (extreme GC
  guides bind poorly; a guide at exactly ``gc_min`` or ``gc_max``
  passes);
* no homopolymer run longer than a threshold (synthesis and
  sequencing both stumble on long runs).

Enumeration order is deterministic: ascending site position, forward
strand before reverse at the same position.  A candidate's *query
sequence* is its protospacer followed by ``N`` over the PAM — exactly
the query shape the serving stack already takes — so the whole
candidate set can ride one batched comparer pass.

The PAM test reuses :func:`repro.core.patterns.pattern_matches_at`,
i.e. the finder kernel's own mask-matching semantics: every candidate
this module emits is guaranteed to be a site the index itself indexed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import numpy as np

from ..core.patterns import (mask_of, pattern_matches_at,
                             reverse_complement, validate_iupac)
from ..genome.assembly import Assembly

_A, _C, _G, _T = (ord(c) for c in "ACGT")

#: Default composition filters: 20-80% GC, homopolymer runs <= 4.
DEFAULT_GC_MIN = 0.2
DEFAULT_GC_MAX = 0.8
DEFAULT_MAX_HOMOPOLYMER = 4


class DesignError(ValueError):
    """Raised for requests the design layer cannot serve."""


@dataclass(frozen=True)
class PatternAnatomy:
    """A served pattern split into guide region and PAM."""

    pattern: str          # full pattern, uppercase IUPAC
    guide_length: int     # degenerate prefix length
    pam: str              # the remaining PAM codes

    @property
    def plen(self) -> int:
        return self.guide_length + len(self.pam)

    @property
    def pam_length(self) -> int:
        return len(self.pam)


def pattern_anatomy(pattern: str,
                    guide_length: Optional[int] = None) -> PatternAnatomy:
    """Split a pattern into its degenerate guide prefix and PAM.

    By default the guide region is the maximal leading run of ``N``;
    pass ``guide_length`` explicitly when the PAM itself starts with
    ``N`` (e.g. SpCas9's ``N``x20 + ``NRG``, where the PAM's leading
    ``N`` merges into the guide run).
    """
    codes = validate_iupac(pattern)
    text = codes.tobytes().decode("ascii")
    plen = len(text)
    if guide_length is None:
        guide_length = 0
        while guide_length < plen and text[guide_length] == "N":
            guide_length += 1
    if not isinstance(guide_length, int) or isinstance(guide_length, bool):
        raise DesignError(
            f"guide_length must be an integer, got {guide_length!r}")
    if guide_length < 1:
        raise DesignError(
            f"pattern {text!r} has no degenerate guide region to "
            f"design into (guide length {guide_length})")
    if guide_length >= plen:
        raise DesignError(
            f"pattern {text!r} has no PAM after a {guide_length}-nt "
            f"guide region; guides cannot be designed without a PAM")
    prefix = text[:guide_length]
    if set(prefix) != {"N"}:
        raise DesignError(
            f"guide region {prefix!r} of pattern {text!r} is not all "
            f"'N'; only fully degenerate guide regions admit arbitrary "
            f"designed guides")
    return PatternAnatomy(pattern=text, guide_length=guide_length,
                          pam=text[guide_length:])


@dataclass(frozen=True)
class ProtospacerCandidate:
    """One candidate guide site found in the target region."""

    chrom: str
    position: int         # 0-based forward-strand site start
    strand: str           # '+' or '-'
    protospacer: str      # guide bases, 5'->3' in query orientation
    pam: str              # PAM bases as read next to the protospacer
    gc_fraction: float

    @property
    def query_sequence(self) -> str:
        """The serving-stack query: guide bases, ``N`` over the PAM."""
        return self.protospacer + "N" * len(self.pam)


def _guide_gc(guide: np.ndarray, gc_min: float, gc_max: float,
              max_homopolymer: int) -> Optional[float]:
    """GC fraction if the guide passes all filters, else ``None``.

    The GC bounds are **inclusive on both ends**: a guide whose GC
    fraction equals ``gc_min`` or ``gc_max`` exactly passes the
    filter.  This matters because common bounds (0.2, 0.25, 0.5, ...)
    are exactly representable and short guides land on them exactly —
    an exclusive boundary would drop candidates nondeterministically
    across float round-off of *other* bound choices.
    """
    if guide.size == 0:
        # A zero-length guide region cannot carry a designed guide
        # (and would divide by zero below); pattern_anatomy rejects
        # guide_length < 1, so this only guards direct callers.
        return None
    acgt = ((guide == _A) | (guide == _C)
            | (guide == _G) | (guide == _T))
    if not acgt.all():
        return None
    gc = float(np.count_nonzero((guide == _G) | (guide == _C)))
    gc /= guide.size
    # Inclusive at both boundaries: reject only strictly outside.
    if gc < gc_min or gc > gc_max:
        return None
    if max_homopolymer > 0 and guide.size > max_homopolymer:
        run = 1
        for index in range(1, guide.size):
            if guide[index] == guide[index - 1]:
                run += 1
                if run > max_homopolymer:
                    return None
            else:
                run = 1
    return gc


def enumerate_protospacers(assembly: Assembly, chrom: str, start: int,
                           end: int, anatomy: PatternAnatomy,
                           gc_min: float = DEFAULT_GC_MIN,
                           gc_max: float = DEFAULT_GC_MAX,
                           max_homopolymer: int = DEFAULT_MAX_HOMOPOLYMER,
                           ) -> List[ProtospacerCandidate]:
    """All filtered candidate guides whose site starts in [start, end).

    ``gc_min``/``gc_max`` are inclusive bounds on the guide's GC
    fraction (see :func:`_guide_gc`).  Both strands are tested at
    every position: a reverse-strand
    candidate is the reverse complement of the same genome window,
    read 5'->3' with its PAM on the 3' side — the same orientation
    convention as the finder kernel, so ``position`` is always the
    forward-strand window start.
    """
    lengths = {c.name: len(c) for c in assembly.chromosomes}
    if chrom not in lengths:
        raise DesignError(
            f"unknown chromosome {chrom!r}; assembly "
            f"{assembly.name!r} has {sorted(lengths)}")
    if start < 0 or end <= start:
        raise DesignError(
            f"bad region {chrom}:{start}-{end}: need 0 <= start < end")
    if end > lengths[chrom]:
        raise DesignError(
            f"region {chrom}:{start}-{end} runs past the end of "
            f"{chrom} (length {lengths[chrom]})")
    if not 0.0 <= gc_min <= gc_max <= 1.0:
        raise DesignError(
            f"bad GC bounds [{gc_min}, {gc_max}]: need "
            f"0 <= gc_min <= gc_max <= 1")
    if max_homopolymer < 0:
        raise DesignError(
            f"max_homopolymer must be >= 0 (0 disables the filter), "
            f"got {max_homopolymer}")
    plen = anatomy.plen
    glen = anatomy.guide_length
    # Last admissible site start keeps the whole window on-chromosome.
    stop = min(end, lengths[chrom] - plen + 1)
    if stop <= start:
        return []
    seq = assembly.fetch(chrom, start, stop + plen - 1)
    pam_mask = mask_of(anatomy.pam)
    candidates: List[ProtospacerCandidate] = []
    for offset in range(stop - start):
        window = seq[offset:offset + plen]
        # Forward strand: PAM occupies the window's tail.
        if pattern_matches_at(pam_mask, window, glen):
            gc = _guide_gc(window[:glen], gc_min, gc_max,
                           max_homopolymer)
            if gc is not None:
                candidates.append(ProtospacerCandidate(
                    chrom=chrom, position=start + offset, strand="+",
                    protospacer=window[:glen].tobytes().decode("ascii"),
                    pam=window[glen:].tobytes().decode("ascii"),
                    gc_fraction=gc))
        # Reverse strand: the same window read as its reverse
        # complement, guide 5' side first.
        rc_window = reverse_complement(window)
        if pattern_matches_at(pam_mask, rc_window, glen):
            gc = _guide_gc(rc_window[:glen], gc_min, gc_max,
                           max_homopolymer)
            if gc is not None:
                candidates.append(ProtospacerCandidate(
                    chrom=chrom, position=start + offset, strand="-",
                    protospacer=rc_window[:glen].tobytes()
                    .decode("ascii"),
                    pam=rc_window[glen:].tobytes().decode("ascii"),
                    gc_fraction=gc))
    return candidates


def candidate_queries(candidates: Sequence[ProtospacerCandidate]
                      ) -> List[str]:
    """Unique query sequences, first-seen order.

    Distinct sites can carry the same protospacer (repeats); they are
    scored once and share the result, so the batch the serving stack
    runs is exactly one query per unique candidate guide.
    """
    seen = set()
    queries: List[str] = []
    for candidate in candidates:
        query = candidate.query_sequence
        if query not in seen:
            seen.add(query)
            queries.append(query)
    return queries


#: Wire row layout for one candidate (the ``enumerate`` op).
CANDIDATE_FIELDS = ("chrom", "position", "strand", "protospacer",
                    "pam", "gc_fraction")


def encode_candidates(candidates: Sequence[ProtospacerCandidate]
                      ) -> List[List[Any]]:
    return [[c.chrom, int(c.position), c.strand, c.protospacer, c.pam,
             float(c.gc_fraction)] for c in candidates]


def decode_candidates(rows: Sequence[Sequence[Any]]
                      ) -> List[ProtospacerCandidate]:
    candidates = []
    for row in rows:
        if not isinstance(row, (list, tuple)) or len(row) != 6:
            raise ValueError(
                f"bad candidate row {row!r}: expected "
                f"{list(CANDIDATE_FIELDS)}")
        chrom, position, strand, protospacer, pam, gc = row
        candidates.append(ProtospacerCandidate(
            chrom=str(chrom), position=int(position),
            strand=str(strand), protospacer=str(protospacer),
            pam=str(pam), gc_fraction=float(gc)))
    return candidates
