"""Command-line interface, modeled on the original ``cas-offinder``.

The original tool is invoked as ``cas-offinder <input> <device> <output>``
with an input file naming the genome directory, the PAM pattern and the
queries.  This CLI keeps that shape and adds reproduction-specific
options: the modeled device, the API front-end (the paper's before/after),
the comparer optimization variant, and synthetic-genome generation for
environments without genome data (``--synthetic hg19 --scale 0.001``).

Examples::

    cas-offinder-py input.txt --synthetic hg19 --scale 0.0005 -o out.txt
    cas-offinder-py input.txt --api opencl --device RVII -o out.txt
    cas-offinder-py --report tables --scale 0.001

The genome line of the input file may name a FASTA file or a directory
of FASTA files; it is ignored when ``--synthetic`` is given.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time
from typing import List, Optional

from .analysis.reporting import (render_fig2, render_stage_timings,
                                 render_table8, render_table9,
                                 render_table10, render_trace_summary)
from .core.config import ExecutionPolicy, SearchRequest
from .core.pipeline import DEFAULT_CHUNK_SIZE, search
from .core.records import write_hits
from .genome.assembly import Assembly, Chromosome
from .genome.fasta import iter_fasta
from .genome.synthetic import PROFILES, synthetic_assembly
from .observability import tracing
from .resilience import CHECKPOINT_ENV, CheckpointError

#: Work-group size used when ``--work-group-size`` is not given.
DEFAULT_WORK_GROUP_SIZE = 256


# ---------------------------------------------------------------------------
# argparse value types: reject zero/negative/NaN counts at the parser so
# a bad flag fails with a usage error naming the flag, not a traceback
# from deep inside the engine.
# ---------------------------------------------------------------------------

def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}") from None
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive finite number, got {text}")
    return value


def _nonnegative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}") from None
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative finite number, got {text}")
    return value


def _load_assembly(args: argparse.Namespace,
                   genome_path: Optional[str]) -> Assembly:
    if args.synthetic:
        return synthetic_assembly(args.synthetic, scale=args.scale,
                                  seed=args.seed,
                                  cache=False if args.no_genome_cache
                                  else None)
    path = args.genome or genome_path
    if not path:
        raise SystemExit("no genome: give --synthetic, --genome, or a "
                         "genome path in the input file")
    if os.path.isdir(path):
        chroms: List[Chromosome] = []
        for entry in sorted(os.listdir(path)):
            if entry.endswith((".fa", ".fasta", ".fa.gz", ".fasta.gz")):
                for record in iter_fasta(os.path.join(path, entry)):
                    chroms.append(Chromosome(record.name, record.sequence))
        if not chroms:
            raise SystemExit(f"no FASTA files found in {path!r}")
        return Assembly(path, chroms)
    if os.path.isfile(path):
        return Assembly.from_fasta(path, name=path)
    raise SystemExit(f"genome path {path!r} does not exist")


def _check_engine_flags(args: argparse.Namespace) -> None:
    """Reject engine-only flags that other paths would silently drop."""
    if args.engine == "bitparallel":
        offending = [flag for flag, given in (
            ("--streaming", args.streaming),
            ("--workers", args.workers != 1),
            ("--prefetch", args.prefetch is not None),
            ("--batch-comparer", args.batch_comparer),
            ("--work-group-size", args.work_group_size is not None),
            ("--fault-inject", args.fault_inject is not None),
            ("--max-retries", args.max_retries is not None),
            ("--chunk-deadline", args.chunk_deadline is not None),
            ("--checkpoint-dir", args.checkpoint_dir is not None),
            ("--resume", args.resume),
        ) if given]
        if offending:
            raise SystemExit(
                "error: --engine bitparallel runs its own serial chunk "
                "loop and does not support " + ", ".join(offending))
        return
    streaming = args.streaming or args.workers > 1
    if args.fault_inject is not None and not streaming:
        raise SystemExit(
            "error: --fault-inject targets the streaming engine; add "
            "--streaming (or --workers > 1)")
    if args.resume and args.checkpoint_dir is None \
            and not os.environ.get(CHECKPOINT_ENV):
        raise SystemExit(
            "error: --resume needs a checkpoint directory; pass "
            f"--checkpoint-dir or set {CHECKPOINT_ENV}")


def _run_search(args: argparse.Namespace) -> int:
    if not args.input:
        raise SystemExit("an input file is required (see --help)")
    _check_engine_flags(args)
    request = SearchRequest.from_input_file(args.input)
    assembly = _load_assembly(args, request.genome_path)
    execution = None
    streaming = args.streaming or args.workers > 1
    if streaming or args.batch_comparer or args.checkpoint_dir \
            or args.resume:
        policy_kw = {}
        if args.max_retries is not None:
            policy_kw["max_retries"] = args.max_retries
        if args.chunk_deadline is not None:
            policy_kw["chunk_deadline_s"] = args.chunk_deadline
        if args.fault_inject is not None:
            policy_kw["fault_plan"] = args.fault_inject
        if args.checkpoint_dir is not None:
            policy_kw["checkpoint_dir"] = args.checkpoint_dir
        if args.resume:
            policy_kw["resume"] = True
        try:
            execution = ExecutionPolicy(
                streaming=streaming,
                prefetch_depth=(2 if args.prefetch is None
                                else args.prefetch),
                workers=args.workers,
                batch_queries=args.batch_comparer, **policy_kw)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
    recorder = tracing.TraceRecorder() if args.trace else None
    started = time.perf_counter()
    with tracing.recording(recorder) if recorder else _null_context():
        if args.engine == "bitparallel":
            from .core.bitparallel import bitparallel_search
            result = bitparallel_search(assembly, request,
                                        device=args.device,
                                        chunk_size=args.chunk_size)
        else:
            work_group_size = (DEFAULT_WORK_GROUP_SIZE
                               if args.work_group_size is None
                               else args.work_group_size)
            try:
                result = search(assembly, request, api=args.api,
                                device=args.device, variant=args.variant,
                                chunk_size=args.chunk_size,
                                mode=args.mode,
                                work_group_size=work_group_size,
                                execution=execution)
            except CheckpointError as exc:
                raise SystemExit(f"error: {exc}") from None
    elapsed = time.perf_counter() - started
    hits = result.sorted_hits()
    if args.output and args.output != "-":
        write_hits(hits, args.output)
    else:
        write_hits(hits, sys.stdout)
    print(f"# {len(hits)} hits | {assembly.total_length} bases | "
          f"{result.workload.candidates} candidates | "
          f"api={args.api} device={args.device} variant={args.variant} | "
          f"{elapsed:.2f}s wall", file=sys.stderr)
    if result.workload.stages is not None and execution is not None:
        print(render_stage_timings(result.workload.stages),
              file=sys.stderr)
    if recorder is not None:
        recorder.save(args.trace)
        print(render_trace_summary(recorder.spans()), file=sys.stderr)
        print(f"# trace written to {args.trace}", file=sys.stderr)
    return 0


def _null_context():
    import contextlib
    return contextlib.nullcontext()


def _run_report(args: argparse.Namespace) -> int:
    """Regenerate the paper's tables with the device models."""
    from .analysis.productivity import table1_rows
    from .analysis.reporting import format_table
    from .core.config import example_request
    from .devices.codegen import analyze_comparer
    from .devices.occupancy import reported_occupancy
    from .devices.specs import MI60, PAPER_GPUS, TABLE7_HEADER, table7_rows
    from .devices.timing import model_elapsed
    from .kernels.variants import VARIANT_ORDER

    print(format_table(("Step", "OpenCL", "SYCL"),
                       table1_rows(), title="Table I"))
    print()
    print(format_table(TABLE7_HEADER, table7_rows(), title="Table VII"))
    print()
    request = example_request()
    profiles = {}
    for dataset in ("hg19", "hg38"):
        assembly = synthetic_assembly(dataset, scale=args.scale,
                                      seed=args.seed)
        run = search(assembly, request, chunk_size=args.chunk_size)
        profiles[dataset] = run.workload.scaled(1.0 / args.scale)
    t8 = {}
    t9 = {}
    fig2 = {}
    for dataset, workload in profiles.items():
        for name, spec in PAPER_GPUS.items():
            ocl = model_elapsed(spec, workload, "opencl")
            sycl = model_elapsed(spec, workload, "sycl")
            t8[(name, dataset)] = (ocl.elapsed_s, sycl.elapsed_s)
            series = [model_elapsed(spec, workload, "sycl", variant=v)
                      for v in VARIANT_ORDER]
            fig2[(name, dataset)] = [m.comparer_s for m in series]
            t9[(name, dataset)] = (series[0].elapsed_s,
                                   series[3].elapsed_s)
    print(render_table8(t8))
    print()
    print(render_table9(t9))
    print()
    rows10 = {}
    for variant in VARIANT_ORDER:
        usage = analyze_comparer(variant)
        rows10[variant] = (usage.code_bytes, usage.vgprs, usage.sgprs,
                           reported_occupancy(usage.vgprs, MI60))
    print(render_table10(rows10))
    print()
    print(render_fig2(fig2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cas-offinder-py",
        description="Cas-OFFinder reproduction: search for potential "
                    "off-target sites of Cas9 RNA-guided endonucleases")
    parser.add_argument("input", nargs="?",
                        help="input file (genome path, pattern, queries)")
    parser.add_argument("-o", "--output", default="-",
                        help="output file ('-' for stdout)")
    parser.add_argument("--api",
                        choices=("sycl", "sycl-usm", "opencl"),
                        default="sycl", help="runtime front-end "
                        "(sycl buffers, sycl USM pointers, or OpenCL)")
    parser.add_argument("--engine", choices=("listing1", "bitparallel"),
                        default="listing1",
                        help="comparer engine: the paper's kernel or "
                        "the 2-bit packed baseline")
    parser.add_argument("--device", default="MI100",
                        help="modeled device (RVII, MI60, MI100, CPU)")
    parser.add_argument("--variant", default="base",
                        choices=("base", "opt1", "opt2", "opt3", "opt4"),
                        help="comparer optimization level (SYCL only)")
    parser.add_argument("--mode", choices=("vectorized", "interpreted"),
                        default="vectorized",
                        help="kernel execution mode")
    parser.add_argument("--chunk-size", type=_positive_int,
                        default=DEFAULT_CHUNK_SIZE,
                        help="device chunk size in bases")
    parser.add_argument("--streaming", action="store_true",
                        help="run the streaming chunk engine (prefetch "
                             "next chunk while kernels run)")
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="parallel chunk workers for the streaming "
                             "engine (implies --streaming when > 1)")
    parser.add_argument("--prefetch", type=_positive_int, default=None,
                        help="chunks staged ahead by the streaming "
                             "engine's producer (default 2)")
    parser.add_argument("--work-group-size", type=_positive_int,
                        default=None,
                        help="kernel work-group size for the SYCL "
                             "pipelines (default 256)")
    parser.add_argument("--max-retries", type=_nonnegative_int,
                        default=None,
                        help="per-chunk retries after a processing "
                             "failure in the streaming engine "
                             "(default 1)")
    parser.add_argument("--chunk-deadline", type=_positive_float,
                        default=None,
                        help="per-chunk wall-clock deadline in seconds; "
                             "overruns are retried on a fresh pipeline")
    parser.add_argument("--fault-inject", default=None, metavar="PLAN",
                        help="deterministic fault plan for the streaming "
                             "engine, e.g. 'raise@0,stall@2:0.4' "
                             "(also via REPRO_FAULT_INJECT)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="journal completed chunks to DIR so an "
                             "interrupted run can be resumed (also via "
                             "REPRO_CHECKPOINT_DIR)")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the checkpoint directory: skip "
                             "journaled chunks and replay their outputs "
                             "(refuses on a manifest mismatch)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a runtime trace and write it as "
                             "Chrome-trace JSON (chrome://tracing, "
                             "Perfetto)")
    parser.add_argument("--batch-comparer", dest="batch_comparer",
                        action="store_true", default=False,
                        help="fuse per-query comparer launches into one "
                             "batched launch per chunk")
    parser.add_argument("--no-batch-comparer", dest="batch_comparer",
                        action="store_false",
                        help="keep one comparer launch per query")
    parser.add_argument("--genome",
                        help="FASTA file or directory (overrides the "
                             "input file's genome line)")
    parser.add_argument("--synthetic", choices=sorted(PROFILES),
                        help="use a synthetic assembly instead of files")
    parser.add_argument("--scale", type=float, default=0.001,
                        help="synthetic assembly scale factor")
    parser.add_argument("--seed", type=int, default=42,
                        help="synthetic assembly seed")
    parser.add_argument("--no-genome-cache", action="store_true",
                        help="regenerate synthetic assemblies instead of "
                             "using the on-disk cache")
    parser.add_argument("--report", choices=("tables",),
                        help="regenerate the paper's tables and exit")
    return parser


# ---------------------------------------------------------------------------
# Service subcommands: `serve` and `query`.  Dispatched by peeking at the
# first argument so the classic flat invocation (positional input file)
# keeps working unchanged.
# ---------------------------------------------------------------------------

def _add_genome_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--genome",
                        help="FASTA file or directory to index")
    parser.add_argument("--synthetic", choices=sorted(PROFILES),
                        help="use a synthetic assembly instead of files")
    parser.add_argument("--scale", type=_positive_float, default=0.001,
                        help="synthetic assembly scale factor")
    parser.add_argument("--seed", type=int, default=42,
                        help="synthetic assembly seed")
    parser.add_argument("--no-genome-cache", action="store_true",
                        help="regenerate synthetic assemblies instead of "
                             "using the on-disk cache")


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cas-offinder-py serve",
        description="Serve off-target queries over a resident genome "
                    "site index (JSON-lines over TCP).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=_nonnegative_int, default=0,
                        help="TCP port (0 picks an ephemeral port; see "
                             "--ready-file)")
    parser.add_argument("--index-dir", default=None, metavar="DIR",
                        help="load a saved index from DIR if present, "
                             "else build one and save it there")
    parser.add_argument("--pattern", default=None,
                        help="PAM-bearing pattern to index (required "
                             "unless a saved index is loaded)")
    _add_genome_flags(parser)
    parser.add_argument("--api",
                        choices=("sycl", "sycl-usm", "opencl"),
                        default="sycl")
    parser.add_argument("--device", default="MI100")
    parser.add_argument("--chunk-size", type=_positive_int,
                        default=DEFAULT_CHUNK_SIZE,
                        help="index chunk size in bases")
    parser.add_argument("--max-batch", type=_positive_int, default=8,
                        help="flush a micro-batch at this many queries")
    parser.add_argument("--max-wait-ms", type=_nonnegative_float,
                        default=5.0,
                        help="flush a micro-batch after this long even "
                             "if it is not full")
    parser.add_argument("--max-queue", type=_positive_int, default=64,
                        help="admission-control queue bound; beyond it "
                             "requests are rejected as overloaded")
    parser.add_argument("--shards", type=_positive_int, default=1,
                        help="comparer worker processes; >1 partitions "
                             "the index into shared-memory shards with "
                             "one process each (responses stay "
                             "byte-identical)")
    parser.add_argument("--ring-records", type=_nonnegative_int,
                        default=None,
                        help="per-shard result-ring capacity in "
                             "records (default 65536; 0 disables the "
                             "rings and every batch takes the pickled "
                             "fallback path)")
    parser.add_argument("--auto-degrade", action="store_true",
                        help="with --shards >1: serve in-process when "
                             "the host cannot win the scatter/gather "
                             "hop (single cpu)")
    parser.add_argument("--adaptive", action="store_true",
                        help="let the scheduler retune max_batch from "
                             "queue depth and latency tails, and "
                             "route sub-scatter batches to the "
                             "in-process comparer")
    parser.add_argument("--packed", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="keep candidate windows in the resident "
                             "2-bit packed form and run the "
                             "bit-parallel comparer (--no-packed "
                             "forces the byte comparer; responses are "
                             "byte-identical either way)")
    parser.add_argument("--max-retries", type=_nonnegative_int,
                        default=2,
                        help="per-chunk retries during the index build")
    parser.add_argument("--fault-inject", default=None, metavar="PLAN",
                        help="deterministic fault plan exercised during "
                             "the index build")
    parser.add_argument("--duration-s", type=_positive_float,
                        default=None,
                        help="serve for this long then exit (smoke "
                             "tests); default: until interrupted")
    parser.add_argument("--ready-file", default=None, metavar="PATH",
                        help="write 'host port' to PATH once listening "
                             "(how callers learn an ephemeral port)")
    parser.add_argument("--chromosomes", default=None, metavar="NAMES",
                        help="comma-separated chromosome subset to "
                             "index and serve (a routed backend's "
                             "partition; hits are identical to the "
                             "full assembly's for these chromosomes)")
    parser.add_argument("--drain-s", type=_nonnegative_float,
                        default=5.0,
                        help="graceful-shutdown budget: on SIGTERM, "
                             "finish in-flight requests for up to "
                             "this long before exiting")
    parser.add_argument("--request-fault-inject", default=None,
                        metavar="PLAN",
                        help="request-level fault plan (indices are "
                             "query ordinals), e.g. 'stall@3:0.5' or "
                             "'disconnect@5'; crash@N kills the "
                             "process — for router fault drills")
    parser.add_argument("--enzyme-config", action="append", default=[],
                        dest="enzyme_configs", metavar="PATH",
                        help="declarative Cas enzyme config (TOML or "
                             "JSON, repeatable); each enzyme gets its "
                             "own resident index over the same genome "
                             "and is selected per request via the "
                             "'enzyme' field")
    return parser


def _serve_assembly(args: argparse.Namespace) -> Assembly:
    """The assembly to serve: loaded, then optionally subset."""
    assembly = _load_assembly(args, args.genome)
    if args.chromosomes:
        names = [c.strip() for c in args.chromosomes.split(",")
                 if c.strip()]
        if not names:
            raise SystemExit(
                "error: --chromosomes needs at least one name")
        try:
            assembly = assembly.subset(names)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
    return assembly


def _run_serve(argv: List[str]) -> int:
    from .service import (GenomeSiteIndex, OffTargetServer,
                          SiteIndexError, SiteIndexVersionError)
    from .service.index import INDEX_MANIFEST_NAME

    args = build_serve_parser().parse_args(argv)
    if args.ready_file and os.path.exists(args.ready_file):
        # A leftover ready file means a supervisor could read a dead
        # server's port announcement and race us; refuse instead.
        raise SystemExit(
            f"error: ready file {args.ready_file!r} already exists "
            f"(a previous server may still be running, or it exited "
            f"uncleanly); remove it to proceed")
    index = None
    manifest_path = (os.path.join(args.index_dir, INDEX_MANIFEST_NAME)
                     if args.index_dir else None)
    if manifest_path and os.path.exists(manifest_path):
        assembly = _serve_assembly(args)
        try:
            index = GenomeSiteIndex.load(args.index_dir, assembly,
                                         api=args.api,
                                         device=args.device,
                                         packed=args.packed)
        except SiteIndexVersionError as exc:
            # The genome is right, only the on-disk layout is old:
            # rebuild (and overwrite) instead of refusing to start.
            print(f"# stale index format: {exc}; rebuilding",
                  file=sys.stderr)
        except SiteIndexError as exc:
            raise SystemExit(f"error: {exc}") from None
        else:
            print(f"# loaded index from {args.index_dir}: "
                  f"{index.chunk_count} chunks, "
                  f"{index.site_count} sites", file=sys.stderr)
    if index is None:
        if not args.pattern:
            raise SystemExit(
                "error: --pattern is required when no saved index is "
                "available to load")
        assembly = _serve_assembly(args)
        try:
            index = GenomeSiteIndex.build(
                assembly, args.pattern, chunk_size=args.chunk_size,
                api=args.api, device=args.device,
                fault_plan=args.fault_inject,
                max_retries=args.max_retries, packed=args.packed)
        except (SiteIndexError, ValueError) as exc:
            raise SystemExit(f"error: {exc}") from None
        print(f"# built index: {index.chunk_count} chunks, "
              f"{index.site_count} sites in {index.build_wall_s:.2f}s",
              file=sys.stderr)
        if args.index_dir:
            index.save(args.index_dir)
            print(f"# index saved to {args.index_dir}",
                  file=sys.stderr)
    mode = "packed" if getattr(index, "packed", False) else "byte"
    reason = getattr(index, "packed_disabled_reason", None)
    print(f"# comparer mode: {mode}"
          + (f" (degraded: {reason})" if reason else ""),
          file=sys.stderr)
    serving = index
    if args.shards > 1:
        from .service.shards import (DEFAULT_RING_RECORDS,
                                     ShardedSiteIndex)
        serving = ShardedSiteIndex(
            index, shards=args.shards,
            ring_records=(DEFAULT_RING_RECORDS
                          if args.ring_records is None
                          else args.ring_records),
            auto_degrade=args.auto_degrade)
        if serving.degraded:
            print(f"# sharded serving degraded: "
                  f"{serving.degrade_reason}", file=sys.stderr)
        else:
            print(f"# sharded serving: {args.shards} worker "
                  f"processes, {serving.ring_records} ring records "
                  f"per shard", file=sys.stderr)
    enzymes = []
    if args.enzyme_configs:
        from .enzymes import EnzymeError, load_enzymes
        seen = set()
        for config_path in args.enzyme_configs:
            try:
                loaded = load_enzymes(config_path)
            except EnzymeError as exc:
                raise SystemExit(f"error: {exc}") from None
            for enzyme in loaded:
                if enzyme.name in seen:
                    raise SystemExit(
                        f"error: enzyme {enzyme.name!r} appears in "
                        f"more than one --enzyme-config")
                seen.add(enzyme.name)
                try:
                    enzyme_index = GenomeSiteIndex.build(
                        assembly, enzyme.pattern,
                        chunk_size=args.chunk_size, api=args.api,
                        device=args.device, packed=args.packed)
                except (SiteIndexError, ValueError) as exc:
                    raise SystemExit(
                        f"error: enzyme {enzyme.name!r}: "
                        f"{exc}") from None
                print(f"# enzyme {enzyme.name}: "
                      f"pattern={enzyme.pattern} "
                      f"{enzyme_index.site_count} sites",
                      file=sys.stderr)
                enzymes.append((enzyme, enzyme_index))
    import signal
    import threading
    if threading.current_thread() is threading.main_thread():
        # A supervisor's SIGTERM must still remove the ready file and
        # unlink shared-memory shards; Python's default handler would
        # kill the process without running any finally block.  Once
        # the event loop runs, the server's own SIGTERM handler takes
        # over and drains gracefully first.
        signal.signal(signal.SIGTERM,
                      lambda signum, frame: sys.exit(0))
    reloader = _make_reloader(args, assembly, index.pattern,
                              manifest_path)
    try:
        server = OffTargetServer(
            serving, host=args.host, port=args.port,
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            max_queue=args.max_queue, adaptive=args.adaptive,
            direct_below=2 if args.adaptive else 0,
            reloader=reloader,
            request_fault_plan=args.request_fault_inject,
            drain_s=args.drain_s,
            enzymes=enzymes or None)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(f"# serving {index.assembly.name} pattern={index.pattern} "
          f"on {args.host} (max_batch={args.max_batch}, "
          f"max_wait_ms={args.max_wait_ms:g})", file=sys.stderr)
    try:
        server.run(duration_s=args.duration_s,
                   ready_file=args.ready_file)
    finally:
        if serving is not index:
            serving.close()
    return 0


def _make_reloader(args: argparse.Namespace, assembly: Assembly,
                   pattern: str, manifest_path: Optional[str]):
    """The ``reload`` op's index factory for this serve invocation.

    Prefers re-loading from ``--index-dir`` (so an external builder can
    drop a fresh fingerprinted index there and the rollover picks it
    up); falls back to rebuilding from the serve arguments.  Build
    fault plans deliberately do not re-fire on reload.
    """
    def reloader():
        from .service import GenomeSiteIndex, SiteIndexError
        index = None
        if manifest_path and os.path.exists(manifest_path):
            try:
                index = GenomeSiteIndex.load(
                    args.index_dir, assembly, api=args.api,
                    device=args.device, packed=args.packed)
            except SiteIndexError:
                index = None  # stale/corrupt on disk: rebuild
        if index is None:
            index = GenomeSiteIndex.build(
                assembly, pattern, chunk_size=args.chunk_size,
                api=args.api, device=args.device,
                max_retries=args.max_retries, packed=args.packed)
        if args.shards > 1:
            from .service.shards import (DEFAULT_RING_RECORDS,
                                         ShardedSiteIndex)
            index = ShardedSiteIndex(
                index, shards=args.shards,
                ring_records=(DEFAULT_RING_RECORDS
                              if args.ring_records is None
                              else args.ring_records),
                auto_degrade=args.auto_degrade)
        return index

    return reloader


def build_route_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cas-offinder-py route",
        description="Route off-target queries across a fleet of "
                    "backend index servers partitioned by chromosome; "
                    "responses are byte-identical to a single server "
                    "over the whole genome.")
    parser.add_argument("--backend", action="append", required=True,
                        dest="backends", metavar="HOST:PORT",
                        help="a backend index server (repeatable)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=_nonnegative_int, default=0,
                        help="TCP port (0 picks an ephemeral port; see "
                             "--ready-file)")
    parser.add_argument("--chromosome-order", default=None,
                        metavar="NAMES",
                        help="comma-separated global merge order; "
                             "defaults to discovery order, which is "
                             "only safe without replication")
    parser.add_argument("--probe-interval", type=_positive_float,
                        default=0.5,
                        help="seconds between backend health probes")
    parser.add_argument("--eject-after", type=_positive_int, default=2,
                        help="consecutive probe/request failures "
                             "before a backend is ejected")
    parser.add_argument("--hedge-ms", type=_nonnegative_float,
                        default=None,
                        help="fixed hedge delay in milliseconds "
                             "(0 disables hedging; default derives "
                             "the delay from the sub-request p95)")
    parser.add_argument("--max-attempts", type=_positive_int,
                        default=3,
                        help="attempts per partition across replicas "
                             "(connection loss and overload retry; "
                             "deadline errors never do)")
    parser.add_argument("--duration-s", type=_positive_float,
                        default=None,
                        help="route for this long then exit (smoke "
                             "tests); default: until interrupted")
    parser.add_argument("--ready-file", default=None, metavar="PATH",
                        help="write 'host port' to PATH once listening")
    return parser


def _run_route(argv: List[str]) -> int:
    from .service.router import OffTargetRouter

    args = build_route_parser().parse_args(argv)
    if args.ready_file and os.path.exists(args.ready_file):
        raise SystemExit(
            f"error: ready file {args.ready_file!r} already exists "
            f"(a previous router may still be running, or it exited "
            f"uncleanly); remove it to proceed")
    order = None
    if args.chromosome_order:
        order = [c.strip() for c in args.chromosome_order.split(",")
                 if c.strip()]
    try:
        router = OffTargetRouter(
            args.backends, host=args.host, port=args.port,
            chromosome_order=order,
            probe_interval_s=args.probe_interval,
            eject_after=args.eject_after, hedge_ms=args.hedge_ms,
            max_attempts=args.max_attempts)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(f"# routing over {len(args.backends)} backend(s): "
          f"{', '.join(args.backends)}", file=sys.stderr)
    router.run(duration_s=args.duration_s,
               ready_file=args.ready_file)
    return 0


def build_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cas-offinder-py query",
        description="Query a running off-target service; output is "
                    "byte-identical to an offline search.")
    parser.add_argument("queries", nargs="+", metavar="SEQ:MM",
                        help="query spec(s): sequence, colon, max "
                             "mismatches (e.g. GACGTCNN:3)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=_positive_int, required=True)
    parser.add_argument("-o", "--output", default="-",
                        help="output file ('-' for stdout)")
    parser.add_argument("--deadline", type=_positive_float,
                        default=None,
                        help="per-request deadline in seconds")
    parser.add_argument("--timeout", type=_positive_float, default=30.0,
                        help="socket timeout in seconds")
    return parser


def _run_query(argv: List[str]) -> int:
    from .core.config import Query
    from .core.records import sort_hits
    from .service import ServiceClient, ServiceError

    args = build_query_parser().parse_args(argv)
    queries = []
    for spec in args.queries:
        seq, sep, mm = spec.rpartition(":")
        if not sep or not seq:
            raise SystemExit(f"error: bad query spec {spec!r}; "
                             f"expected SEQ:MM (e.g. GACGTCNN:3)")
        try:
            queries.append(Query(seq.upper(), int(mm)))
        except ValueError as exc:
            raise SystemExit(
                f"error: bad query spec {spec!r}: {exc}") from None
    try:
        with ServiceClient(args.host, args.port,
                           timeout_s=args.timeout) as client:
            per_query = client.query(queries,
                                     deadline_s=args.deadline)
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}") from None
    except OSError as exc:
        raise SystemExit(f"error: cannot reach service at "
                         f"{args.host}:{args.port}: {exc}") from None
    hits = sort_hits([hit for per in per_query for hit in per])
    if args.output and args.output != "-":
        write_hits(hits, args.output)
    else:
        write_hits(hits, sys.stdout)
    print(f"# {len(hits)} hits | {len(queries)} queries | "
          f"service {args.host}:{args.port}", file=sys.stderr)
    return 0


def build_design_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cas-offinder-py design",
        description="Rank candidate guides for a target region by "
                    "genome-wide off-target specificity.  With --port "
                    "the request goes to a running service (server or "
                    "router); otherwise an index is built locally from "
                    "--pattern and a genome source.")
    parser.add_argument("region", metavar="CHROM:START-END",
                        help="target region, e.g. chr1:15000-16000 "
                             "(0-based half-open)")
    parser.add_argument("--mismatches", type=_nonnegative_int,
                        required=True,
                        help="off-target search depth per candidate")
    parser.add_argument("--top", type=_positive_int, default=5,
                        help="number of ranked guides to report")
    parser.add_argument("--estimator", choices=("mit", "cfd"),
                        default="mit",
                        help="specificity estimator for ranking")
    parser.add_argument("--guide-length", type=_positive_int,
                        default=None,
                        help="protospacer length when the pattern's "
                             "leading N-run is ambiguous (e.g. a PAM "
                             "that itself starts with N)")
    parser.add_argument("--gc-min", type=_nonnegative_float,
                        default=None,
                        help="minimum candidate GC fraction "
                             "(default 0.2)")
    parser.add_argument("--gc-max", type=_nonnegative_float,
                        default=None,
                        help="maximum candidate GC fraction "
                             "(default 0.8)")
    parser.add_argument("--max-homopolymer", type=_positive_int,
                        default=None,
                        help="longest allowed single-base run in a "
                             "candidate (default 4)")
    parser.add_argument("-o", "--output", default="-",
                        help="output file ('-' for stdout)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=_positive_int, default=None,
                        help="query a running service instead of "
                             "building an index locally")
    parser.add_argument("--deadline", type=_positive_float,
                        default=None,
                        help="per-request deadline in seconds "
                             "(service mode)")
    parser.add_argument("--timeout", type=_positive_float, default=60.0,
                        help="socket timeout in seconds (service mode)")
    parser.add_argument("--pattern", default=None,
                        help="PAM-bearing pattern (local mode)")
    _add_genome_flags(parser)
    parser.add_argument("--chunk-size", type=_positive_int,
                        default=DEFAULT_CHUNK_SIZE,
                        help="index chunk size in bases (local mode)")
    return parser


def _parse_region(text: str):
    chrom, sep, span = text.rpartition(":")
    start, dash, end = span.partition("-")
    if not sep or not chrom or not dash:
        raise SystemExit(f"error: bad region {text!r}; expected "
                         f"CHROM:START-END (e.g. chr1:15000-16000)")
    try:
        lo, hi = int(start), int(end)
    except ValueError:
        raise SystemExit(f"error: bad region {text!r}: bounds must "
                         f"be integers") from None
    if lo < 0 or hi <= lo:
        raise SystemExit(f"error: bad region {text!r}: need "
                         f"0 <= start < end")
    return chrom, lo, hi


def _run_design(argv: List[str]) -> int:
    from .design import GuideDesignReport, design_guides

    args = build_design_parser().parse_args(argv)
    chrom, start, end = _parse_region(args.region)
    filters = {}
    if args.gc_min is not None:
        filters["gc_min"] = args.gc_min
    if args.gc_max is not None:
        filters["gc_max"] = args.gc_max
    if args.max_homopolymer is not None:
        filters["max_homopolymer"] = args.max_homopolymer
    if args.port is not None:
        from .service import ServiceClient, ServiceError
        try:
            with ServiceClient(args.host, args.port,
                               timeout_s=args.timeout) as client:
                response = client.design(
                    chrom, start, end, args.mismatches, top=args.top,
                    estimator=args.estimator,
                    guide_length=args.guide_length,
                    deadline_s=args.deadline, **filters)
        except ServiceError as exc:
            raise SystemExit(f"error: {exc}") from None
        except OSError as exc:
            raise SystemExit(f"error: cannot reach service at "
                             f"{args.host}:{args.port}: {exc}") from None
        reports = response["reports"]
        candidates = response["candidates"]
    else:
        from .service import GenomeSiteIndex, SiteIndexError
        if not args.pattern:
            raise SystemExit("error: --pattern is required without "
                             "--port (local mode builds an index)")
        assembly = _load_assembly(args, args.genome)
        try:
            index = GenomeSiteIndex.build(assembly, args.pattern,
                                          chunk_size=args.chunk_size)
            result = design_guides(
                index, chrom, start, end, args.mismatches,
                top_n=args.top, estimator=args.estimator,
                guide_length=args.guide_length, **filters)
        except (SiteIndexError, ValueError) as exc:
            raise SystemExit(f"error: {exc}") from None
        reports = result.reports
        candidates = len(result.candidates)
    lines = ["\t".join(GuideDesignReport.header())]
    lines.extend(report.tsv_row() for report in reports)
    text = "\n".join(lines) + "\n"
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="ascii") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    print(f"# {len(reports)} guides ranked from {candidates} "
          f"candidates | {chrom}:{start}-{end} mm={args.mismatches} "
          f"estimator={args.estimator}", file=sys.stderr)
    return 0


def build_variants_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cas-offinder-py variants",
        description="Per-haplotype gained/lost off-target sites: "
                    "apply VCF-like variant sets as diff layers over "
                    "the genome and report which sites each haplotype "
                    "gains or loses relative to the reference.  With "
                    "--port the request goes to a running service "
                    "(server or router); otherwise an index is built "
                    "locally from --pattern and a genome source.")
    parser.add_argument("queries", nargs="+", metavar="SEQ:MM",
                        help="query spec(s): sequence, colon, max "
                             "mismatches (e.g. GACGTCNN:3)")
    parser.add_argument("--haplotypes", default=None, metavar="FILE",
                        help="JSON file with {\"haplotypes\": "
                             "[{\"name\": ..., \"variants\": "
                             "[[chrom, pos, ref, alt], ...]}, ...]}")
    parser.add_argument("--variant", action="append", default=[],
                        dest="variants", metavar="CHROM:POS:REF>ALT",
                        help="one variant (repeatable); together they "
                             "form a single haplotype named by "
                             "--hap-name")
    parser.add_argument("--hap-name", default="edited",
                        help="haplotype name for --variant specs")
    parser.add_argument("--chromosomes", default=None, metavar="NAMES",
                        help="comma-separated chromosome filter")
    parser.add_argument("--enzyme", default=None,
                        help="named enzyme to search with (service "
                             "mode; the server must host it via "
                             "--enzyme-config)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full response payload as JSON "
                             "instead of an event TSV")
    parser.add_argument("-o", "--output", default="-",
                        help="output file ('-' for stdout)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=_positive_int, default=None,
                        help="query a running service instead of "
                             "building an index locally")
    parser.add_argument("--timeout", type=_positive_float, default=60.0,
                        help="socket timeout in seconds (service mode)")
    parser.add_argument("--pattern", default=None,
                        help="PAM-bearing pattern (local mode)")
    _add_genome_flags(parser)
    parser.add_argument("--chunk-size", type=_positive_int,
                        default=DEFAULT_CHUNK_SIZE,
                        help="index chunk size in bases (local mode)")
    return parser


def _parse_variant_spec(text: str) -> List:
    """``CHROM:POS:REF>ALT`` -> the wire row ``[chrom, pos, ref, alt]``."""
    head, sep, change = text.rpartition(":")
    ref, arrow, alt = change.partition(">")
    if not sep or not arrow:
        raise SystemExit(f"error: bad variant spec {text!r}; expected "
                         f"CHROM:POS:REF>ALT (e.g. chr1:1234:A>G)")
    chrom, sep2, pos_text = head.rpartition(":")
    if not sep2 or not chrom:
        raise SystemExit(f"error: bad variant spec {text!r}; expected "
                         f"CHROM:POS:REF>ALT (e.g. chr1:1234:A>G)")
    try:
        position = int(pos_text)
    except ValueError:
        raise SystemExit(f"error: bad variant spec {text!r}: position "
                         f"must be an integer") from None
    return [chrom, position, ref.upper(), alt.upper()]


def _run_variants(argv: List[str]) -> int:
    import json as _json

    from .core.config import Query
    from .variants import VariantError, decode_haplotypes

    args = build_variants_parser().parse_args(argv)
    queries = []
    for spec in args.queries:
        seq, sep, mm = spec.rpartition(":")
        if not sep or not seq:
            raise SystemExit(f"error: bad query spec {spec!r}; "
                             f"expected SEQ:MM (e.g. GACGTCNN:3)")
        try:
            queries.append(Query(seq.upper(), int(mm)))
        except ValueError as exc:
            raise SystemExit(
                f"error: bad query spec {spec!r}: {exc}") from None
    if args.haplotypes and args.variants:
        raise SystemExit("error: give either --haplotypes FILE or "
                         "--variant specs, not both")
    if args.haplotypes:
        try:
            with open(args.haplotypes, encoding="utf-8") as handle:
                data = _json.load(handle)
        except (OSError, _json.JSONDecodeError) as exc:
            raise SystemExit(f"error: cannot read haplotypes file "
                             f"{args.haplotypes!r}: {exc}") from None
        raw = data.get("haplotypes") if isinstance(data, dict) else data
    elif args.variants:
        raw = [{"name": args.hap_name,
                "variants": [_parse_variant_spec(spec)
                             for spec in args.variants]}]
    else:
        raise SystemExit("error: no variants: give --haplotypes FILE "
                         "or one or more --variant specs")
    try:
        haplotypes = decode_haplotypes(raw)
    except (VariantError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None
    chromosomes = None
    if args.chromosomes:
        chromosomes = [c.strip() for c in args.chromosomes.split(",")
                       if c.strip()]
        if not chromosomes:
            raise SystemExit(
                "error: --chromosomes needs at least one name")
    if args.port is not None:
        from .service import ServiceClient, ServiceError
        try:
            with ServiceClient(args.host, args.port,
                               timeout_s=args.timeout) as client:
                payload = client.variant_search(
                    queries, haplotypes, chromosomes=chromosomes,
                    enzyme=args.enzyme)
        except ServiceError as exc:
            raise SystemExit(f"error: {exc}") from None
        except OSError as exc:
            raise SystemExit(f"error: cannot reach service at "
                             f"{args.host}:{args.port}: {exc}") from None
        payload.pop("id", None)
        payload.pop("ok", None)
    else:
        if args.enzyme:
            raise SystemExit("error: --enzyme needs a running service "
                             "(--port); local mode searches --pattern")
        if not args.pattern:
            raise SystemExit("error: --pattern is required without "
                             "--port (local mode builds an index)")
        from .service import GenomeSiteIndex, SiteIndexError
        from .variants import search_variants
        assembly = _load_assembly(args, args.genome)
        try:
            index = GenomeSiteIndex.build(assembly, args.pattern,
                                          chunk_size=args.chunk_size)
            result = search_variants(
                index, queries, haplotypes,
                chromosomes=(frozenset(chromosomes)
                             if chromosomes else None))
        except (SiteIndexError, VariantError, ValueError) as exc:
            raise SystemExit(f"error: {exc}") from None
        payload = result.payload()
    if args.json:
        text = _json.dumps(payload, indent=2) + "\n"
    else:
        lines = ["\t".join(payload["event_fields"])]
        lines.extend("\t".join(str(value) for value in row)
                     for row in payload["events"])
        text = "\n".join(lines) + "\n"
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="ascii") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    gained = sum(row["gained"] for row in payload["summary"])
    lost = sum(row["lost"] for row in payload["summary"])
    print(f"# {len(payload['events'])} events ({gained} gained, "
          f"{lost} lost) | {len(payload['haplotypes'])} haplotype(s) | "
          f"{payload['patched_chunks']} patched / "
          f"{payload['reference_chunks']} reference chunks",
          file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])
    if argv and argv[0] == "route":
        return _run_route(argv[1:])
    if argv and argv[0] == "query":
        return _run_query(argv[1:])
    if argv and argv[0] == "design":
        return _run_design(argv[1:])
    if argv and argv[0] == "variants":
        return _run_variants(argv[1:])
    args = build_parser().parse_args(argv)
    if args.report:
        return _run_report(args)
    return _run_search(args)


if __name__ == "__main__":
    sys.exit(main())
