"""Asyncio JSON-lines TCP front end over the batch scheduler.

Stdlib only: one :func:`asyncio.start_server` accept loop, one JSON
object per line in each direction.  Requests carry an ``op`` —

* ``query``: ``{"op": "query", "queries": [["GACGTCNN", 3], ...],
  "deadline_s": 0.5}`` → per-query hit lists; an optional
  ``"chromosomes": [...]`` list restricts hits to those chromosomes
  (order-preserving — the routing tier uses this so replicated
  backends can each serve a disjoint partition of a request);
* ``design``: ``{"op": "design", "chrom": "chrA", "start": 0,
  "end": 2000, "mismatches": 3, "top": 5, "estimator": "mit"}`` →
  ranked guide-design reports for the region; every enumerated
  candidate rides one scheduler submission (one batched comparer
  pass — see :mod:`repro.design`);
* ``enumerate``: the design op's first stage alone — candidate
  protospacers and their query sequences for a region (the routing
  tier uses this to enumerate on a backend that holds the target
  chromosome);
* ``variant``: guide × {reference + K haplotypes} — per-haplotype
  gained/lost off-targets with causal-variant provenance (see
  :mod:`repro.variants`): only variant-touched chunks are re-scanned,
  and the patches ride the resident chunks through one batched
  comparer pass;
* ``enzymes``: the declarative Cas enzyme registry this server hosts;
  ``query``/``design``/``enumerate``/``variant`` take an optional
  ``"enzyme": name`` field to run against that enzyme's own resident
  index instead of the default;
* ``stats``: scheduler counters, queue depth, batch-size histogram and
  latency percentiles (see :meth:`BatchScheduler.stats`);
* ``health``: liveness plus index identity (genome, pattern, sites,
  chromosome list, manifest fingerprint);
* ``reload``: zero-downtime index rollover — a configured ``reloader``
  callable builds/loads a fresh index off-loop, optional canary
  queries warm it, then :meth:`BatchScheduler.swap_index` swaps it in
  between batches and the old index is drained and released.  Any
  failure (reloader error, pattern mismatch, canary failure) leaves
  the old index serving untouched.

Responses echo the request's ``id`` (if any) and carry ``ok``; failures
carry a machine-readable ``error`` code (``bad-json``, ``bad-request``,
``unknown-op``, ``overloaded``, ``deadline``, ``closed``, ``internal``,
``no-reloader``, ``reload-failed``) so clients can distinguish
back-off-and-retry from bugs.

The accept loop never blocks on the comparer: each connection awaits
its scheduler future via :func:`asyncio.wrap_future`, so slow batches
only delay their own requesters while other connections keep being
served.  :meth:`OffTargetServer.start_background` runs the whole server
in a daemon thread with its own event loop — the shape the tests and
the load generator use.

Two robustness hooks serve the routing tier:

* ``request_fault_plan`` applies :mod:`repro.observability.faults`
  plans at the *request* level (index = per-server query ordinal):
  ``stall`` sleeps on the event loop (a slow backend), ``disconnect``
  drops the connection without responding (half-open), ``crash``
  terminates the process (a dead backend).
* SIGTERM (or :meth:`ServerHandle.drain`) triggers a graceful drain:
  stop accepting, finish requests already admitted within the
  ``drain_s`` budget, remove the ready file, exit 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
from dataclasses import dataclass
from typing import (Any, Callable, Dict, FrozenSet, List, Optional,
                    Sequence, Tuple)

from ..core.config import Query
from ..core.records import OffTargetHit
from ..design.ranking import (decode_design_spec, design_payload,
                              enumerate_for_design, enumerate_payload,
                              rank_candidates, scoring_guide_length)
from ..design.estimators import get_estimator
from ..enzymes import CasEnzyme
from ..observability import faults, tracing
from ..variants.model import VariantError, decode_haplotypes
from ..variants.overlay import search_variants
from .index import GenomeSiteIndex
from .scheduler import (BatchScheduler, DeadlineExceeded,
                        SchedulerClosed, ServiceOverloaded)

#: Refuse absurd single lines before json.loads sees them.
MAX_LINE_BYTES = 1 << 20

#: Sentinel returned by the fault applier when the connection should
#: be dropped without a response (a half-open connection).
_DROP_CONNECTION: Dict[str, Any] = {"_drop": True}


def _encode_hits(hits: List[OffTargetHit]) -> List[List[Any]]:
    return [[h.query, h.chrom, int(h.position), h.site, h.strand,
             int(h.mismatches)] for h in hits]


def _decode_queries(raw: Any) -> List[Query]:
    if not isinstance(raw, list) or not raw:
        raise ValueError("'queries' must be a non-empty list of "
                         "[sequence, max_mismatches] pairs")
    queries = []
    for item in raw:
        if (not isinstance(item, (list, tuple)) or len(item) != 2
                or not isinstance(item[0], str)
                or isinstance(item[1], bool)
                or not isinstance(item[1], int)):
            raise ValueError(
                f"bad query entry {item!r}: expected "
                f"[sequence, max_mismatches]")
        if item[1] < 0:
            raise ValueError(
                f"max_mismatches must be >= 0, got {item[1]}")
        queries.append(Query(sequence=item[0].upper(),
                             max_mismatches=item[1]))
    return queries


def _decode_chromosomes(raw: Any) -> Optional[FrozenSet[str]]:
    """Validate an optional per-request chromosome filter."""
    if raw is None:
        return None
    if (not isinstance(raw, list) or not raw
            or not all(isinstance(c, str) for c in raw)):
        raise ValueError("'chromosomes' must be a non-empty list of "
                         "chromosome names")
    return frozenset(raw)


@dataclass
class ServerHandle:
    """A running background server: address plus a way to stop it."""

    host: str
    port: int
    _server: "OffTargetServer"
    _thread: threading.Thread
    _loop: asyncio.AbstractEventLoop

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if thread.is_alive():
            try:
                loop.call_soon_threadsafe(self._server._request_stop)
            except RuntimeError:
                pass  # loop already closed: the thread is finishing
            thread.join(timeout=10.0)
        self._server.close()

    def drain(self, timeout_s: float = 15.0) -> None:
        """Gracefully drain: stop accepting, finish admitted requests.

        The in-process analog of sending the server SIGTERM; used by
        tests and the router smoke to exercise the drain path without
        a subprocess.
        """
        loop, thread = self._loop, self._thread
        if thread.is_alive():
            try:
                loop.call_soon_threadsafe(self._server._begin_drain)
            except RuntimeError:
                pass
            thread.join(timeout=timeout_s)
        self._server.close()


class OffTargetServer:
    """JSON-lines TCP server over one resident :class:`GenomeSiteIndex`."""

    def __init__(self, index: GenomeSiteIndex, host: str = "127.0.0.1",
                 port: int = 0, max_batch: int = 8,
                 max_wait_ms: float = 5.0, max_queue: int = 64,
                 adaptive: bool = False, direct_below: int = 0,
                 reloader: Optional[Callable[[], Any]] = None,
                 request_fault_plan: Optional[str] = None,
                 drain_s: float = 5.0,
                 enzymes: Optional[Sequence[
                     Tuple[CasEnzyme, GenomeSiteIndex]]] = None):
        self.index = index
        self.host = host
        self.port = port  # 0 = ephemeral; bound port set once listening
        self.scheduler = BatchScheduler(index, max_batch=max_batch,
                                        max_wait_ms=max_wait_ms,
                                        max_queue=max_queue,
                                        adaptive=adaptive,
                                        direct_below=direct_below)
        self._stop_event: Optional[asyncio.Event] = None
        self._closed = False
        #: Builds/loads a replacement index for the ``reload`` op.
        self._reloader = reloader
        self._reload_lock = threading.Lock()
        self._reloads = 0
        #: Request-level fault plan (indices are query ordinals).
        self._request_injector = (
            faults.FaultInjector(faults.parse_fault_plan(
                request_fault_plan))
            if request_fault_plan else None)
        self._request_seq = 0
        #: Graceful-shutdown budget for in-flight requests (seconds).
        self.drain_s = float(drain_s)
        self._draining = False
        self._inflight = 0
        #: Alternate enzymes: name -> (enzyme, index, scheduler).
        #: Requests naming no enzyme keep hitting the default index.
        self._enzymes: Dict[str, Tuple[CasEnzyme, GenomeSiteIndex,
                                       BatchScheduler]] = {}
        for enzyme, enzyme_index in (enzymes or ()):
            if enzyme.name in self._enzymes:
                raise ValueError(
                    f"duplicate enzyme {enzyme.name!r}")
            if enzyme_index.pattern != enzyme.pattern:
                raise ValueError(
                    f"enzyme {enzyme.name!r} declares pattern "
                    f"{enzyme.pattern!r} but its index was built for "
                    f"{enzyme_index.pattern!r}")
            self._enzymes[enzyme.name] = (
                enzyme, enzyme_index,
                BatchScheduler(enzyme_index, max_batch=max_batch,
                               max_wait_ms=max_wait_ms,
                               max_queue=max_queue, adaptive=adaptive,
                               direct_below=direct_below))
        #: Serializes variant patch scans: the variant op runs on
        #: executor threads (off-loop), which would otherwise race
        #: compare_resident on one pipeline (the scheduler's single
        #: worker serializes every other comparer entry point).
        self._variant_lock = threading.Lock()

    # -- request handling ----------------------------------------------

    async def _handle_request(self, request: Dict[str, Any]
                              ) -> Optional[Dict[str, Any]]:
        op = request.get("op")
        if op == "health":
            response = {"ok": True,
                        "status": ("draining" if self._draining
                                   else "serving"),
                        "genome": self.index.assembly.name,
                        "pattern": self.index.pattern,
                        "chunks": self.index.chunk_count,
                        "sites": self.index.site_count}
            chroms = getattr(self.index, "chromosomes", None)
            if chroms is not None:
                response["chromosomes"] = list(chroms)
            fingerprint = getattr(self.index, "fingerprint", None)
            if callable(fingerprint):
                response["fingerprint"] = fingerprint()
            shard_health = getattr(self.index, "shard_health", None)
            if shard_health is not None:
                response["shards"] = shard_health()
            degraded = getattr(self.index, "degraded", None)
            if degraded is not None:
                response["degraded"] = bool(degraded)
                if degraded:
                    response["degrade_reason"] = getattr(
                        self.index, "degrade_reason", None)
            if self._enzymes:
                response["enzymes"] = sorted(self._enzymes)
            return response
        if op == "stats":
            return {"ok": True, "stats": self.scheduler.stats()}
        if op == "reload":
            return await self._handle_reload(request)
        if op == "enzymes":
            return self._handle_enzymes()
        if op == "variant":
            return await self._handle_variant(request)
        if op == "enumerate":
            return self._handle_enumerate(request)
        if op == "design":
            return await self._handle_design(request)
        if op == "query":
            if self._request_injector is not None:
                outcome = await self._apply_request_fault()
                if outcome is _DROP_CONNECTION:
                    return None  # half-open: close without responding
                if outcome is not None:
                    return outcome
            try:
                _, _, scheduler = self._resolve_enzyme(request)
                queries = _decode_queries(request.get("queries"))
                allowed = _decode_chromosomes(
                    request.get("chromosomes"))
                deadline = request.get("deadline_s")
                if deadline is not None and (
                        isinstance(deadline, bool)
                        or not isinstance(deadline, (int, float))):
                    raise ValueError(
                        f"deadline_s must be a number, got "
                        f"{deadline!r}")
                future = scheduler.submit(queries,
                                          deadline_s=deadline)
            except ValueError as exc:
                return {"ok": False, "error": "bad-request",
                        "message": str(exc)}
            except ServiceOverloaded as exc:
                return {"ok": False, "error": "overloaded",
                        "message": str(exc)}
            except DeadlineExceeded as exc:
                # Already expired at submit: fail fast, same error
                # code clients see for an in-queue expiry.
                return {"ok": False, "error": "deadline",
                        "message": str(exc)}
            except SchedulerClosed as exc:
                return {"ok": False, "error": "closed",
                        "message": str(exc)}
            try:
                results = await asyncio.wrap_future(future)
            except DeadlineExceeded as exc:
                return {"ok": False, "error": "deadline",
                        "message": str(exc)}
            except SchedulerClosed as exc:
                return {"ok": False, "error": "closed",
                        "message": str(exc)}
            except Exception as exc:  # noqa: BLE001 - report, keep serving
                return {"ok": False, "error": "internal",
                        "message": f"{type(exc).__name__}: {exc}"}
            if allowed is not None:
                # Order-preserving subsequence: hits of the allowed
                # chromosomes keep their single-server relative order,
                # which is what lets a router reassemble partitions
                # byte-identically.
                results = [[hit for hit in per if hit.chrom in allowed]
                           for per in results]
            return {"ok": True,
                    "hits": [_encode_hits(per) for per in results]}
        return {"ok": False, "error": "unknown-op",
                "message": f"unknown op {op!r}; expected query, design, "
                           f"enumerate, variant, enzymes, stats, "
                           f"health or reload"}

    # -- enzyme registry ------------------------------------------------

    def _resolve_enzyme(self, request: Dict[str, Any]
                        ) -> Tuple[Optional[CasEnzyme], GenomeSiteIndex,
                                   BatchScheduler]:
        """(enzyme, index, scheduler) for the request's ``enzyme`` field.

        Absent/None selects the default index; unknown names raise
        ValueError, which every op maps to ``bad-request``.
        """
        name = request.get("enzyme")
        if name is None:
            return None, self.index, self.scheduler
        if not isinstance(name, str):
            raise ValueError(
                f"'enzyme' must be a string, got {name!r}")
        entry = self._enzymes.get(name)
        if entry is None:
            known = ", ".join(sorted(self._enzymes)) or "none"
            raise ValueError(
                f"unknown enzyme {name!r}; this server hosts: {known}")
        return entry

    def _handle_enzymes(self) -> Dict[str, Any]:
        """Declarative registry listing — the ``enzymes`` op."""
        entries = []
        for name in sorted(self._enzymes):
            enzyme, enzyme_index, _ = self._enzymes[name]
            entry = {**enzyme.to_payload(),
                     "sites": enzyme_index.site_count,
                     "chunks": enzyme_index.chunk_count}
            fingerprint = getattr(enzyme_index, "fingerprint", None)
            if callable(fingerprint):
                entry["fingerprint"] = fingerprint()
            entries.append(entry)
        return {"ok": True, "default_pattern": self.index.pattern,
                "enzymes": entries}

    # -- variant-aware search -------------------------------------------

    async def _handle_variant(self, request: Dict[str, Any]
                              ) -> Dict[str, Any]:
        """Per-haplotype gained/lost off-targets — the ``variant`` op.

        Patch scans plus the single batched comparer pass run in an
        executor thread (the reload pattern), so the accept loop keeps
        serving other connections; ``_variant_lock`` serializes the
        comparer work because executor threads bypass the scheduler's
        one-worker serialization.
        """
        try:
            _, _, scheduler = self._resolve_enzyme(request)
            queries = _decode_queries(request.get("queries"))
            haplotypes = decode_haplotypes(request.get("haplotypes"))
            allowed = _decode_chromosomes(request.get("chromosomes"))
        except (VariantError, ValueError) as exc:
            return {"ok": False, "error": "bad-request",
                    "message": str(exc)}
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None, self._variant_sync, scheduler, queries,
                haplotypes, allowed)
        except (VariantError, ValueError) as exc:
            return {"ok": False, "error": "bad-request",
                    "message": str(exc)}
        except SchedulerClosed as exc:
            return {"ok": False, "error": "closed",
                    "message": str(exc)}
        except Exception as exc:  # noqa: BLE001 - keep serving
            return {"ok": False, "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}"}
        scheduler.count_request("variant")
        return {"ok": True, **result.payload()}

    def _variant_sync(self, scheduler: BatchScheduler,
                      queries: List[Query], haplotypes: Sequence[Any],
                      allowed: Optional[FrozenSet[str]]) -> Any:
        # scheduler.index is the live (possibly reload-swapped) index.
        with self._variant_lock:
            return search_variants(scheduler.index, queries,
                                   haplotypes, chromosomes=allowed)

    # -- guide design ---------------------------------------------------

    def _handle_enumerate(self, request: Dict[str, Any]
                          ) -> Dict[str, Any]:
        """Candidate protospacers for a region, on the wire.

        Pure and synchronous (no comparer work): the routing tier
        calls this on a backend that holds the target chromosome,
        then fans the returned queries out like any query batch.
        """
        try:
            enzyme, index, _ = self._resolve_enzyme(request)
            if enzyme is not None and not enzyme.designable:
                raise ValueError(
                    f"enzyme {enzyme.name!r} has a 5prime PAM; guide "
                    f"design requires a 3prime-PAM pattern")
            spec = decode_design_spec(request)
            anatomy, candidates, queries = enumerate_for_design(
                index.assembly, index.pattern, spec)
        except ValueError as exc:
            return {"ok": False, "error": "bad-request",
                    "message": str(exc)}
        return {"ok": True,
                **enumerate_payload(anatomy, candidates, queries)}

    async def _handle_design(self, request: Dict[str, Any]
                             ) -> Dict[str, Any]:
        """Enumerate, scan once, rank — the ``design`` op.

        All unique candidate queries ride ONE scheduler submission,
        i.e. one batched comparer pass over the resident index — the
        same single-scan invariant :func:`repro.design.design_guides`
        keeps in-process.
        """
        try:
            enzyme, index, scheduler = self._resolve_enzyme(request)
            if enzyme is not None and not enzyme.designable:
                raise ValueError(
                    f"enzyme {enzyme.name!r} has a 5prime PAM; guide "
                    f"design requires a 3prime-PAM pattern")
            spec = decode_design_spec(request)
            deadline = request.get("deadline_s")
            if deadline is not None and (
                    isinstance(deadline, bool)
                    or not isinstance(deadline, (int, float))):
                raise ValueError(
                    f"deadline_s must be a number, got {deadline!r}")
            anatomy, candidates, queries = enumerate_for_design(
                index.assembly, index.pattern, spec)
            estimator = get_estimator(spec.estimator,
                                      scoring_guide_length(anatomy))
        except ValueError as exc:
            return {"ok": False, "error": "bad-request",
                    "message": str(exc)}
        hits_by_query: Dict[str, List[OffTargetHit]] = {}
        if queries:
            try:
                future = scheduler.submit(
                    [Query(sequence=query,
                           max_mismatches=spec.max_mismatches)
                     for query in queries],
                    deadline_s=deadline, kind="design")
            except ValueError as exc:
                return {"ok": False, "error": "bad-request",
                        "message": str(exc)}
            except ServiceOverloaded as exc:
                return {"ok": False, "error": "overloaded",
                        "message": str(exc)}
            except DeadlineExceeded as exc:
                return {"ok": False, "error": "deadline",
                        "message": str(exc)}
            except SchedulerClosed as exc:
                return {"ok": False, "error": "closed",
                        "message": str(exc)}
            try:
                results = await asyncio.wrap_future(future)
            except DeadlineExceeded as exc:
                return {"ok": False, "error": "deadline",
                        "message": str(exc)}
            except SchedulerClosed as exc:
                return {"ok": False, "error": "closed",
                        "message": str(exc)}
            except Exception as exc:  # noqa: BLE001 - keep serving
                return {"ok": False, "error": "internal",
                        "message": f"{type(exc).__name__}: {exc}"}
            hits_by_query = dict(zip(queries, results))
        reports = rank_candidates(candidates, hits_by_query, estimator,
                                  spec.top_n)
        return {"ok": True,
                **design_payload(anatomy, estimator, candidates,
                                 queries, reports)}

    async def _apply_request_fault(self) -> Optional[Dict[str, Any]]:
        """Fire the next request-level fault, if the plan names one.

        Returns None (no fault, or a stall already applied), an error
        response (``raise``), or :data:`_DROP_CONNECTION`
        (``disconnect``).  ``crash`` does not return.
        """
        ordinal = self._request_seq
        self._request_seq += 1
        spec = self._request_injector.fire(ordinal)
        if spec is None:
            return None
        tracing.instant("request_fault", cat="fault", request=ordinal,
                        kind=spec.kind)
        if spec.kind == "crash":
            os._exit(1)
        if spec.kind == "disconnect":
            return _DROP_CONNECTION
        if spec.kind == "stall":
            await asyncio.sleep(spec.stall_s)
            return None
        return {"ok": False, "error": "internal",
                "message": f"injected fault on request {ordinal}"}

    async def _handle_reload(self, request: Dict[str, Any]
                             ) -> Dict[str, Any]:
        if self._reloader is None:
            return {"ok": False, "error": "no-reloader",
                    "message": "this server was started without a "
                               "reloader; it cannot roll its index"}
        raw = request.get("canaries")
        try:
            canaries = (_decode_queries(raw) if raw is not None
                        else [])
        except ValueError as exc:
            return {"ok": False, "error": "bad-request",
                    "message": str(exc)}
        loop = asyncio.get_running_loop()
        try:
            # Build + warm + swap off-loop: other connections keep
            # being served by the old index the whole time.
            summary = await loop.run_in_executor(
                None, self._reload_sync, canaries)
        except Exception as exc:  # noqa: BLE001 - old index kept
            tracing.instant("index_reload_failed", cat="service",
                            error=type(exc).__name__)
            return {"ok": False, "error": "reload-failed",
                    "message": f"{type(exc).__name__}: {exc}"}
        return {"ok": True, **summary}

    def _reload_sync(self, canaries: Sequence[Query]
                     ) -> Dict[str, Any]:
        """Build, canary-warm and atomically swap a fresh index.

        Runs in an executor thread.  Any exception propagates to
        :meth:`_handle_reload` *before* the swap, so a failed reload
        never interrupts serving on the old index.
        """
        with self._reload_lock:
            old = self.scheduler.index
            with tracing.span("index_reload", cat="service"):
                new = self._reloader()
                if new is None:
                    raise RuntimeError("reloader returned no index")
                plen = new.compiled_pattern.plen
                for query in canaries:
                    if len(query.sequence) != plen:
                        raise ValueError(
                            f"canary {query.sequence!r} has length "
                            f"{len(query.sequence)}; the new index "
                            f"requires {plen}")
                if canaries:
                    # Canary warm: run the new index end to end before
                    # it can see real traffic.
                    new.query_batch(list(canaries))
                old_fp = self._fingerprint_of(old)
                new_fp = self._fingerprint_of(new)
                drained = True
                try:
                    previous = self.scheduler.swap_index(new)
                except TimeoutError:
                    # Swap took effect; the old index is still running
                    # one last batch, so just don't release it.
                    previous, drained = old, False
                self.index = new
                self._reloads += 1
                if drained and previous is not new:
                    closer = getattr(previous, "close", None)
                    if callable(closer):
                        closer()
            tracing.instant("index_reloaded", cat="service",
                            fingerprint=new_fp, changed=new_fp != old_fp)
            return {"swapped": True,
                    "fingerprint": new_fp,
                    "previous_fingerprint": old_fp,
                    "changed": new_fp != old_fp,
                    "sites": new.site_count,
                    "canaries": len(canaries),
                    "drained": drained,
                    "reloads": self._reloads}

    @staticmethod
    def _fingerprint_of(index: Any) -> Optional[str]:
        fingerprint = getattr(index, "fingerprint", None)
        return fingerprint() if callable(fingerprint) else None

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                self._inflight += 1
                try:
                    try:
                        request = json.loads(line)
                        if not isinstance(request, dict):
                            raise ValueError(
                                "request must be a JSON object")
                    except (ValueError, json.JSONDecodeError) as exc:
                        response: Optional[Dict[str, Any]] = {
                            "ok": False, "error": "bad-json",
                            "message": str(exc)}
                    else:
                        response = await self._handle_request(request)
                        if response is None:
                            # Injected disconnect: drop the connection
                            # without writing anything back.
                            break
                        if "id" in request:
                            response["id"] = request["id"]
                    writer.write(json.dumps(response).encode("ascii",
                                                             "replace")
                                 + b"\n")
                    try:
                        await writer.drain()
                    except ConnectionError:
                        break
                finally:
                    self._inflight -= 1
        except asyncio.CancelledError:
            pass  # server shutdown: drop the connection quietly
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- lifecycle ------------------------------------------------------

    def _request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def _begin_drain(self) -> None:
        """Graceful shutdown: stop accepting, finish admitted work.

        Called from the event loop (SIGTERM handler or
        :meth:`ServerHandle.drain` via ``call_soon_threadsafe``).
        """
        if not self._draining:
            self._draining = True
            tracing.instant("server_drain_begin", cat="service",
                            inflight=self._inflight)
        self._request_stop()

    async def _serve(self, ready: Optional[Tuple[str, threading.Event,
                                                 List[int]]] = None,
                     duration_s: Optional[float] = None,
                     ready_file: Optional[str] = None) -> None:
        self._stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        signal_installed = False
        try:
            # A supervisor's SIGTERM triggers the graceful drain
            # instead of killing mid-batch.  Installation fails off
            # the main thread (start_background); those callers use
            # ServerHandle.drain instead.
            loop.add_signal_handler(signal.SIGTERM, self._begin_drain)
            signal_installed = True
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port,
            limit=MAX_LINE_BYTES)
        self.port = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready[2].append(self.port)
            ready[1].set()
        if ready_file:
            # Atomic publish: a supervisor polls for the file's
            # existence, so it must never observe the empty window
            # between create and write.
            part = ready_file + ".part"
            with open(part, "w", encoding="ascii") as handle:
                handle.write(f"{self.host} {self.port}\n")
            os.replace(part, ready_file)
        try:
            async with server:
                if duration_s is not None:
                    try:
                        await asyncio.wait_for(self._stop_event.wait(),
                                               timeout=duration_s)
                    except asyncio.TimeoutError:
                        pass
                else:
                    await self._stop_event.wait()
        finally:
            self._stop_event = None
            if signal_installed:
                loop.remove_signal_handler(signal.SIGTERM)
            if self._draining:
                # The listener is closed (async with exited): no new
                # connections.  Give requests already admitted up to
                # drain_s to finish; the scheduler queue drains
                # transitively because each request holds _inflight
                # until its response is written.
                deadline = loop.time() + self.drain_s
                while self._inflight > 0 and loop.time() < deadline:
                    await asyncio.sleep(0.02)
                tracing.instant("server_drained", cat="service",
                                remaining=self._inflight)
            # Cancel connection handlers still blocked in readline so
            # the loop shuts down without pending-task warnings.
            current = asyncio.current_task()
            pending = [task for task in asyncio.all_tasks()
                       if task is not current and not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    def run(self, duration_s: Optional[float] = None,
            ready_file: Optional[str] = None) -> None:
        """Serve on the calling thread until stopped.

        ``ready_file`` (if given) is written with ``"host port"`` once
        the socket is listening — so a supervisor (or smoke test) can
        find an ephemeral port — and removed again on shutdown
        (including error paths), so a dead server never keeps
        announcing a port it no longer holds.  ``duration_s`` bounds
        the run, which lets ``repro serve --duration-s 5`` act as its
        own smoke test.
        """
        try:
            asyncio.run(self._serve(duration_s=duration_s,
                                    ready_file=ready_file))
        except KeyboardInterrupt:
            pass
        finally:
            self.close()
            if ready_file:
                try:
                    os.unlink(ready_file)
                except OSError:
                    pass

    def start_background(self) -> ServerHandle:
        """Serve on a daemon thread; returns a handle with the port."""
        ready = threading.Event()
        ports: List[int] = []
        loop = asyncio.new_event_loop()

        def _run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(
                    self._serve(ready=(self.host, ready, ports)))
            finally:
                loop.close()

        thread = threading.Thread(target=_run, name="service-server",
                                  daemon=True)
        thread.start()
        if not ready.wait(timeout=10.0):
            raise RuntimeError("server failed to start within 10 s")
        return ServerHandle(host=self.host, port=ports[0], _server=self,
                            _thread=thread, _loop=loop)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.scheduler.close()
            for _, _, scheduler in self._enzymes.values():
                scheduler.close()
