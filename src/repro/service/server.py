"""Asyncio JSON-lines TCP front end over the batch scheduler.

Stdlib only: one :func:`asyncio.start_server` accept loop, one JSON
object per line in each direction.  Requests carry an ``op`` —

* ``query``: ``{"op": "query", "queries": [["GACGTCNN", 3], ...],
  "deadline_s": 0.5}`` → per-query hit lists;
* ``stats``: scheduler counters, queue depth, batch-size histogram and
  latency percentiles (see :meth:`BatchScheduler.stats`);
* ``health``: liveness plus index identity (genome, pattern, sites).

Responses echo the request's ``id`` (if any) and carry ``ok``; failures
carry a machine-readable ``error`` code (``bad-json``, ``bad-request``,
``unknown-op``, ``overloaded``, ``deadline``, ``closed``, ``internal``)
so clients can distinguish back-off-and-retry from bugs.

The accept loop never blocks on the comparer: each connection awaits
its scheduler future via :func:`asyncio.wrap_future`, so slow batches
only delay their own requesters while other connections keep being
served.  :meth:`OffTargetServer.start_background` runs the whole server
in a daemon thread with its own event loop — the shape the tests and
the load generator use.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.config import Query
from ..core.records import OffTargetHit
from .index import GenomeSiteIndex
from .scheduler import (BatchScheduler, DeadlineExceeded,
                        SchedulerClosed, ServiceOverloaded)

#: Refuse absurd single lines before json.loads sees them.
MAX_LINE_BYTES = 1 << 20


def _encode_hits(hits: List[OffTargetHit]) -> List[List[Any]]:
    return [[h.query, h.chrom, int(h.position), h.site, h.strand,
             int(h.mismatches)] for h in hits]


def _decode_queries(raw: Any) -> List[Query]:
    if not isinstance(raw, list) or not raw:
        raise ValueError("'queries' must be a non-empty list of "
                         "[sequence, max_mismatches] pairs")
    queries = []
    for item in raw:
        if (not isinstance(item, (list, tuple)) or len(item) != 2
                or not isinstance(item[0], str)
                or isinstance(item[1], bool)
                or not isinstance(item[1], int)):
            raise ValueError(
                f"bad query entry {item!r}: expected "
                f"[sequence, max_mismatches]")
        if item[1] < 0:
            raise ValueError(
                f"max_mismatches must be >= 0, got {item[1]}")
        queries.append(Query(sequence=item[0].upper(),
                             max_mismatches=item[1]))
    return queries


@dataclass
class ServerHandle:
    """A running background server: address plus a way to stop it."""

    host: str
    port: int
    _server: "OffTargetServer"
    _thread: threading.Thread
    _loop: asyncio.AbstractEventLoop

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if thread.is_alive():
            try:
                loop.call_soon_threadsafe(self._server._request_stop)
            except RuntimeError:
                pass  # loop already closed: the thread is finishing
            thread.join(timeout=10.0)
        self._server.close()


class OffTargetServer:
    """JSON-lines TCP server over one resident :class:`GenomeSiteIndex`."""

    def __init__(self, index: GenomeSiteIndex, host: str = "127.0.0.1",
                 port: int = 0, max_batch: int = 8,
                 max_wait_ms: float = 5.0, max_queue: int = 64,
                 adaptive: bool = False, direct_below: int = 0):
        self.index = index
        self.host = host
        self.port = port  # 0 = ephemeral; bound port set once listening
        self.scheduler = BatchScheduler(index, max_batch=max_batch,
                                        max_wait_ms=max_wait_ms,
                                        max_queue=max_queue,
                                        adaptive=adaptive,
                                        direct_below=direct_below)
        self._stop_event: Optional[asyncio.Event] = None
        self._closed = False

    # -- request handling ----------------------------------------------

    async def _handle_request(self, request: Dict[str, Any]
                              ) -> Dict[str, Any]:
        op = request.get("op")
        if op == "health":
            response = {"ok": True, "status": "serving",
                        "genome": self.index.assembly.name,
                        "pattern": self.index.pattern,
                        "chunks": self.index.chunk_count,
                        "sites": self.index.site_count}
            shard_health = getattr(self.index, "shard_health", None)
            if shard_health is not None:
                response["shards"] = shard_health()
            degraded = getattr(self.index, "degraded", None)
            if degraded is not None:
                response["degraded"] = bool(degraded)
                if degraded:
                    response["degrade_reason"] = getattr(
                        self.index, "degrade_reason", None)
            return response
        if op == "stats":
            return {"ok": True, "stats": self.scheduler.stats()}
        if op == "query":
            try:
                queries = _decode_queries(request.get("queries"))
                deadline = request.get("deadline_s")
                if deadline is not None and (
                        isinstance(deadline, bool)
                        or not isinstance(deadline, (int, float))):
                    raise ValueError(
                        f"deadline_s must be a number, got "
                        f"{deadline!r}")
                future = self.scheduler.submit(queries,
                                               deadline_s=deadline)
            except ValueError as exc:
                return {"ok": False, "error": "bad-request",
                        "message": str(exc)}
            except ServiceOverloaded as exc:
                return {"ok": False, "error": "overloaded",
                        "message": str(exc)}
            except DeadlineExceeded as exc:
                # Already expired at submit: fail fast, same error
                # code clients see for an in-queue expiry.
                return {"ok": False, "error": "deadline",
                        "message": str(exc)}
            except SchedulerClosed as exc:
                return {"ok": False, "error": "closed",
                        "message": str(exc)}
            try:
                results = await asyncio.wrap_future(future)
            except DeadlineExceeded as exc:
                return {"ok": False, "error": "deadline",
                        "message": str(exc)}
            except SchedulerClosed as exc:
                return {"ok": False, "error": "closed",
                        "message": str(exc)}
            except Exception as exc:  # noqa: BLE001 - report, keep serving
                return {"ok": False, "error": "internal",
                        "message": f"{type(exc).__name__}: {exc}"}
            return {"ok": True,
                    "hits": [_encode_hits(per) for per in results]}
        return {"ok": False, "error": "unknown-op",
                "message": f"unknown op {op!r}; expected query, stats "
                           f"or health"}

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except (ValueError, json.JSONDecodeError) as exc:
                    response: Dict[str, Any] = {
                        "ok": False, "error": "bad-json",
                        "message": str(exc)}
                else:
                    response = await self._handle_request(request)
                    if "id" in request:
                        response["id"] = request["id"]
                writer.write(json.dumps(response).encode("ascii",
                                                         "replace")
                             + b"\n")
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        except asyncio.CancelledError:
            pass  # server shutdown: drop the connection quietly
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- lifecycle ------------------------------------------------------

    def _request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def _serve(self, ready: Optional[Tuple[str, threading.Event,
                                                 List[int]]] = None,
                     duration_s: Optional[float] = None,
                     ready_file: Optional[str] = None) -> None:
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port,
            limit=MAX_LINE_BYTES)
        self.port = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready[2].append(self.port)
            ready[1].set()
        if ready_file:
            with open(ready_file, "w", encoding="ascii") as handle:
                handle.write(f"{self.host} {self.port}\n")
        try:
            async with server:
                if duration_s is not None:
                    try:
                        await asyncio.wait_for(self._stop_event.wait(),
                                               timeout=duration_s)
                    except asyncio.TimeoutError:
                        pass
                else:
                    await self._stop_event.wait()
        finally:
            self._stop_event = None
            # Cancel connection handlers still blocked in readline so
            # the loop shuts down without pending-task warnings.
            current = asyncio.current_task()
            pending = [task for task in asyncio.all_tasks()
                       if task is not current and not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    def run(self, duration_s: Optional[float] = None,
            ready_file: Optional[str] = None) -> None:
        """Serve on the calling thread until stopped.

        ``ready_file`` (if given) is written with ``"host port"`` once
        the socket is listening — so a supervisor (or smoke test) can
        find an ephemeral port — and removed again on shutdown
        (including error paths), so a dead server never keeps
        announcing a port it no longer holds.  ``duration_s`` bounds
        the run, which lets ``repro serve --duration-s 5`` act as its
        own smoke test.
        """
        try:
            asyncio.run(self._serve(duration_s=duration_s,
                                    ready_file=ready_file))
        except KeyboardInterrupt:
            pass
        finally:
            self.close()
            if ready_file:
                try:
                    os.unlink(ready_file)
                except OSError:
                    pass

    def start_background(self) -> ServerHandle:
        """Serve on a daemon thread; returns a handle with the port."""
        ready = threading.Event()
        ports: List[int] = []
        loop = asyncio.new_event_loop()

        def _run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(
                    self._serve(ready=(self.host, ready, ports)))
            finally:
                loop.close()

        thread = threading.Thread(target=_run, name="service-server",
                                  daemon=True)
        thread.start()
        if not ready.wait(timeout=10.0):
            raise RuntimeError("server failed to start within 10 s")
        return ServerHandle(host=self.host, port=ports[0], _server=self,
                            _thread=thread, _loop=loop)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.scheduler.close()
