"""Off-target query service: resident site index, batching, serving.

The paper's two-kernel split has a serving-shaped property: the finder
kernel's candidate sites depend only on the genome and the PAM pattern,
never on the guide query.  This package exploits that once-per-genome /
many-per-query asymmetry:

* :mod:`repro.service.index` — :class:`~repro.service.index.
  GenomeSiteIndex` runs the finder once per chunk and keeps the
  candidate-site arrays memory-resident (with versioned, fingerprinted
  save/load so a server can warm-start without rescanning);
* :mod:`repro.service.scheduler` — a bounded request queue with
  micro-batching that stacks concurrent requests' guides into a single
  batched comparer launch over the resident index (the
  continuous-batching pattern of production inference servers);
* :mod:`repro.service.server` / :mod:`repro.service.client` — an
  asyncio JSON-lines TCP server (stdlib only) exposing ``query``,
  ``stats`` and ``health`` ops, plus a blocking client and a load
  generator;
* :mod:`repro.service.shards` — :class:`~repro.service.shards.
  ShardedSiteIndex` partitions the resident index by chunk into N
  shared-memory shards served by one comparer worker process each,
  with scatter/gather batching, crash-respawn failover and a
  deterministic merge that keeps responses byte-identical to the
  single-process path;
* :mod:`repro.service.router` — :class:`~repro.service.router.
  OffTargetRouter` partitions the genome by *chromosome* across N
  backend servers (the horizontal step after in-host shards), with
  health probing and ejection, hedged reads, bounded retry against
  replicas, zero-downtime index rollover, and the same byte-identity
  guarantee via a stable merge by chromosome rank.

The serving layer is backend-agnostic over the OpenCL/SYCL runtimes:
the index takes the same ``api``/``device`` selectors as
:func:`repro.core.pipeline.make_pipeline`, and responses are
byte-identical to an offline CLI search for the same genome, pattern
and queries (pinned by ``tests/test_service.py``).
"""

from .index import (GenomeSiteIndex, SiteIndexError,
                    SiteIndexMismatchError, SiteIndexVersionError)
from .scheduler import (BatchScheduler, DeadlineExceeded,
                        SchedulerClosed, ServiceOverloaded)
from .server import OffTargetServer
from .client import (ServiceClient, ServiceDeadlineError, ServiceError,
                     ServiceOverloadedError, run_load)

#: Re-exported lazily: importing .shards/.router here would make their
#: ``python -m repro.service.<mod>`` maintenance/smoke entry points
#: warn about the module being imported twice (runpy sees it in
#: sys.modules before executing it as __main__).
_SHARD_EXPORTS = ("ShardedSiteIndex", "ShardWorkerError",
                  "cleanup_leaked_segments")
_ROUTER_EXPORTS = ("OffTargetRouter", "RouterError",
                   "partition_chromosomes", "replica_plan")


def __getattr__(name):
    if name in _SHARD_EXPORTS:
        from . import shards
        return getattr(shards, name)
    if name in _ROUTER_EXPORTS:
        from . import router
        return getattr(router, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "GenomeSiteIndex", "SiteIndexError", "SiteIndexMismatchError",
    "SiteIndexVersionError", "BatchScheduler", "DeadlineExceeded", "SchedulerClosed",
    "ServiceOverloaded", "OffTargetServer", "ServiceClient",
    "ServiceError", "ServiceOverloadedError", "ServiceDeadlineError",
    "run_load", "ShardedSiteIndex", "ShardWorkerError",
    "cleanup_leaked_segments", "OffTargetRouter", "RouterError",
    "partition_chromosomes", "replica_plan",
]
