"""Memory-resident genome site index: scan once, serve many queries.

The finder kernel selects PAM-bearing candidate sites from the genome;
its output is a pure function of ``(genome, pattern, chunk layout)`` and
is completely independent of the guide queries.  A
:class:`GenomeSiteIndex` therefore runs the finder exactly once per
chunk over the whole assembly and keeps each chunk's candidate arrays
(loci within the chunk, strand flags) memory-resident.  Serving a query
then reduces to the comparer kernel over the stored candidates — the
expensive genome scan is amortized across every request that follows.

Results are pinned byte-identical to an offline search: the comparer is
re-staged from the stored host arrays through the same pipeline entry
points (:meth:`~repro.core.pipeline._BasePipeline.compare_resident`,
itself built on ``compare_candidates``), and hits are built by the same
:meth:`~repro.core.pipeline.SearchAccumulator._build_hits` the chunk
loop uses.

By default the index keeps its candidate windows in the *packed* 2-bit
resident form (:class:`~repro.core.pipeline.PackedSites` planes packed
once at build time), so serving runs the bit-parallel comparer — XOR +
odd-bit mask + popcount over resident uint64 words — instead of
re-gathering genome bytes per batch.  Packing requires the pattern to
fit one 64-bit word (``plen <= 32``) and every chunk byte to be
uppercase A/C/G/T/N; anything else auto-degrades the whole index to the
byte comparer (``packed_disabled_reason`` records why).  Queries with
ambiguity codes at checked positions always fall back to the byte
comparer per query, so responses stay byte-identical either way.

Persistence reuses the :mod:`repro.resilience.checkpoint` fingerprint
machinery: ``save`` writes a versioned ``index.json`` header carrying a
SHA-256 manifest fingerprint over (genome identity, pattern, chunk
size) plus a SHA-256 digest of the packed site arrays; ``load`` refuses
an index built for a different genome/pattern/chunk size
(:class:`SiteIndexMismatchError`), detects corrupted site payloads
(:class:`SiteIndexError`), and rejects other on-disk format versions
with :class:`SiteIndexVersionError` so callers (the ``serve`` CLI)
rebuild instead of misreading — a warm-starting server never trusts a
stale or torn index silently.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bitparallel import (acgtn_only, pack_site_windows,
                                window_packable)
from ..core.config import Query
from ..core.patterns import MISMATCH_LUT, compile_pattern
from ..core.pipeline import (DEFAULT_CHUNK_SIZE, PackedSites,
                             ResidentChunk, make_pipeline)
from ..core.records import OffTargetHit
from ..genome.assembly import Assembly
from ..observability import faults, tracing
from ..resilience.checkpoint import RunManifest, _atomic_write_json

#: Header file inside an index directory.
INDEX_MANIFEST_NAME = "index.json"

#: Packed candidate-site arrays inside an index directory.
SITES_NAME = "sites.npz"

#: Bumped on any change to the on-disk layout.  Version 2 added the
#: ``packed`` header flag and the optional 2-bit window planes.
INDEX_VERSION = 2

#: A pattern longer than this cannot pack one window per uint64.
MAX_PACKED_PATTERN = 32


# ---------------------------------------------------------------------------
# Candidate summaries: cheap per-shard feasibility bounds
# ---------------------------------------------------------------------------
#
# A shard's candidate windows can be summarized by one byte per window
# position: the OR of a small class mask (A/C/G/T/N, plus "other" for
# anything else) over every site in the shard.  For a query, a position
# contributes one *guaranteed* mismatch for every site in the shard iff
# no base class present in that column is allowed by the query there —
# so counting such columns gives a lower bound on the mismatch count of
# ANY site in the shard, per strand.  When that bound exceeds a query's
# threshold on both strands the shard cannot produce a hit for it, and
# the sharded tier skips the scatter entirely.  "Other" bytes are
# treated as always able to match, which keeps the bound conservative
# (never skips a shard that could have matched).

#: Class bit for genome bytes outside uppercase A/C/G/T/N.
SUMMARY_OTHER = np.uint8(32)

_SUMMARY_BASES = b"ACGTN"

#: 256-entry lookup: genome byte -> candidate-summary class bit.
SUMMARY_CLASS_TABLE = np.full(256, SUMMARY_OTHER, dtype=np.uint8)
for _i, _b in enumerate(_SUMMARY_BASES):
    SUMMARY_CLASS_TABLE[_b] = np.uint8(1 << _i)
del _i, _b


def window_column_profile(data: np.ndarray, loci: np.ndarray,
                          plen: int) -> np.ndarray:
    """Per-position OR of candidate-window class bits for one chunk.

    Returns a ``(plen,)`` uint8 array; position ``p``'s byte has the
    class bit of every base that appears at offset ``p`` of *some*
    candidate window.  All-zero means the chunk has no candidates.
    """
    if loci.size == 0:
        return np.zeros(plen, dtype=np.uint8)
    windows = data[loci.astype(np.int64)[:, None] + np.arange(plen)]
    return np.bitwise_or.reduce(SUMMARY_CLASS_TABLE[windows], axis=0)


def query_allowed_masks(cq) -> Tuple[np.ndarray, np.ndarray]:
    """Per-strand ``(plen,)`` class masks a compiled query can match.

    Position ``p``'s byte has the class bit of every tracked genome
    base the comparer would count as a *match* there (``MISMATCH_LUT``
    semantics: query ``N`` positions match everything, genome ``N``
    mismatches concrete query bases but not ambiguity codes).  The
    ``SUMMARY_OTHER`` bit is always set: untracked bytes are assumed
    matchable so the resulting bound stays a true lower bound.
    """
    out = []
    for codes in (cq.sequence, cq.rc_sequence):
        allowed = np.full(codes.size, SUMMARY_OTHER, dtype=np.uint8)
        for i, base in enumerate(_SUMMARY_BASES):
            allowed |= np.where(MISMATCH_LUT[codes, base] == 0,
                                np.uint8(1 << i), np.uint8(0))
        out.append(allowed)
    return out[0], out[1]


def profile_feasible(profile: np.ndarray,
                     allowed_masks: Tuple[np.ndarray, np.ndarray],
                     max_mismatches: int) -> bool:
    """Whether any site summarized by ``profile`` could be a hit.

    ``((profile & allowed) == 0).sum()`` counts columns where every
    base class present is excluded by the query — a lower bound on the
    mismatches of every individual site.  The site set is feasible when
    the bound is within threshold on either strand.  An all-zero
    profile (no candidates at all) is never feasible.
    """
    if not profile.any():
        return False
    for allowed in allowed_masks:
        bound = int(((profile & allowed) == 0).sum())
        if bound <= max_mismatches:
            return True
    return False


class SiteIndexError(RuntimeError):
    """Raised for unusable index state (corrupt payload, failed build)."""


class SiteIndexMismatchError(SiteIndexError):
    """A stored index was built for a different genome/pattern/layout."""


class SiteIndexVersionError(SiteIndexError):
    """A stored index uses a different on-disk format version.

    Distinct from generic corruption so a server can respond by
    rebuilding (the genome is right, only the layout is old) instead of
    refusing to start.
    """


@dataclass
class _IndexedChunk:
    """One chunk's resident finder output.

    ``data`` is a zero-copy view over the assembly's chromosome array,
    cached at build/load time so serving never re-fetches bases per
    batch; ``packed`` holds the resident 2-bit window planes when the
    index is in packed mode.
    """

    chrom: str
    start: int
    scan_length: int
    length: int  # chunk data length in bases (scan region + overlap)
    loci: np.ndarray   # uint32 candidate offsets within the chunk
    flags: np.ndarray  # uint8 strand flags, as the finder emitted them
    data: Optional[np.ndarray] = None
    packed: Optional[PackedSites] = None


class GenomeSiteIndex:
    """Resident candidate-site index over one assembly and PAM pattern.

    Build once with :meth:`build` (or :meth:`load` from a saved
    directory), then call :meth:`query_batch` any number of times; each
    call runs only the comparer, batched across all given queries, over
    the stored candidates.
    """

    def __init__(self, assembly: Assembly, pattern: str,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 api: str = "sycl", device: str = "MI100",
                 variant: str = "base", mode: str = "vectorized",
                 work_group_size: int = 256, packed: bool = True):
        if chunk_size < 1:
            raise ValueError(
                f"chunk size must be >= 1, got {chunk_size}")
        self.assembly = assembly
        self.pattern = pattern.upper()
        self.compiled_pattern = compile_pattern(self.pattern)
        self.chunk_size = int(chunk_size)
        self.api = api
        self.device = device
        self.pipeline = make_pipeline(api=api, device=device,
                                      variant=variant, mode=mode,
                                      chunk_size=chunk_size,
                                      work_group_size=work_group_size)
        self.build_wall_s = 0.0
        self._chunks: List[_IndexedChunk] = []
        #: Effective comparer mode; may be degraded from the request.
        self.packed = bool(packed)
        self.packed_disabled_reason: Optional[str] = None
        if self.packed and self.compiled_pattern.plen \
                > MAX_PACKED_PATTERN:
            self._disable_packed(
                f"pattern length {self.compiled_pattern.plen} exceeds "
                f"the {MAX_PACKED_PATTERN}-base packed window")
        self._stats_lock = threading.Lock()
        self._queries_packed = 0
        self._queries_fallback = 0
        self._batches = 0
        self._queries_total = 0
        self._entries_scanned = 0

    def _disable_packed(self, reason: str) -> None:
        """Degrade the whole index to the byte comparer, keeping note."""
        self.packed = False
        self.packed_disabled_reason = reason
        for entry in self._chunks:
            entry.packed = None
        tracing.instant("index_packed_disabled", cat="index",
                        reason=reason)

    # -- identity -------------------------------------------------------

    def manifest(self) -> RunManifest:
        """The index's fingerprintable identity.

        Reuses the checkpoint manifest with an empty query tuple: the
        finder's output depends on everything a search manifest names
        *except* the queries.
        """
        return RunManifest(
            genome=self.assembly.name,
            chromosomes=tuple((chrom.name, len(chrom))
                              for chrom in self.assembly.chromosomes),
            pattern=self.pattern,
            queries=(),
            chunk_size=self.chunk_size)

    def fingerprint(self) -> str:
        """SHA-256 identity of this index (manifest fingerprint).

        Two indexes with equal fingerprints were built from the same
        genome, pattern and chunk layout and therefore produce
        identical wire responses — the property the zero-downtime
        rollover path checks before and after a swap.
        """
        return self.manifest().fingerprint()

    @property
    def chromosomes(self) -> Tuple[str, ...]:
        """Chromosome names in assembly order.

        Assembly order *is* the global chunk order (``Assembly.chunks``
        walks chromosomes in sequence), so this tuple doubles as the
        merge rank the routing tier uses to reassemble partitioned
        responses byte-identically.
        """
        return tuple(c.name for c in self.assembly.chromosomes)

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def site_count(self) -> int:
        return sum(entry.loci.size for entry in self._chunks)

    @property
    def entries(self) -> Sequence[_IndexedChunk]:
        """Read-only view of the per-chunk resident candidate arrays.

        The sharded serving tier partitions these by chunk and
        publishes each shard's slice through shared memory.
        """
        return tuple(self._chunks)

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, assembly: Assembly, pattern: str,
              chunk_size: int = DEFAULT_CHUNK_SIZE,
              api: str = "sycl", device: str = "MI100",
              variant: str = "base", mode: str = "vectorized",
              work_group_size: int = 256,
              fault_plan: Optional[str] = None,
              max_retries: int = 2,
              packed: bool = True) -> "GenomeSiteIndex":
        """Scan the whole assembly through the finder kernel once.

        ``fault_plan`` accepts the same deterministic spec the streaming
        engine uses (:mod:`repro.observability.faults`); an injected
        failure on a chunk is retried up to ``max_retries`` times, so a
        transient fault during the build never changes the index
        contents — the serving-equivalence tests pin this down.

        ``packed=True`` (default) additionally packs every chunk's
        candidate windows into resident 2-bit planes right after the
        finder pass; a chunk byte outside uppercase A/C/G/T/N (or a
        pattern longer than 32) degrades the whole index to the byte
        comparer instead of serving wrong or lossy site strings.
        """
        index = cls(assembly, pattern, chunk_size=chunk_size, api=api,
                    device=device, variant=variant, mode=mode,
                    work_group_size=work_group_size, packed=packed)
        injector = faults.resolve_injector(fault_plan, device=device)
        started = time.perf_counter()
        plen = index.compiled_pattern.plen
        for number, chunk in enumerate(
                assembly.chunks(chunk_size, plen)):
            attempts = max_retries + 1
            for attempt in range(attempts):
                try:
                    with tracing.span("index_chunk", cat="index",
                                      chunk=number, attempt=attempt):
                        if injector is not None:
                            injector.inject(number)
                        count, loci, flags = \
                            index.pipeline.find_candidates(
                                chunk, index.compiled_pattern)
                    break
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:
                    tracing.instant("index_chunk_retry", cat="fault",
                                    chunk=number, attempt=attempt,
                                    error=type(exc).__name__)
                    if attempt + 1 >= attempts:
                        raise SiteIndexError(
                            f"index build failed on chunk {number} "
                            f"after {attempts} attempt(s): "
                            f"{exc!r}") from exc
            entry = _IndexedChunk(
                chrom=chunk.chrom, start=int(chunk.start),
                scan_length=int(chunk.scan_length),
                length=int(chunk.data.size),
                loci=np.ascontiguousarray(loci, dtype=np.uint32),
                flags=np.ascontiguousarray(flags, dtype=np.uint8),
                data=chunk.data)
            if index.packed:
                if acgtn_only(chunk.data):
                    entry.packed = pack_site_windows(
                        chunk.data, entry.loci, plen)
                else:
                    index._disable_packed(
                        f"chunk {number} ({chunk.chrom}:{chunk.start}) "
                        f"holds bytes outside uppercase A/C/G/T/N")
            index._chunks.append(entry)
        index.build_wall_s = time.perf_counter() - started
        tracing.instant("index_built", cat="index",
                        chunks=index.chunk_count,
                        sites=index.site_count,
                        packed=index.packed)
        return index

    # -- queries --------------------------------------------------------

    def query_batch(self, queries: Sequence[Query]
                    ) -> List[List[OffTargetHit]]:
        """Run one batched comparer pass for every query at once.

        Returns one hit list per query, in input order.  All queries of
        a micro-batch — potentially from many concurrent requests —
        ride in a single comparer launch per chunk, which is the
        continuous-batching payoff: launch count stays ``chunks``, not
        ``chunks x requests``.
        """
        if not queries:
            return []
        plen = self.compiled_pattern.plen
        for query in queries:
            if len(query.sequence) != plen:
                raise ValueError(
                    f"query {query.sequence!r} has length "
                    f"{len(query.sequence)}, index pattern "
                    f"{self.pattern!r} has length {plen}")
        queries = list(queries)
        compiled = [compile_pattern(q.sequence) for q in queries]
        with self._stats_lock:
            self._batches += 1
            self._queries_total += len(compiled)
            if self.packed:
                packed_n = sum(1 for cq in compiled
                               if window_packable(cq))
                self._queries_packed += packed_n
                self._queries_fallback += len(compiled) - packed_n
        hits: List[List[OffTargetHit]] = [[] for _ in queries]
        scanned = 0
        for entry_hits in self.pipeline.compare_resident(
                self._resident_entries(), queries, compiled,
                batched=True):
            scanned += 1
            for qi, query_hits in enumerate(entry_hits):
                hits[qi].extend(query_hits)
        with self._stats_lock:
            self._entries_scanned += scanned
        return hits

    def query_batch_with_extras(
            self, queries: Sequence[Query],
            extras: Sequence[ResidentChunk],
    ) -> Tuple[List[List[OffTargetHit]],
               List[List[List[OffTargetHit]]], int]:
        """One comparer batch over resident chunks *plus* extras.

        ``extras`` are ephemeral, request-scoped resident entries —
        the variant layer's patched haplotype chunks.  They ride the
        *same* single batched comparer pass as the resident reference
        chunks (the ``batches`` counter moves by exactly one), which
        is the whole point: searching K haplotypes costs one pass, not
        K+1.

        Returns ``(reference_hits, extra_hits, reference_chunks)``:
        per-query merged hits over the resident index, then one
        per-query hit-list group per extra entry (in ``extras``
        order; positions are relative to each extra's own coordinate
        frame), and the number of resident chunks scanned.
        """
        if not queries:
            raise ValueError(
                "query_batch_with_extras needs at least one query")
        plen = self.compiled_pattern.plen
        for query in queries:
            if len(query.sequence) != plen:
                raise ValueError(
                    f"query {query.sequence!r} has length "
                    f"{len(query.sequence)}, index pattern "
                    f"{self.pattern!r} has length {plen}")
        queries = list(queries)
        extras = list(extras)
        compiled = [compile_pattern(q.sequence) for q in queries]
        n_ref = sum(1 for entry in self._chunks if entry.loci.size)
        with self._stats_lock:
            self._batches += 1
            self._queries_total += len(compiled)
            self._entries_scanned += n_ref + len(extras)
            if self.packed:
                packed_n = sum(1 for cq in compiled
                               if window_packable(cq))
                self._queries_packed += packed_n
                self._queries_fallback += len(compiled) - packed_n

        def entry_stream():
            yield from self._resident_entries()
            yield from extras

        hits: List[List[OffTargetHit]] = [[] for _ in queries]
        extra_hits: List[List[List[OffTargetHit]]] = []
        for ei, entry_hits in enumerate(self.pipeline.compare_resident(
                entry_stream(), queries, compiled, batched=True)):
            if ei < n_ref:
                for qi, query_hits in enumerate(entry_hits):
                    hits[qi].extend(query_hits)
            else:
                extra_hits.append(entry_hits)
        return hits, extra_hits, n_ref

    def _resident_entries(self):
        """Yield non-empty chunks as comparer-ready resident entries.

        Chunk bases were cached (as zero-copy views over the assembly)
        at build/load time, so no per-batch ``assembly.fetch`` happens
        on the serving hot path; in packed mode the resident 2-bit
        planes ride along for the bit-parallel comparer.
        """
        for entry in self._chunks:
            if entry.loci.size == 0:
                continue
            data = entry.data
            if data is None:  # pre-cache index state (defensive)
                data = self.assembly.fetch(entry.chrom, entry.start,
                                           entry.start + entry.length)
                entry.data = data
            yield ResidentChunk(chrom=entry.chrom, start=entry.start,
                                scan_length=entry.scan_length,
                                data=data, loci=entry.loci,
                                flags=entry.flags,
                                packed=entry.packed)

    def comparer_stats(self) -> Dict[str, object]:
        """Comparer-mode introspection for the ``stats`` server op."""
        with self._stats_lock:
            queries_packed = self._queries_packed
            queries_fallback = self._queries_fallback
            batches = self._batches
            queries_total = self._queries_total
            entries_scanned = self._entries_scanned
        return {
            "mode": "packed" if self.packed else "byte",
            "packed_disabled_reason": self.packed_disabled_reason,
            "queries_packed": queries_packed,
            "queries_fallback": queries_fallback,
            # One ``query_batch`` call == one batched comparer pass over
            # the resident chunks.  ``queries_total / batches`` therefore
            # proves how many guides shared each launch pass — the
            # design op's no-per-guide-rescan evidence.
            "batches": batches,
            "queries_total": queries_total,
            # Entries (resident chunks + ephemeral variant patches) the
            # comparer visited; the variant op's single-batch proof
            # checks ``batches`` moved by one while this moved by
            # reference chunks + patched chunks.
            "entries_scanned": entries_scanned,
        }

    # -- persistence ----------------------------------------------------

    def save(self, directory: str) -> None:
        """Persist the index for warm-starting a later server.

        The site arrays go to ``sites.npz`` (written via temp file +
        atomic rename); ``index.json`` records the format version, the
        manifest fingerprint and the payload's SHA-256, so :meth:`load`
        can refuse mismatched or corrupted state up front.  A packed
        index persists its 2-bit window planes alongside the site
        arrays, so a warm-started server skips the packing pass too.
        """
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        chrom_names = sorted({entry.chrom for entry in self._chunks})
        chrom_ids = {name: i for i, name in enumerate(chrom_names)}
        offsets = np.zeros(len(self._chunks) + 1, dtype=np.int64)
        for i, entry in enumerate(self._chunks):
            offsets[i + 1] = offsets[i] + entry.loci.size
        arrays = {
            "chunk_chrom": np.array(
                [chrom_ids[e.chrom] for e in self._chunks],
                dtype=np.int64),
            "chunk_start": np.array([e.start for e in self._chunks],
                                    dtype=np.int64),
            "chunk_scan": np.array(
                [e.scan_length for e in self._chunks], dtype=np.int64),
            "chunk_length": np.array([e.length for e in self._chunks],
                                     dtype=np.int64),
            "site_offsets": offsets,
            "loci": (np.concatenate([e.loci for e in self._chunks])
                     if self._chunks else np.zeros(0, np.uint32)),
            "flags": (np.concatenate([e.flags for e in self._chunks])
                      if self._chunks else np.zeros(0, np.uint8)),
        }
        if self.packed:
            arrays["packed_words"] = (
                np.concatenate([e.packed.words for e in self._chunks])
                if self._chunks else np.zeros(0, np.uint64))
            arrays["packed_invalid"] = (
                np.concatenate([e.packed.invalid
                                for e in self._chunks])
                if self._chunks else np.zeros(0, np.uint64))
        sites_path = os.path.join(directory, SITES_NAME)
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".sites-",
                                   suffix=".part")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, sites_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with open(sites_path, "rb") as handle:
            sites_sha = hashlib.sha256(handle.read()).hexdigest()
        _atomic_write_json(
            os.path.join(directory, INDEX_MANIFEST_NAME), {
                "version": INDEX_VERSION,
                "fingerprint": self.manifest().fingerprint(),
                "genome": self.assembly.name,
                "pattern": self.pattern,
                "chunk_size": self.chunk_size,
                "chunks": self.chunk_count,
                "sites": self.site_count,
                "chrom_names": chrom_names,
                "sites_sha256": sites_sha,
                "packed": self.packed,
            })
        tracing.instant("index_saved", cat="index", directory=directory)

    @classmethod
    def load(cls, directory: str, assembly: Assembly,
             api: str = "sycl", device: str = "MI100",
             variant: str = "base", mode: str = "vectorized",
             work_group_size: int = 256,
             packed: bool = True) -> "GenomeSiteIndex":
        """Warm-start from a saved directory, validating everything.

        The stored fingerprint must match one recomputed from the live
        ``assembly`` plus the stored pattern/chunk size — so loading an
        index against a different genome (or after the genome changed)
        refuses instead of silently serving wrong sites.  A different
        on-disk format version raises :class:`SiteIndexVersionError`
        (rebuild, don't misread).  ``packed`` selects the resident
        comparer mode: stored planes are reused when present, packed
        fresh from the assembly otherwise.
        """
        directory = os.fspath(directory)
        manifest_path = os.path.join(directory, INDEX_MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="ascii") as handle:
                header = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SiteIndexError(
                f"unreadable index header {manifest_path!r}: "
                f"{exc}") from exc
        if header.get("version") != INDEX_VERSION:
            raise SiteIndexVersionError(
                f"unsupported index version {header.get('version')!r} "
                f"in {manifest_path!r} (this build reads "
                f"{INDEX_VERSION}); rebuild the index")
        index = cls(assembly, header["pattern"],
                    chunk_size=int(header["chunk_size"]), api=api,
                    device=device, variant=variant, mode=mode,
                    work_group_size=work_group_size, packed=packed)
        fingerprint = index.manifest().fingerprint()
        if header.get("fingerprint") != fingerprint:
            raise SiteIndexMismatchError(
                f"index at {directory!r} was built for a different "
                f"genome/pattern/chunk layout (stored fingerprint "
                f"{header.get('fingerprint')!r}, this run "
                f"{fingerprint!r}); rebuild the index or point the "
                f"server at the matching genome")
        sites_path = os.path.join(directory, SITES_NAME)
        try:
            with open(sites_path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            raise SiteIndexError(
                f"unreadable index payload {sites_path!r}: "
                f"{exc}") from exc
        digest = hashlib.sha256(blob).hexdigest()
        if digest != header.get("sites_sha256"):
            raise SiteIndexError(
                f"index payload {sites_path!r} fails its SHA-256 check "
                f"(stored {header.get('sites_sha256')!r}, actual "
                f"{digest!r}); the file is corrupt — rebuild the index")
        import io
        plen = index.compiled_pattern.plen
        with np.load(io.BytesIO(blob)) as arrays:
            chrom_names = list(header["chrom_names"])
            offsets = arrays["site_offsets"]
            loci_all = arrays["loci"]
            flags_all = arrays["flags"]
            stored_words = (arrays["packed_words"]
                            if "packed_words" in arrays else None)
            stored_invalid = (arrays["packed_invalid"]
                              if "packed_invalid" in arrays else None)
            for i in range(arrays["chunk_start"].size):
                lo, hi = int(offsets[i]), int(offsets[i + 1])
                start = int(arrays["chunk_start"][i])
                length = int(arrays["chunk_length"][i])
                chrom = chrom_names[int(arrays["chunk_chrom"][i])]
                entry = _IndexedChunk(
                    chrom=chrom, start=start,
                    scan_length=int(arrays["chunk_scan"][i]),
                    length=length,
                    loci=loci_all[lo:hi].copy(),
                    flags=flags_all[lo:hi].copy(),
                    data=assembly.fetch(chrom, start, start + length))
                if index.packed:
                    if stored_words is not None:
                        entry.packed = PackedSites(
                            words=stored_words[lo:hi].copy(),
                            invalid=stored_invalid[lo:hi].copy())
                    elif acgtn_only(entry.data):
                        entry.packed = pack_site_windows(
                            entry.data, entry.loci, plen)
                    else:
                        index._disable_packed(
                            f"chunk {i} ({chrom}:{start}) holds bytes "
                            f"outside uppercase A/C/G/T/N")
                index._chunks.append(entry)
        tracing.instant("index_loaded", cat="index", directory=directory,
                        chunks=index.chunk_count,
                        sites=index.site_count, packed=index.packed)
        return index
