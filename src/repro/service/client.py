"""Blocking JSON-lines client and a thread-per-client load generator.

:class:`ServiceClient` speaks the :mod:`repro.service.server` protocol
over a plain socket — one JSON object per line each way — and decodes
``query`` responses back into :class:`~repro.core.records.OffTargetHit`
lists so callers get exactly the objects an offline search produces.
Server-reported failures surface as :class:`ServiceError` with the
machine-readable ``code`` (``overloaded``, ``deadline``, ...) so
callers can implement backoff.

A dropped connection mid-request is retried transparently: queries are
idempotent, so the client reconnects with capped exponential backoff
and resends the *same* request (same ``id``) up to ``retries`` times
before surfacing a ``disconnected`` :class:`ServiceError` — a backend
restart or a server-side connection drop costs a caller latency, not
an exception.  ``reconnects`` counts how often that happened.

:func:`run_load` is the load generator: N threads, each with its own
connection, issuing queries back-to-back for a duration, reporting
client-side throughput and latency percentiles plus a final server
``stats`` snapshot.  ``python -m repro.service.client --smoke`` builds
a tiny synthetic index, serves it in-process and runs a short load —
the 5-second smoke `make service` and `scripts/verify.sh` run.
"""

from __future__ import annotations

import argparse
import json
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.config import Query
from ..core.records import OffTargetHit
from .scheduler import DeadlineExceeded, ServiceOverloaded


class ServiceError(RuntimeError):
    """A server-reported failure; ``code`` is machine-readable."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServiceOverloadedError(ServiceError, ServiceOverloaded):
    """Typed ``overloaded`` rejection: back off and retry.

    Inherits both :class:`ServiceError` (so generic handlers and
    ``exc.code`` checks keep working) and the scheduler's
    :class:`ServiceOverloaded` (so callers can catch the same type on
    either side of the wire).
    """


class ServiceDeadlineError(ServiceError, DeadlineExceeded):
    """Typed ``deadline`` rejection, mirroring the scheduler type."""


#: Server error codes that decode to a dedicated exception type.
_ERROR_TYPES = {
    "overloaded": ServiceOverloadedError,
    "deadline": ServiceDeadlineError,
}


def _decode_hits(raw: List[List[Any]]) -> List[OffTargetHit]:
    return [OffTargetHit(query=item[0], chrom=item[1],
                         position=int(item[2]), site=item[3],
                         strand=item[4], mismatches=int(item[5]))
            for item in raw]


class ServiceClient:
    """Blocking JSON-lines client over one TCP connection.

    ``retries`` bounds transparent reconnect-and-resend attempts after
    a dropped connection (0 disables them); ``backoff_s`` is the first
    retry delay, doubling per attempt up to ``backoff_cap_s``.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0,
                 retries: int = 2, backoff_s: float = 0.05,
                 backoff_cap_s: float = 1.0):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        #: How many times a dropped connection was transparently
        #: reopened and the request resent.
        self.reconnects = 0
        self._seq = 0
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout_s)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if "id" not in request:
            self._seq += 1
            request["id"] = f"c{self._seq}"
        payload = json.dumps(request).encode("ascii") + b"\n"
        attempts = self.retries + 1
        delay = self.backoff_s
        last: Optional[BaseException] = None
        response = None
        for attempt in range(attempts):
            try:
                if attempt:
                    # Reconnect and resend the same request id: queries
                    # are idempotent, so a duplicate execution is safe
                    # and the id keeps responses attributable.
                    time.sleep(delay)
                    delay = min(delay * 2, self.backoff_cap_s)
                    try:
                        self.close()
                    except OSError:
                        pass  # the broken socket is being replaced
                    self._connect()
                    self.reconnects += 1
                self._file.write(payload)
                self._file.flush()
                line = self._file.readline()
                if not line:
                    raise ConnectionResetError(
                        "server closed the connection")
                response = json.loads(line)
                break
            except ConnectionError as exc:
                # ConnectionResetError / BrokenPipeError / refused on
                # reconnect.  Socket timeouts are deliberately NOT
                # retried: the server may still be working on the
                # request, and piling on makes an overload worse.
                last = exc
        if response is None:
            raise ServiceError(
                "disconnected",
                f"server closed the connection ({attempts} attempt"
                f"{'s' if attempts != 1 else ''}): {last}")
        if response.get("id") not in (None, request["id"]):
            raise ServiceError(
                "protocol",
                f"response id {response.get('id')!r} does not match "
                f"request id {request['id']!r}")
        if not response.get("ok"):
            code = response.get("error", "unknown")
            raise _ERROR_TYPES.get(code, ServiceError)(
                code, response.get("message", ""))
        return response

    def query(self, queries: Sequence[Query],
              deadline_s: Optional[float] = None,
              enzyme: Optional[str] = None
              ) -> List[List[OffTargetHit]]:
        """Run one request; returns one hit list per query, in order."""
        request: Dict[str, Any] = {
            "op": "query",
            "queries": [[q.sequence, q.max_mismatches]
                        for q in queries]}
        if deadline_s is not None:
            request["deadline_s"] = deadline_s
        if enzyme is not None:
            request["enzyme"] = enzyme
        response = self._call(request)
        return [_decode_hits(per) for per in response["hits"]]

    def design(self, chrom: str, start: int, end: int,
               mismatches: int, top: int = 5, estimator: str = "mit",
               guide_length: Optional[int] = None,
               gc_min: Optional[float] = None,
               gc_max: Optional[float] = None,
               max_homopolymer: Optional[int] = None,
               deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """Run one guide-design request (the ``design`` op).

        Returns the response payload with ``reports`` decoded into
        :class:`~repro.design.ranking.GuideDesignReport` rows (the raw
        wire rows stay under ``"report_rows"``); works identically
        against a single server, a sharded server and a router.
        """
        from ..design.ranking import decode_reports

        request: Dict[str, Any] = {
            "op": "design", "chrom": chrom, "start": int(start),
            "end": int(end), "mismatches": int(mismatches),
            "top": int(top), "estimator": estimator}
        if guide_length is not None:
            request["guide_length"] = int(guide_length)
        if gc_min is not None:
            request["gc_min"] = float(gc_min)
        if gc_max is not None:
            request["gc_max"] = float(gc_max)
        if max_homopolymer is not None:
            request["max_homopolymer"] = int(max_homopolymer)
        if deadline_s is not None:
            request["deadline_s"] = deadline_s
        response = self._call(request)
        response["report_rows"] = response["reports"]
        response["reports"] = decode_reports(response["report_rows"])
        return response

    def variant_search(self, queries: Sequence[Query],
                       haplotypes: Sequence[Any],
                       chromosomes: Optional[Sequence[str]] = None,
                       enzyme: Optional[str] = None) -> Dict[str, Any]:
        """Run one variant-aware search (the ``variant`` op).

        ``haplotypes`` accepts :class:`~repro.variants.model.Haplotype`
        objects or already-encoded ``{"name", "variants"}`` mappings;
        returns the response payload (``events`` rows laid out as
        ``event_fields``) unchanged — it is byte-identical across a
        single server, a sharded server and a router.
        """
        encoded = [h.to_payload() if hasattr(h, "to_payload") else h
                   for h in haplotypes]
        request: Dict[str, Any] = {
            "op": "variant",
            "queries": [[q.sequence, q.max_mismatches]
                        for q in queries],
            "haplotypes": encoded}
        if chromosomes is not None:
            request["chromosomes"] = list(chromosomes)
        if enzyme is not None:
            request["enzyme"] = enzyme
        return self._call(request)

    def enzymes(self) -> Dict[str, Any]:
        """The server's declarative enzyme registry listing."""
        return self._call({"op": "enzymes"})

    def stats(self) -> Dict[str, Any]:
        return self._call({"op": "stats"})["stats"]

    def health(self) -> Dict[str, Any]:
        return self._call({"op": "health"})


# ---------------------------------------------------------------------------
# Load generator
# ---------------------------------------------------------------------------

def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def run_load(host: str, port: int, queries: Sequence[Query],
             clients: int = 8, duration_s: float = 5.0,
             deadline_s: Optional[float] = None) -> Dict[str, Any]:
    """Hammer the server with ``clients`` concurrent connections.

    Each client thread issues ``queries`` as one request, back to back,
    until the clock runs out.  Overload/deadline rejections count as
    ``errors`` (the server telling us to back off), transport failures
    re-raise.  Returns client-side throughput/latency plus the server's
    own ``stats`` snapshot taken after the run.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if not duration_s > 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    results: List[Tuple[int, int, List[float]]] = []
    results_lock = threading.Lock()
    start_gate = threading.Event()
    stop_at_holder: List[float] = []

    def _worker() -> None:
        completed = errors = 0
        latencies: List[float] = []
        with ServiceClient(host, port) as client:
            start_gate.wait()
            stop_at = stop_at_holder[0]
            while time.perf_counter() < stop_at:
                began = time.perf_counter()
                try:
                    client.query(queries, deadline_s=deadline_s)
                except ServiceError as exc:
                    if exc.code in ("overloaded", "deadline"):
                        errors += 1
                        continue
                    raise
                latencies.append(
                    (time.perf_counter() - began) * 1000.0)
                completed += 1
        with results_lock:
            results.append((completed, errors, latencies))

    threads = [threading.Thread(target=_worker, name=f"load-{i}")
               for i in range(clients)]
    for thread in threads:
        thread.start()
    began = time.perf_counter()
    stop_at_holder.append(began + duration_s)
    start_gate.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - began

    with ServiceClient(host, port) as client:
        server_stats = client.stats()

    completed = sum(r[0] for r in results)
    errors = sum(r[1] for r in results)
    latencies = sorted(ms for r in results for ms in r[2])
    return {
        "clients": clients,
        "duration_s": elapsed,
        "queries_per_request": len(queries),
        "requests": completed,
        "errors": errors,
        "throughput_rps": completed / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "count": len(latencies),
            "mean": (sum(latencies) / len(latencies)
                     if latencies else 0.0),
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "server_stats": server_stats,
    }


# ---------------------------------------------------------------------------
# Smoke entry point: `python -m repro.service.client --smoke`
# ---------------------------------------------------------------------------

def _smoke(clients: int, duration_s: float, shards: int = 0,
           packed: bool = True, ring_records: Optional[int] = None,
           auto_degrade: bool = False, adaptive: bool = False) -> int:
    from ..genome.synthetic import synthetic_assembly
    from .index import GenomeSiteIndex
    from .server import OffTargetServer

    assembly = synthetic_assembly("hg19", scale=0.00005, seed=7)
    index = GenomeSiteIndex.build(assembly, "NNNNNNRG",
                                  chunk_size=1 << 15, packed=packed)
    serving = index
    if shards:
        from .shards import DEFAULT_RING_RECORDS, ShardedSiteIndex
        serving = ShardedSiteIndex(
            index, shards=shards,
            ring_records=(DEFAULT_RING_RECORDS if ring_records is None
                          else ring_records),
            auto_degrade=auto_degrade)
    server = OffTargetServer(serving, max_batch=8, max_wait_ms=2.0,
                             adaptive=adaptive,
                             direct_below=2 if adaptive else 0)
    handle = server.start_background()
    try:
        report = run_load(handle.host, handle.port,
                          [Query("GACGTCNN", 3), Query("TTACGANN", 2)],
                          clients=clients, duration_s=duration_s)
    finally:
        handle.stop()
        if shards:
            serving.close()
    report["shards"] = shards
    report["comparer_mode"] = "packed" if index.packed else "byte"
    if shards:
        report["degraded"] = serving.degraded
        report["ring_records"] = serving.ring_records
    print(json.dumps(report, indent=2, sort_keys=True))
    if report["requests"] <= 0 or report["throughput_rps"] <= 0:
        print("smoke FAILED: no requests completed")
        return 1
    print(f"smoke OK: {report['requests']} requests, "
          f"{report['throughput_rps']:.1f} req/s over "
          f"{report['duration_s']:.1f} s with {clients} clients")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="Load generator / smoke test for the off-target "
                    "query service.")
    parser.add_argument("--smoke", action="store_true",
                        help="serve a tiny synthetic index in-process "
                             "and run a short load against it")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--shards", type=int, default=0,
                        help="with --smoke: serve through a sharded "
                             "index with N worker processes "
                             "(0 = single-process)")
    parser.add_argument("--packed", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="with --smoke: resident comparer mode "
                             "(packed 2-bit by default; --no-packed "
                             "forces the byte comparer)")
    parser.add_argument("--ring-records", type=int, default=None,
                        help="with --smoke --shards N: per-shard "
                             "result-ring capacity in records "
                             "(0 disables rings — every batch takes "
                             "the pickle path; tiny values exercise "
                             "the overflow fallback)")
    parser.add_argument("--auto-degrade", action="store_true",
                        help="with --smoke --shards N: let the tier "
                             "serve in-process when the host cannot "
                             "win the scatter/gather hop")
    parser.add_argument("--adaptive", action="store_true",
                        help="with --smoke: adaptive scheduler "
                             "(max_batch retuning + small-batch "
                             "direct routing)")
    parser.add_argument("--query", action="append", default=[],
                        metavar="SEQ:MM",
                        help="query spec, repeatable (default two "
                             "demo guides)")
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke(args.clients, args.duration, shards=args.shards,
                      packed=args.packed,
                      ring_records=args.ring_records,
                      auto_degrade=args.auto_degrade,
                      adaptive=args.adaptive)
    if not args.port:
        parser.error("--port is required unless --smoke is given")
    if args.query:
        queries = []
        for spec in args.query:
            seq, _, mm = spec.rpartition(":")
            if not seq:
                parser.error(f"bad query spec {spec!r}: expected "
                             f"SEQ:MM")
            queries.append(Query(seq.upper(), int(mm)))
    else:
        queries = [Query("GACGTCNN", 3), Query("TTACGANN", 2)]
    report = run_load(args.host, args.port, queries,
                      clients=args.clients, duration_s=args.duration)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
