"""Multi-host routing tier: partition by chromosome, stay byte-identical.

:class:`OffTargetRouter` is an asyncio front end that speaks the same
JSON-lines protocol as :class:`~repro.service.server.OffTargetServer`
and fans each ``query`` out to a fleet of backend index servers, each
holding a :class:`~repro.service.index.GenomeSiteIndex` over a subset
of the genome's chromosomes.  It is the horizontal step after the
in-host shard tier: shards partition *chunks inside one process*,
the router partitions *chromosomes across processes and hosts*.

The core invariant is inherited from :mod:`repro.service.shards`'
deterministic merge and generalized one level up: a single-process
server emits hits in global chunk order, which is chromosome-major in
assembly order; each backend returns its partition's hits in that same
relative order; so a stable sort of the gathered wire rows by
chromosome rank reproduces the single-server byte stream exactly — no
matter which replica answered, whether a hedge won, or whether the
fleet was mid-rollover.

Robustness machinery, all exercised deterministically in tests via the
server's request-level fault plans (``crash`` / ``disconnect`` /
``stall`` in :mod:`repro.observability.faults`):

* **Health probing** — a background task probes every backend's
  ``health`` op; ``eject_after`` consecutive failures ejects it from
  the routing table, a later successful probe readmits it (and
  refreshes its chromosome set, which may have changed across a
  restart).
* **Hedged reads** — when a sub-request has not answered within a
  delay derived from the observed p95 sub-request latency (or a fixed
  ``hedge_ms``), the same sub-request (same id) is re-issued to a
  replica and the first answer wins; the loser is reaped in the
  background — its connection survives for reuse — and its late
  response is counted as deduplicated by request id.
* **Bounded retry with backoff** — connection loss and typed
  ``overloaded`` rejections retry against the partition's replicas
  with capped exponential backoff up to ``max_attempts``; ``deadline``
  errors are *never* retried (the time is already spent — retrying
  would lie about latency).
* **Zero-downtime rollover** — the ``rollover`` op walks the fleet one
  backend at a time, driving each backend's ``reload`` op (background
  build, canary warm, atomic scheduler swap, old-index drain) and
  re-probing before moving on, so the fleet never has two backends
  rebuilding at once and traffic keeps flowing throughout.

Replication is declarative: each backend announces the chromosomes it
holds, the router groups chromosomes by their holder *set*, and every
sub-request carries an explicit ``chromosomes`` filter — so any
replica holding a superset can serve a partition without duplicating
hits.

Stdlib only, like the rest of the serving stack.  ``python -m
repro.service.router --smoke`` boots a 3-backend subprocess fleet,
SIGKILLs one backend mid-load, rolls the survivors, and asserts both
byte-identity against a single-process server and zero leaked
processes/ready files.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Deque, Dict, List, Optional, Sequence, Set,
                    Tuple)

from ..core.records import OffTargetHit
from ..design.enumerate import PatternAnatomy, decode_candidates
from ..design.estimators import get_estimator
from ..design.ranking import (decode_design_spec, design_payload,
                              rank_candidates, scoring_guide_length)
from ..genome.assembly import Assembly
from ..observability import tracing
from ..variants.model import VariantError, decode_haplotypes
from ..variants.overlay import sort_event_rows, variant_payload
from .server import (MAX_LINE_BYTES, ServerHandle,
                     _decode_chromosomes, _decode_queries)

#: Idle pooled connections kept per backend.
POOL_MAX_IDLE = 8

#: Read limit for backend *responses*.  Requests from untrusted clients
#: stay capped at MAX_LINE_BYTES, but a backend answering a wide design
#: fan-out (dozens of queries, each with thousands of hits) can
#: legitimately return a line far past 1 MiB — mirror the sync client,
#: whose response reads are unbounded, with a generous ceiling.
BACKEND_LINE_BYTES = MAX_LINE_BYTES << 7

#: Settled request ids remembered for hedge-duplicate accounting.
SETTLED_IDS_KEPT = 4096

_Conn = Tuple[asyncio.StreamReader, asyncio.StreamWriter]


class RouterError(RuntimeError):
    """Base class for routing failures."""


class _RouteUnavailable(RouterError):
    """No replica could serve a partition within the retry budget."""


class _RouteDeadline(RouterError):
    """A backend reported the request's deadline expired."""


class _RoutePassthrough(RouterError):
    """A backend error that must reach the client unchanged."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class _Backend:
    """One backend server: address, liveness, discovery, counters."""

    def __init__(self, backend_id: int, host: str, port: int):
        self.backend_id = backend_id
        self.host = host
        self.port = port
        self.alive = False
        #: Seen healthy at least once (distinguishes readmission from
        #: first discovery).
        self.ever_seen = False
        self.chromosomes: Tuple[str, ...] = ()
        self.pattern: Optional[str] = None
        self.fingerprint: Optional[str] = None
        self.consecutive_failures = 0
        self.ejections = 0
        self.readmissions = 0
        self.probes_ok = 0
        self.probes_failed = 0
        self.requests = 0
        self.idle: Deque[_Conn] = deque()

    @property
    def label(self) -> str:
        return f"{self.host}:{self.port}"

    def snapshot(self) -> Dict[str, Any]:
        return {
            "backend": self.label,
            "alive": self.alive,
            "chromosomes": list(self.chromosomes),
            "fingerprint": self.fingerprint,
            "requests": self.requests,
            "consecutive_failures": self.consecutive_failures,
            "ejections": self.ejections,
            "readmissions": self.readmissions,
            "probes_ok": self.probes_ok,
            "probes_failed": self.probes_failed,
        }


@dataclass
class _Group:
    """One partition: chromosomes sharing an identical replica set."""

    backends: List[_Backend]
    chromosomes: List[str] = field(default_factory=list)


def parse_backend(spec: Any) -> Tuple[str, int]:
    """Accept ``"host:port"`` strings or ``(host, port)`` pairs."""
    if isinstance(spec, str):
        host, sep, port_text = spec.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"bad backend spec {spec!r}: expected HOST:PORT")
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(
                f"bad backend port in {spec!r}") from None
    else:
        host, port = spec
        port = int(port)
    if not 0 < port < 65536:
        raise ValueError(f"bad backend port {port} in {spec!r}")
    return host, port


def partition_chromosomes(assembly: Assembly, partitions: int
                          ) -> List[List[str]]:
    """Split chromosomes into contiguous, size-balanced partitions.

    Contiguous in assembly order (the global merge order), greedily
    balanced by base count; every partition is non-empty, so
    ``partitions`` must not exceed the chromosome count.
    """
    chroms = assembly.chromosomes
    if not 1 <= partitions <= len(chroms):
        raise ValueError(
            f"cannot split {len(chroms)} chromosome(s) into "
            f"{partitions} partition(s)")
    total = sum(len(c) for c in chroms)
    out: List[List[str]] = []
    cursor = 0
    remaining = total
    for part in range(partitions):
        take = [chroms[cursor].name]
        size = len(chroms[cursor])
        cursor += 1
        # Leave one chromosome for each remaining partition.
        spare = len(chroms) - cursor - (partitions - part - 1)
        target = remaining / (partitions - part)
        while spare > 0 and size + len(chroms[cursor]) / 2 < target:
            take.append(chroms[cursor].name)
            size += len(chroms[cursor])
            cursor += 1
            spare -= 1
        remaining -= size
        out.append(take)
    return out


def replica_plan(parts: Sequence[Sequence[str]], replication: int
                 ) -> List[List[str]]:
    """Chained replication: backend ``i`` holds partitions
    ``i, i-1, ..., i-replication+1`` (mod N), giving every partition
    ``replication`` holders with no extra hosts."""
    n = len(parts)
    if not 1 <= replication <= n:
        raise ValueError(
            f"replication must be in [1, {n}], got {replication}")
    out = []
    for i in range(n):
        held: List[str] = []
        for r in range(replication):
            held.extend(parts[(i - r) % n])
        out.append(held)
    return out


class OffTargetRouter:
    """Chromosome-partitioning front end over N backend index servers.

    ``backends`` is a list of ``"host:port"`` specs (or pairs).
    ``chromosome_order`` pins the global merge order; when omitted it
    is derived from discovery (config-order backends, each backend's
    chromosomes in announced order) — correct for contiguous
    partitions, but explicit order should be given whenever chained
    replication makes a backend announce non-adjacent partitions.

    ``hedge_ms``: None derives the hedge delay from the rolling p95 of
    sub-request latency; 0 disables hedging; a positive value fixes
    the delay in milliseconds.
    """

    def __init__(self, backends: Sequence[Any],
                 host: str = "127.0.0.1", port: int = 0,
                 chromosome_order: Optional[Sequence[str]] = None,
                 probe_interval_s: float = 0.5,
                 probe_timeout_s: float = 2.0,
                 eject_after: int = 2,
                 hedge_ms: Optional[float] = None,
                 max_attempts: int = 3,
                 backoff_base_s: float = 0.01,
                 backoff_cap_s: float = 0.2,
                 task_timeout_s: float = 30.0,
                 connect_timeout_s: float = 5.0,
                 reload_timeout_s: float = 300.0):
        if not backends:
            raise ValueError("a router needs at least one backend")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if eject_after < 1:
            raise ValueError(
                f"eject_after must be >= 1, got {eject_after}")
        self.host = host
        self.port = port
        self._backends = [
            _Backend(i, *parse_backend(spec))
            for i, spec in enumerate(backends)]
        self.chromosome_order = (list(chromosome_order)
                                 if chromosome_order else None)
        self.probe_interval_s = float(probe_interval_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.eject_after = int(eject_after)
        self.hedge_ms = hedge_ms
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.task_timeout_s = float(task_timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.reload_timeout_s = float(reload_timeout_s)
        # Routing table (rebuilt on discovery/ejection/readmission;
        # touched only from the event loop).
        self._groups: List[_Group] = []
        self._rank: Dict[str, int] = {}
        self._uncovered: List[str] = []
        self._routing_epoch = 0
        # Counters (event-loop only).
        self._requests = 0
        self._hedges_launched = 0
        self._hedges_won = 0
        self._hedges_lost = 0
        self._hedges_deduped = 0
        self._retries = 0
        self._rollovers = 0
        self._seq = 0
        self._flow_seq = 0
        self._sub_latencies_ms: Deque[float] = deque(maxlen=512)
        self._settled_ids: Set[str] = set()
        self._settled_order: Deque[str] = deque()
        self._stop_event: Optional[asyncio.Event] = None
        self._draining = False
        self._inflight = 0
        self._probe_task: Optional[asyncio.Task] = None
        self._closed = False

    # -- connection pool ------------------------------------------------

    async def _acquire(self, backend: _Backend) -> _Conn:
        while backend.idle:
            reader, writer = backend.idle.popleft()
            if writer.is_closing():
                continue
            return reader, writer
        return await asyncio.wait_for(
            asyncio.open_connection(backend.host, backend.port,
                                    limit=BACKEND_LINE_BYTES),
            timeout=self.connect_timeout_s)

    @staticmethod
    def _discard(conn: _Conn) -> None:
        try:
            conn[1].close()
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass

    def _release(self, backend: _Backend, conn: _Conn) -> None:
        if conn[1].is_closing() or len(backend.idle) >= POOL_MAX_IDLE:
            self._discard(conn)
        else:
            backend.idle.append(conn)

    def _close_pools(self) -> None:
        for backend in self._backends:
            while backend.idle:
                self._discard(backend.idle.popleft())

    # -- one RPC --------------------------------------------------------

    async def _rpc(self, backend: _Backend, payload: Dict[str, Any],
                   timeout_s: Optional[float]) -> Dict[str, Any]:
        """One request/response on a pooled connection.

        Raises ``ConnectionError`` (or ``asyncio.TimeoutError``) on any
        transport failure; the connection is returned to the pool only
        after a well-formed response with a matching id.
        """
        conn = await self._acquire(backend)
        reader, writer = conn
        try:
            writer.write(json.dumps(payload).encode("ascii") + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=timeout_s)
            if not line:
                raise ConnectionResetError(
                    f"backend {backend.label} closed the connection")
            response = json.loads(line)
            if not isinstance(response, dict):
                raise ValueError("backend response is not an object")
            rid = payload.get("id")
            if rid is not None and response.get("id") != rid:
                raise ConnectionResetError(
                    f"backend {backend.label} answered id "
                    f"{response.get('id')!r} for request {rid!r}")
        except BaseException:
            self._discard(conn)
            raise
        self._release(backend, conn)
        return response

    async def _timed_rpc(self, backend: _Backend,
                         payload: Dict[str, Any]) -> Dict[str, Any]:
        """RPC plus liveness accounting and latency sampling."""
        began = time.perf_counter()
        try:
            response = await self._rpc(backend, payload,
                                       self.task_timeout_s)
        except (ConnectionError, OSError, asyncio.TimeoutError,
                ValueError, json.JSONDecodeError):
            self._note_failure(backend)
            raise
        self._note_success(backend)
        backend.requests += 1
        self._sub_latencies_ms.append(
            (time.perf_counter() - began) * 1000.0)
        return response

    # -- liveness -------------------------------------------------------

    def _note_success(self, backend: _Backend) -> None:
        backend.consecutive_failures = 0

    def _note_failure(self, backend: _Backend) -> None:
        backend.consecutive_failures += 1
        if backend.alive and \
                backend.consecutive_failures >= self.eject_after:
            backend.alive = False
            backend.ejections += 1
            tracing.instant("backend_ejected", cat="router",
                            backend=backend.label,
                            failures=backend.consecutive_failures)
            self._rebuild_routing()

    async def _probe(self, backend: _Backend) -> bool:
        self._seq += 1
        try:
            response = await self._rpc(
                backend, {"op": "health", "id": f"p{self._seq}"},
                timeout_s=self.probe_timeout_s)
            ok = bool(response.get("ok")) and \
                response.get("status") in ("serving", "degraded")
        except (ConnectionError, OSError, asyncio.TimeoutError,
                ValueError, json.JSONDecodeError):
            ok = False
            response = {}
        if not ok:
            backend.probes_failed += 1
            self._note_failure(backend)
            return False
        backend.probes_ok += 1
        backend.consecutive_failures = 0
        chroms = tuple(response.get("chromosomes") or ())
        changed = (not backend.alive
                   or chroms != backend.chromosomes)
        backend.pattern = response.get("pattern")
        backend.fingerprint = response.get("fingerprint")
        backend.chromosomes = chroms
        if not backend.alive:
            backend.alive = True
            if backend.ever_seen:
                backend.readmissions += 1
                tracing.instant("backend_readmitted", cat="router",
                                backend=backend.label)
        backend.ever_seen = True
        if changed:
            self._rebuild_routing()
        return True

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.probe_interval_s)
            await asyncio.gather(
                *(self._probe(b) for b in self._backends),
                return_exceptions=True)

    # -- routing table --------------------------------------------------

    def _rebuild_routing(self) -> None:
        order: List[str] = list(self.chromosome_order or [])
        seen = set(order)
        for backend in self._backends:
            for chrom in backend.chromosomes:
                if chrom not in seen:
                    seen.add(chrom)
                    order.append(chrom)
        holders: Dict[str, List[_Backend]] = {}
        for backend in self._backends:
            if not backend.alive:
                continue
            for chrom in backend.chromosomes:
                holders.setdefault(chrom, []).append(backend)
        groups: Dict[Tuple[int, ...], _Group] = {}
        for chrom in order:
            held = holders.get(chrom)
            if not held:
                continue
            key = tuple(b.backend_id for b in held)
            groups.setdefault(key, _Group(backends=held)) \
                .chromosomes.append(chrom)
        self._rank = {c: i for i, c in enumerate(order)}
        self._groups = list(groups.values())
        self._uncovered = [c for c in order if c not in holders]
        self._routing_epoch += 1
        tracing.instant("router_routing", cat="router",
                        epoch=self._routing_epoch,
                        groups=len(self._groups),
                        uncovered=len(self._uncovered))

    # -- hedging + retry ------------------------------------------------

    def _hedge_delay_s(self) -> Optional[float]:
        """Delay before re-issuing a straggler, or None (disabled)."""
        if self.hedge_ms is not None:
            if self.hedge_ms <= 0:
                return None
            return float(self.hedge_ms) / 1000.0
        lat = self._sub_latencies_ms
        if len(lat) < 16:
            return 0.05
        values = sorted(lat)
        p95 = values[min(len(values) - 1,
                         int(round(0.95 * (len(values) - 1))))]
        # Hedge a little past p95: a request slower than that is in
        # the tail the hedge exists to cut.
        return min(1.0, max(0.01, p95 * 1.5 / 1000.0))

    def _settle_id(self, rid: str) -> None:
        self._settled_ids.add(rid)
        self._settled_order.append(rid)
        while len(self._settled_order) > SETTLED_IDS_KEPT:
            self._settled_ids.discard(self._settled_order.popleft())

    def _reap(self, task: "asyncio.Task", rid: str) -> None:
        """Await a losing hedge in the background.

        Not cancelling the loser keeps its connection usable (a
        cancelled read would have to discard it) and lets the late
        response be counted as a deduplicated duplicate of ``rid``.
        """
        async def _await_loser() -> None:
            try:
                await task
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    ValueError, json.JSONDecodeError):
                return
            except asyncio.CancelledError:
                return
            if rid in self._settled_ids:
                self._hedges_deduped += 1
                tracing.instant("hedge_deduped", cat="router", id=rid)

        asyncio.ensure_future(_await_loser())

    async def _hedged_rpc(self, primary: _Backend,
                          hedge_pool: Sequence[_Backend],
                          payload: Dict[str, Any]) -> Dict[str, Any]:
        """Issue to ``primary``; re-issue to a replica if it lags.

        First well-formed answer wins (the duplicate is reaped); a
        transport failure on one leg waits for the other before the
        whole call fails.
        """
        rid = payload["id"]
        flow_id = self._flow_seq = self._flow_seq + 1
        tracing.flow("route_subrequest", flow_id, cat="router",
                     backend=primary.label)
        primary_task = asyncio.ensure_future(
            self._timed_rpc(primary, payload))
        delay_s = self._hedge_delay_s()
        hedge_task: Optional[asyncio.Task] = None
        if hedge_pool and delay_s is not None:
            done, _ = await asyncio.wait({primary_task},
                                         timeout=delay_s)
            if not done:
                hedge = hedge_pool[0]
                self._hedges_launched += 1
                tracing.instant("hedge_launched", cat="router", id=rid,
                                primary=primary.label,
                                hedge=hedge.label)
                hedge_task = asyncio.ensure_future(
                    self._timed_rpc(hedge, payload))
        tasks: Set[asyncio.Task] = {primary_task}
        if hedge_task is not None:
            tasks.add(hedge_task)
        last_exc: Optional[BaseException] = None
        while tasks:
            done, tasks = await asyncio.wait(
                tasks, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                try:
                    response = task.result()
                except (ConnectionError, OSError,
                        asyncio.TimeoutError, ValueError,
                        json.JSONDecodeError) as exc:
                    last_exc = exc
                    continue
                if hedge_task is not None:
                    if task is hedge_task:
                        self._hedges_won += 1
                        tracing.instant("hedge_won", cat="router",
                                        id=rid)
                    else:
                        self._hedges_lost += 1
                self._settle_id(rid)
                tracing.flow("route_subrequest", flow_id, cat="router",
                             end=True)
                for loser in tasks:
                    self._reap(loser, rid)
                return response
        assert last_exc is not None
        raise last_exc

    async def _sub_request(self, group: _Group,
                           payload_base: Dict[str, Any],
                           validate=None) -> Dict[str, Any]:
        """One backend sub-request: hedge, retry across replicas.

        Generic over the op (``query``, ``enumerate``, ...): returns
        the first ok response, retrying transport failures, typed
        overloads and responses ``validate`` rejects (it returns a
        problem string or None) against the partition's replicas with
        capped backoff.  ``deadline`` errors are never retried.
        """
        delay = self.backoff_base_s
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            alive = [b for b in group.backends if b.alive]
            if not alive:
                break
            primary = alive[attempt % len(alive)]
            hedge_pool = [b for b in alive if b is not primary]
            self._seq += 1
            payload = dict(payload_base, id=f"r{self._seq}")
            try:
                response = await self._hedged_rpc(primary, hedge_pool,
                                                  payload)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    ValueError, json.JSONDecodeError) as exc:
                last = exc
                if attempt + 1 < self.max_attempts:
                    self._retries += 1
                    tracing.instant("route_retry", cat="router",
                                    backend=primary.label,
                                    attempt=attempt + 1,
                                    error=type(exc).__name__)
                    await asyncio.sleep(delay)
                    delay = min(delay * 2, self.backoff_cap_s)
                continue
            if response.get("ok"):
                if validate is not None:
                    problem = validate(response)
                    if problem:
                        last = ConnectionResetError(
                            f"backend {primary.label} {problem}")
                        continue
                return response
            code = response.get("error")
            message = response.get("message", "")
            if code == "overloaded":
                # Typed overload: back off and try a replica.
                last = _RouteUnavailable(
                    f"backend {primary.label} overloaded: {message}")
                if attempt + 1 < self.max_attempts:
                    self._retries += 1
                    tracing.instant("route_retry", cat="router",
                                    backend=primary.label,
                                    attempt=attempt + 1,
                                    error="overloaded")
                    await asyncio.sleep(delay)
                    delay = min(delay * 2, self.backoff_cap_s)
                continue
            if code == "deadline":
                # Never retried: the budget is spent either way.
                raise _RouteDeadline(message)
            raise _RoutePassthrough(code or "internal", message)
        raise _RouteUnavailable(
            f"partition {group.chromosomes} unavailable after "
            f"{self.max_attempts} attempt(s): {last}")

    async def _group_request(self, group: _Group,
                             raw_queries: Any,
                             deadline_s: Optional[float]
                             ) -> List[List[List[Any]]]:
        """One partition's query sub-request.

        Returns the partition's wire-format per-query hit rows.
        """
        payload_base: Dict[str, Any] = {
            "op": "query", "queries": raw_queries,
            "chromosomes": list(group.chromosomes)}
        if deadline_s is not None:
            payload_base["deadline_s"] = deadline_s
        response = await self._sub_request(
            group, payload_base,
            validate=lambda r: (None if isinstance(r.get("hits"), list)
                                else "sent a malformed query response"))
        return response["hits"]

    # -- request handling ----------------------------------------------

    @staticmethod
    def _failure_response(failures: Sequence[BaseException]
                          ) -> Dict[str, Any]:
        """Map fan-out failures to one client error, worst first."""
        for exc in failures:
            if isinstance(exc, _RoutePassthrough):
                return {"ok": False, "error": exc.code,
                        "message": exc.message}
        for exc in failures:
            if isinstance(exc, _RouteDeadline):
                return {"ok": False, "error": "deadline",
                        "message": str(exc)}
        for exc in failures:
            if isinstance(exc, _RouteUnavailable):
                return {"ok": False, "error": "unavailable",
                        "message": str(exc)}
        exc = failures[0]
        if isinstance(exc, (asyncio.CancelledError,
                            KeyboardInterrupt, SystemExit)):
            raise exc
        return {"ok": False, "error": "internal",
                "message": f"{type(exc).__name__}: {exc}"}

    async def _fan_out(self, groups: Sequence[_Group],
                       rank: Dict[str, int], raw_queries: Any,
                       n_queries: int, deadline: Optional[float]
                       ) -> Tuple[Optional[Dict[str, Any]],
                                  List[List[List[Any]]]]:
        """Fan a query batch to every partition and merge the rows.

        Returns ``(error_response, merged_rows)`` — exactly one is
        meaningful.  The generalized deterministic merge: within one
        chromosome all rows come from a single partition already in
        single-server order, so a *stable* sort by chromosome rank
        reproduces the global chunk-major order byte-for-byte.
        """
        results = await asyncio.gather(
            *(self._group_request(group, raw_queries, deadline)
              for group in groups),
            return_exceptions=True)
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            return self._failure_response(failures), []
        merged: List[List[List[Any]]] = [[] for _ in range(n_queries)]
        for partition_hits in results:
            if len(partition_hits) != n_queries:
                return ({"ok": False, "error": "internal",
                         "message": "partition answered "
                                    f"{len(partition_hits)} queries, "
                                    f"expected {n_queries}"}, [])
            for per_query, rows in zip(merged, partition_hits):
                per_query.extend(rows)
        for per_query in merged:
            per_query.sort(key=lambda row: rank.get(row[1], len(rank)))
        return None, merged

    def _route_guard(self) -> Optional[Dict[str, Any]]:
        """The error response when the fleet cannot serve, else None."""
        if self._uncovered:
            return {"ok": False, "error": "unavailable",
                    "message": f"no live backend serves "
                               f"{self._uncovered}"}
        if not self._groups:
            return {"ok": False, "error": "unavailable",
                    "message": "no live backends discovered"}
        return None

    async def _handle_query(self, request: Dict[str, Any]
                            ) -> Dict[str, Any]:
        raw_queries = request.get("queries")
        try:
            queries = _decode_queries(raw_queries)
            deadline = request.get("deadline_s")
            if deadline is not None and (
                    isinstance(deadline, bool)
                    or not isinstance(deadline, (int, float))):
                raise ValueError(
                    f"deadline_s must be a number, got {deadline!r}")
        except ValueError as exc:
            return {"ok": False, "error": "bad-request",
                    "message": str(exc)}
        guard = self._route_guard()
        if guard is not None:
            return guard
        groups = list(self._groups)
        rank = dict(self._rank)
        with tracing.span("route_request", cat="router",
                          queries=len(queries),
                          partitions=len(groups)):
            error, merged = await self._fan_out(
                groups, rank, raw_queries, len(queries), deadline)
        if error is not None:
            return error
        self._requests += 1
        return {"ok": True, "hits": merged}

    async def _handle_design(self, request: Dict[str, Any]
                             ) -> Dict[str, Any]:
        """The ``design`` op, routed: enumerate where the chromosome
        lives, scan everywhere, rank here.

        1. The target region's candidates are enumerated via the
           ``enumerate`` op on a backend whose partition holds the
           target chromosome (only it has those bases).
        2. The unique candidate queries fan out through the exact
           query machinery (chromosome filters, hedging, retries,
           deterministic merge) — one sub-request per partition, so
           every backend still serves the whole candidate set as one
           batch over its resident index.
        3. The merged rows feed the same pure ranking/encoding code
           the in-process server uses, which is what makes a routed
           design response byte-identical to a single-server one.
        """
        try:
            spec = decode_design_spec(request)
            deadline = request.get("deadline_s")
            if deadline is not None and (
                    isinstance(deadline, bool)
                    or not isinstance(deadline, (int, float))):
                raise ValueError(
                    f"deadline_s must be a number, got {deadline!r}")
        except ValueError as exc:
            return {"ok": False, "error": "bad-request",
                    "message": str(exc)}
        guard = self._route_guard()
        if guard is not None:
            return guard
        groups = list(self._groups)
        rank = dict(self._rank)
        owner = next((g for g in groups
                      if spec.chrom in g.chromosomes), None)
        if owner is None:
            return {"ok": False, "error": "bad-request",
                    "message": f"unknown chromosome {spec.chrom!r}: "
                               f"no partition holds it"}
        enum_payload = spec.to_request("enumerate")
        with tracing.span("route_design", cat="router",
                          chrom=spec.chrom, partitions=len(groups)):
            try:
                enum_response = await self._sub_request(
                    owner, enum_payload,
                    validate=lambda r: (
                        None if isinstance(r.get("candidates"), list)
                        and isinstance(r.get("queries"), list)
                        else "sent a malformed enumerate response"))
            except (_RoutePassthrough, _RouteDeadline,
                    _RouteUnavailable) as exc:
                return self._failure_response([exc])
            try:
                candidates = decode_candidates(
                    enum_response["candidates"])
                queries = [str(q) for q in enum_response["queries"]]
                anatomy = PatternAnatomy(
                    pattern=str(enum_response["pattern"]),
                    guide_length=int(enum_response["guide_length"]),
                    pam=str(enum_response["pam"]))
            except (KeyError, TypeError, ValueError) as exc:
                return {"ok": False, "error": "internal",
                        "message": f"malformed enumerate response: "
                                   f"{type(exc).__name__}: {exc}"}
            hits_by_query: Dict[str, List[OffTargetHit]] = {}
            if queries:
                raw_queries = [[query, spec.max_mismatches]
                               for query in queries]
                error, merged = await self._fan_out(
                    groups, rank, raw_queries, len(queries), deadline)
                if error is not None:
                    return error
                try:
                    hits_by_query = {
                        query: [OffTargetHit(
                            query=str(row[0]), chrom=str(row[1]),
                            position=int(row[2]), strand=str(row[4]),
                            mismatches=int(row[5]), site=str(row[3]))
                            for row in rows]
                        for query, rows in zip(queries, merged)}
                except (IndexError, TypeError, ValueError) as exc:
                    return {"ok": False, "error": "internal",
                            "message": f"malformed hit row: "
                                       f"{type(exc).__name__}: {exc}"}
            try:
                estimator = get_estimator(
                    spec.estimator, scoring_guide_length(anatomy))
                reports = rank_candidates(candidates, hits_by_query,
                                          estimator, spec.top_n)
            except ValueError as exc:
                return {"ok": False, "error": "bad-request",
                        "message": str(exc)}
        self._requests += 1
        return {"ok": True,
                **design_payload(anatomy, estimator, candidates,
                                 queries, reports)}

    async def _handle_variant(self, request: Dict[str, Any]
                              ) -> Dict[str, Any]:
        """The ``variant`` op, routed: each partition patches and
        diffs its own chromosomes, the router re-merges.

        Every sub-request carries the partition's ``chromosomes``
        filter, so a backend silently skips variants on chromosomes it
        does not hold (the partition skip rule in
        :func:`repro.variants.overlay.validate_haplotypes`) and the
        union of partition events is exactly the single-server event
        set.  Events re-sort through the shared
        :func:`~repro.variants.overlay.sort_event_rows`; counters sum
        (each partition scopes them to its own chromosomes); the
        response body rebuilds through the shared
        :func:`~repro.variants.overlay.variant_payload` — which is
        what keeps routed variant responses byte-identical to a
        single server's.
        """
        raw_queries = request.get("queries")
        raw_haplotypes = request.get("haplotypes")
        try:
            queries = _decode_queries(raw_queries)
            haplotypes = decode_haplotypes(raw_haplotypes)
            allowed = _decode_chromosomes(request.get("chromosomes"))
        except (VariantError, ValueError) as exc:
            return {"ok": False, "error": "bad-request",
                    "message": str(exc)}
        guard = self._route_guard()
        if guard is not None:
            return guard
        groups = list(self._groups)
        rank = dict(self._rank)
        order = [c for c, _ in sorted(rank.items(),
                                      key=lambda item: item[1])]
        # A chromosome no partition holds would be skipped *silently*
        # by every backend (each sees a filter excluding it) — but a
        # single unfiltered server errors on it.  Pre-validate here so
        # the routed tier keeps the single-server contract.
        covered: Set[str] = set()
        for group in groups:
            covered.update(group.chromosomes)
        for haplotype in haplotypes:
            for variant in haplotype.variants:
                if variant.chrom in covered:
                    continue
                if allowed is not None and \
                        variant.chrom not in allowed:
                    continue
                return {"ok": False, "error": "bad-request",
                        "message": f"variant {variant.describe()} "
                                   f"names chromosome "
                                   f"{variant.chrom!r}, which no "
                                   f"partition holds"}
        plans: List[Tuple[_Group, List[str]]] = []
        for group in groups:
            chroms = [c for c in group.chromosomes
                      if allowed is None or c in allowed]
            if chroms:
                plans.append((group, chroms))

        def _make_payload(chroms: List[str]) -> Dict[str, Any]:
            payload: Dict[str, Any] = {
                "op": "variant", "queries": raw_queries,
                "haplotypes": raw_haplotypes, "chromosomes": chroms}
            if "enzyme" in request:
                payload["enzyme"] = request["enzyme"]
            return payload

        def _validate(response: Dict[str, Any]) -> Optional[str]:
            if not isinstance(response.get("events"), list) or \
                    not isinstance(response.get("reference_hits"),
                                   list) or \
                    len(response["reference_hits"]) != len(queries):
                return "sent a malformed variant response"
            return None

        with tracing.span("route_variant", cat="router",
                          haplotypes=len(haplotypes),
                          partitions=len(plans)):
            results = await asyncio.gather(
                *(self._sub_request(group, _make_payload(chroms),
                                    validate=_validate)
                  for group, chroms in plans),
                return_exceptions=True)
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            return self._failure_response(failures)
        events: List[List[Any]] = []
        reference_hits = [0] * len(queries)
        patched_chunks = 0
        reference_chunks = 0
        if results:
            pattern = results[0]["pattern"]
        else:
            # Filter excluded every partition: fall back to the
            # fleet's probed pattern so the echo stays meaningful.
            probed = {b.pattern for b in self._backends
                      if b.alive and b.pattern}
            pattern = probed.pop() if len(probed) == 1 else ""
        for response in results:
            events.extend(response["events"])
            for qi, count in enumerate(response["reference_hits"]):
                reference_hits[qi] += int(count)
            patched_chunks += int(response.get("patched_chunks", 0))
            reference_chunks += int(
                response.get("reference_chunks", 0))
        sort_event_rows(events, [h.name for h in haplotypes],
                        [q.sequence for q in queries], order)
        self._requests += 1
        return {"ok": True,
                **variant_payload(
                    pattern, len(queries),
                    [h.to_payload() for h in haplotypes], events,
                    reference_hits, patched_chunks,
                    reference_chunks)}

    async def _handle_enzymes(self, request: Dict[str, Any]
                              ) -> Dict[str, Any]:
        """Forward the registry listing to any live backend."""
        guard = self._route_guard()
        if guard is not None:
            return guard
        group = self._groups[0]
        try:
            response = await self._sub_request(
                group, {"op": "enzymes"},
                validate=lambda r: (
                    None if isinstance(r.get("enzymes"), list)
                    else "sent a malformed enzymes response"))
        except (_RoutePassthrough, _RouteDeadline,
                _RouteUnavailable) as exc:
            return self._failure_response([exc])
        response.pop("id", None)
        return response

    async def _handle_rollover(self, request: Dict[str, Any]
                               ) -> Dict[str, Any]:
        raw = request.get("canaries")
        if raw is not None:
            try:
                _decode_queries(raw)
            except ValueError as exc:
                return {"ok": False, "error": "bad-request",
                        "message": str(exc)}
        results: List[Dict[str, Any]] = []
        ok_all = True
        with tracing.span("fleet_rollover", cat="router",
                          backends=len(self._backends)):
            for backend in self._backends:
                entry: Dict[str, Any] = {"backend": backend.label}
                if not backend.alive:
                    entry.update(ok=False, error="down")
                    ok_all = False
                    results.append(entry)
                    continue
                self._seq += 1
                payload: Dict[str, Any] = {"op": "reload",
                                           "id": f"r{self._seq}"}
                if raw is not None:
                    payload["canaries"] = raw
                try:
                    response = await self._rpc(
                        backend, payload,
                        timeout_s=self.reload_timeout_s)
                except (ConnectionError, OSError,
                        asyncio.TimeoutError, ValueError,
                        json.JSONDecodeError) as exc:
                    self._note_failure(backend)
                    entry.update(ok=False,
                                 error=f"{type(exc).__name__}: {exc}")
                    ok_all = False
                    results.append(entry)
                    continue
                entry["ok"] = bool(response.get("ok"))
                for key in ("fingerprint", "previous_fingerprint",
                            "changed", "sites", "canaries", "drained",
                            "error", "message"):
                    if key in response:
                        entry[key] = response[key]
                if not response.get("ok"):
                    ok_all = False
                # One at a time: re-probe (refreshing the fingerprint)
                # before the next backend starts rebuilding, so the
                # fleet always has its other replicas serving.
                await self._probe(backend)
                results.append(entry)
        self._rollovers += 1
        # ok means the op ran; ``complete`` is whether every backend
        # actually rolled (a dead one is reported, not fatal).
        return {"ok": True, "complete": ok_all, "backends": results}

    def _topology(self) -> Dict[str, Any]:
        return {
            "epoch": self._routing_epoch,
            "chromosome_order": [
                c for c, _ in sorted(self._rank.items(),
                                     key=lambda item: item[1])],
            "partitions": [
                {"chromosomes": list(g.chromosomes),
                 "backends": [b.label for b in g.backends]}
                for g in self._groups],
            "uncovered": list(self._uncovered),
            "backends": [b.snapshot() for b in self._backends],
        }

    def _stats(self) -> Dict[str, Any]:
        lat = sorted(self._sub_latencies_ms)

        def pct(q: float) -> Optional[float]:
            if not lat:
                return None
            return lat[min(len(lat) - 1,
                           int(round(q * (len(lat) - 1))))]

        return {
            "requests": self._requests,
            "rollovers": self._rollovers,
            "retries": self._retries,
            "hedges": {
                "launched": self._hedges_launched,
                "won": self._hedges_won,
                "lost": self._hedges_lost,
                "deduped": self._hedges_deduped,
            },
            "routing_epoch": self._routing_epoch,
            "partitions": len(self._groups),
            "backends_alive": sum(1 for b in self._backends
                                  if b.alive),
            "backends_total": len(self._backends),
            "subrequest_latency_ms": {
                "count": len(lat),
                "p50": pct(0.50),
                "p95": pct(0.95),
                "p99": pct(0.99),
            },
            "hedge_delay_s": self._hedge_delay_s(),
        }

    async def _handle_request(self, request: Dict[str, Any]
                              ) -> Dict[str, Any]:
        op = request.get("op")
        if op == "query":
            return await self._handle_query(request)
        if op == "design":
            return await self._handle_design(request)
        if op == "variant":
            return await self._handle_variant(request)
        if op == "enzymes":
            return await self._handle_enzymes(request)
        if op == "health":
            alive = sum(1 for b in self._backends if b.alive)
            degraded = (alive < len(self._backends)
                        or bool(self._uncovered))
            patterns = {b.pattern for b in self._backends
                        if b.alive and b.pattern}
            response: Dict[str, Any] = {
                "ok": True,
                "status": ("draining" if self._draining else
                           "degraded" if degraded else "serving"),
                "role": "router",
                "backends_alive": alive,
                "backends_total": len(self._backends),
                "uncovered": list(self._uncovered),
            }
            if len(patterns) == 1:
                response["pattern"] = patterns.pop()
            if self._rank:
                response["chromosomes"] = [
                    c for c, _ in sorted(self._rank.items(),
                                         key=lambda item: item[1])
                    if c not in self._uncovered]
            return response
        if op == "stats":
            return {"ok": True, "stats": self._stats()}
        if op == "topology":
            return {"ok": True, "topology": self._topology()}
        if op == "rollover":
            return await self._handle_rollover(request)
        return {"ok": False, "error": "unknown-op",
                "message": f"unknown op {op!r}; expected query, "
                           f"design, variant, enzymes, stats, health, "
                           f"topology or rollover"}

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                self._inflight += 1
                try:
                    try:
                        request = json.loads(line)
                        if not isinstance(request, dict):
                            raise ValueError(
                                "request must be a JSON object")
                    except (ValueError, json.JSONDecodeError) as exc:
                        response: Dict[str, Any] = {
                            "ok": False, "error": "bad-json",
                            "message": str(exc)}
                    else:
                        response = await self._handle_request(request)
                        if "id" in request:
                            response["id"] = request["id"]
                    writer.write(
                        json.dumps(response).encode("ascii", "replace")
                        + b"\n")
                    try:
                        await writer.drain()
                    except ConnectionError:
                        break
                finally:
                    self._inflight -= 1
        except asyncio.CancelledError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- lifecycle ------------------------------------------------------

    def _request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def _begin_drain(self) -> None:
        self._draining = True
        self._request_stop()

    async def _serve(self, ready=None, duration_s=None,
                     ready_file=None) -> None:
        import os as _os
        import signal as _signal
        self._stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        signal_installed = False
        try:
            loop.add_signal_handler(_signal.SIGTERM, self._begin_drain)
            signal_installed = True
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        # Discover the fleet before announcing readiness, so a caller
        # that waited on the ready file sees a populated routing table.
        await asyncio.gather(*(self._probe(b) for b in self._backends),
                             return_exceptions=True)
        self._rebuild_routing()
        self._probe_task = asyncio.ensure_future(self._probe_loop())
        server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port,
            limit=MAX_LINE_BYTES)
        self.port = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready[2].append(self.port)
            ready[1].set()
        if ready_file:
            # Atomic publish (see server._serve): pollers must never
            # observe the empty create-to-write window.
            part = ready_file + ".part"
            with open(part, "w", encoding="ascii") as handle:
                handle.write(f"{self.host} {self.port}\n")
            _os.replace(part, ready_file)
        try:
            async with server:
                if duration_s is not None:
                    try:
                        await asyncio.wait_for(self._stop_event.wait(),
                                               timeout=duration_s)
                    except asyncio.TimeoutError:
                        pass
                else:
                    await self._stop_event.wait()
        finally:
            self._stop_event = None
            if signal_installed:
                loop.remove_signal_handler(_signal.SIGTERM)
            if self._draining:
                deadline = loop.time() + 5.0
                while self._inflight > 0 and loop.time() < deadline:
                    await asyncio.sleep(0.02)
            self._probe_task.cancel()
            await asyncio.gather(self._probe_task,
                                 return_exceptions=True)
            self._probe_task = None
            self._close_pools()
            current = asyncio.current_task()
            pending = [task for task in asyncio.all_tasks()
                       if task is not current and not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            if ready_file:
                try:
                    _os.unlink(ready_file)
                except OSError:
                    pass

    def run(self, duration_s: Optional[float] = None,
            ready_file: Optional[str] = None) -> None:
        """Route on the calling thread until stopped (or SIGTERM)."""
        try:
            asyncio.run(self._serve(duration_s=duration_s,
                                    ready_file=ready_file))
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def start_background(self) -> ServerHandle:
        """Route on a daemon thread; returns a handle with the port."""
        ready = threading.Event()
        ports: List[int] = []
        loop = asyncio.new_event_loop()

        def _run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(
                    self._serve(ready=(self.host, ready, ports)))
            finally:
                loop.close()

        thread = threading.Thread(target=_run, name="service-router",
                                  daemon=True)
        thread.start()
        if not ready.wait(timeout=30.0):
            raise RuntimeError("router failed to start within 30 s")
        return ServerHandle(host=self.host, port=ports[0],
                            _server=self, _thread=thread, _loop=loop)

    def close(self) -> None:
        self._closed = True


# ---------------------------------------------------------------------------
# Smoke entry point: `python -m repro.service.router --smoke`
# ---------------------------------------------------------------------------

def _wait_ready_file(path: str, timeout_s: float = 60.0
                     ) -> Tuple[str, int]:
    import os
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        if os.path.exists(path):
            with open(path, encoding="ascii") as handle:
                text = handle.read().strip()
            if text:
                host, port_text = text.split()
                return host, int(port_text)
        time.sleep(0.05)
    raise RuntimeError(f"ready file {path!r} not written in "
                       f"{timeout_s:g}s")


def _smoke(duration_s: float = 6.0, backends: int = 3) -> int:
    """3-backend subprocess fleet: crash one, roll the rest.

    Asserts byte-identity of every routed response against an
    in-process single-server reference, zero failed client requests
    across the induced SIGKILL, and zero leaked processes/ready
    files at the end.
    """
    import os
    import signal
    import subprocess
    import sys
    import tempfile

    from ..core.config import Query
    from ..genome.synthetic import synthetic_assembly
    from .client import ServiceClient
    from .index import GenomeSiteIndex
    from .server import OffTargetServer

    pattern = "NNNNNNRG"
    scale, seed = 0.00005, 7
    assembly = synthetic_assembly("hg19", scale=scale, seed=seed)
    order = [c.name for c in assembly.chromosomes]
    parts = partition_chromosomes(assembly, backends)
    held = replica_plan(parts, replication=2)
    queries = [Query("GACGTCNN", 3), Query("TTACGANN", 2)]

    # In-process single-server reference for byte-identity.
    reference_index = GenomeSiteIndex.build(assembly, pattern,
                                            chunk_size=1 << 15)
    reference_server = OffTargetServer(reference_index, max_wait_ms=1.0)
    reference = reference_server.start_background()

    procs: List[subprocess.Popen] = []
    ready_files: List[str] = []
    failures: List[str] = []
    router_handle = None
    try:
        with tempfile.TemporaryDirectory() as tmp:
            for i in range(backends):
                ready = os.path.join(tmp, f"backend-{i}.ready")
                ready_files.append(ready)
                procs.append(subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "serve",
                     "--synthetic", "hg19", "--scale", str(scale),
                     "--seed", str(seed),
                     "--chromosomes", ",".join(held[i]),
                     "--pattern", pattern,
                     "--chunk-size", str(1 << 15),
                     "--max-wait-ms", "1.0",
                     "--drain-s", "5.0",
                     "--ready-file", ready]))
            addrs = ["%s:%d" % _wait_ready_file(f)
                     for f in ready_files]
            print(f"# fleet up: {addrs}")
            router = OffTargetRouter(addrs, chromosome_order=order,
                                     probe_interval_s=0.2,
                                     hedge_ms=200.0)
            router_handle = router.start_background()

            design_request = {"op": "design", "chrom": order[0],
                              "start": 0, "end": 400,
                              "mismatches": 2, "top": 5,
                              "estimator": "cfd"}
            with ServiceClient(reference.host,
                               reference.port) as ref_client:
                expected = ref_client._call({
                    "op": "query",
                    "queries": [[q.sequence, q.max_mismatches]
                                for q in queries]})["hits"]
                design_expected = ref_client._call(
                    dict(design_request))
                design_expected.pop("id", None)

            client = ServiceClient(router_handle.host,
                                   router_handle.port, retries=4)
            requests = 0
            mismatches = 0
            design_requests = 0
            design_mismatches = 0

            def check_design() -> None:
                nonlocal design_requests, design_mismatches
                routed = client._call(dict(design_request))
                routed.pop("id", None)
                design_requests += 1
                if routed != design_expected:
                    design_mismatches += 1

            check_design()  # fresh fleet: routed design == in-process
            kill_at = time.perf_counter() + duration_s * 0.3
            roll_at = time.perf_counter() + duration_s * 0.6
            stop_at = time.perf_counter() + duration_s
            killed = rolled = False
            rollover_report = None
            while time.perf_counter() < stop_at:
                got = client._call({
                    "op": "query",
                    "queries": [[q.sequence, q.max_mismatches]
                                for q in queries]})["hits"]
                requests += 1
                if got != expected:
                    mismatches += 1
                if not killed and time.perf_counter() >= kill_at:
                    procs[0].send_signal(signal.SIGKILL)
                    killed = True
                    print("# SIGKILLed backend 0")
                if not rolled and time.perf_counter() >= roll_at:
                    rollover_report = client._call({
                        "op": "rollover",
                        "canaries": [[q.sequence, q.max_mismatches]
                                     for q in queries]})
                    rolled = True
                    survivors = sum(
                        1 for entry in rollover_report["backends"]
                        if entry.get("ok"))
                    print(f"# rolled {survivors} live backend(s)")
                    check_design()  # design survives the rollover
            stats = client._call({"op": "stats"})["stats"]
            client.close()
            if requests == 0:
                failures.append("no requests completed")
            if mismatches:
                failures.append(
                    f"{mismatches}/{requests} responses diverged "
                    f"from the single-server reference")
            if design_requests < 2:
                failures.append("design was not checked before and "
                                "after the rollover")
            if design_mismatches:
                failures.append(
                    f"{design_mismatches}/{design_requests} design "
                    f"responses diverged from the single-server "
                    f"reference")
            if not killed:
                failures.append("backend crash was never induced")
            if rollover_report is None:
                failures.append("rollover was never run")
            if stats["backends_alive"] >= backends:
                failures.append(
                    "SIGKILLed backend was never ejected")
            print(json.dumps({"requests": requests,
                              "reconnects": client.reconnects,
                              "stats": stats}, indent=2,
                             sort_keys=True))

            # Graceful SIGTERM drain of the survivors.
            procs[0].wait(timeout=10.0)
            for proc in procs[1:]:
                proc.send_signal(signal.SIGTERM)
            for i, proc in enumerate(procs[1:], start=1):
                code = proc.wait(timeout=15.0)
                if code != 0:
                    failures.append(
                        f"backend {i} exited {code} on SIGTERM")
            # Drained servers must have removed their ready files;
            # the SIGKILLed one cannot have (that is the point of the
            # stale-ready-file refusal in `serve`).
            for i, ready in enumerate(ready_files):
                if i == 0:
                    continue
                if os.path.exists(ready):
                    failures.append(
                        f"backend {i} leaked ready file {ready}")
    finally:
        if router_handle is not None:
            router_handle.stop()
        reference.stop()
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
    leaked = [p for p in procs if p.poll() is None]
    if leaked:
        failures.append(f"{len(leaked)} backend process(es) leaked")
    if failures:
        for failure in failures:
            print(f"smoke FAILED: {failure}")
        return 1
    print(f"smoke OK: {requests} routed requests and "
          f"{design_requests} design requests byte-identical "
          f"across a SIGKILL and a rollover")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.router",
        description="Routing-tier smoke test: subprocess fleet, "
                    "induced crash, zero-downtime rollover.")
    parser.add_argument("--smoke", action="store_true",
                        help="run the 3-backend fleet smoke")
    parser.add_argument("--duration", type=float, default=6.0)
    parser.add_argument("--backends", type=int, default=3)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke is supported; use `repro route` "
                     "to run a router")
    return _smoke(args.duration, args.backends)


if __name__ == "__main__":
    raise SystemExit(main())
