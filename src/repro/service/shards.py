"""Sharded multi-process serving tier over shared-memory site shards.

The single-process service executes every micro-batch on one thread, so
aggregate throughput caps out at one core no matter how many clients
connect.  This module scales the comparer out the way production
inference servers shard a resident model: the
:class:`~repro.service.index.GenomeSiteIndex` candidate arrays are
partitioned by chunk into N shards, each shard's numpy payloads are
published once through :mod:`multiprocessing.shared_memory` (workers
map them zero-copy — no candidate array is ever pickled per batch), and
one comparer worker process serves each shard.  A flushed scheduler
batch is *scattered* to every shard in parallel and the per-shard hits
are *gathered* and merged in global chunk order, so responses stay
byte-identical to the single-process service — the same invariant the
streaming engine and checkpoint resume already pin down.

When the inner index is in packed mode the segments carry the compact
forms instead of raw arrays: per chunk, the 2-bit
:mod:`~repro.genome.twobit` bases plus N mask (~0.28 B/base), a
candidate bitmask over the scan region (1 bit per scanned position —
loci are strictly ascending and unique, so the mask is lossless), and
2-bit strand flags (4 per byte).  No genome segment is published at
all.  Each worker decodes its slice privately at attach time and
repacks the resident :class:`~repro.core.pipeline.PackedSites` planes
once, so the per-batch hot path runs the bit-parallel comparer with
zero shared-memory gathers.  Byte mode keeps the original layout
(genome segment + per-shard ``loci``/``flags``).

Results come back through preallocated per-shard **shared-memory
result rings**, not pickled hit lists: a worker writes fixed-width
records — ``(query index, global chunk index, locus, strand,
mismatches)`` at 16 bytes each — into its ring and posts only a tiny
``(batch_id, epoch, count)`` control message; the parent reads the
ring zero-copy and rebuilds the :class:`OffTargetHit` objects from its
own resident chunk data through the same
:meth:`~repro.core.pipeline.SearchAccumulator._build_hits` rendering
the worker would have used, so wire responses stay byte-identical.  A
batch whose hit count overflows the ring falls back to the original
pickle path for that shard (also byte-identical, just slower), and
``comparer_stats`` counts both paths plus the ring high-water mark.

Each shard also publishes a **candidate summary**: per window
position, the OR of base-class bits over every candidate site in the
shard.  Before scattering, the parent computes a per-strand lower
bound on the mismatch count any site in the shard could achieve
against each query (see :func:`repro.service.index.profile_feasible`);
shards that provably cannot match any query in the batch are skipped
entirely (``shards_skipped`` counter).

When the host cannot win the hop — ``auto_degrade=True`` and a single
CPU, or a :meth:`calibrate` probe measuring the sharded path slower
than the in-process comparer — the tier *degrades*: no workers are
kept (or spawned), and every batch routes to the inner
:class:`GenomeSiteIndex` through :meth:`query_batch_direct`.  The
batch scheduler uses the same entry point for adaptive small-batch
routing.

Worker lifecycle follows :mod:`repro.core.multidevice`'s failover
shape: liveness is checked against the worker process itself, a dead
worker is respawned and re-attaches its shard straight from the shared
segments (nothing is recomputed), and the in-flight batch is resent
under a bumped *epoch* — with the gather deadline reset, so the fresh
worker gets a full ``task_timeout_s`` rather than the dead one's
leftovers.  ``scatter`` / ``gather`` / per-worker ``shard`` spans
thread through the trace recorder; workers ship their drained spans
back with each result, and ring occupancy is sampled as Chrome-trace
counter events.  The lock discipline is deliberately narrow: worker
state is guarded by a short-lived mutex so ``shard_health`` /
``ping`` / ``comparer_stats`` answer while a batch is in flight, and
only ``query_batch``/``close`` serialize on the batch lock.

Shared-memory hygiene: segments are named
``repro-shm-<pid>-<token>-...`` so :func:`cleanup_leaked_segments`
(also ``python -m repro.service.shards --cleanup``) can sweep segments
whose owning process died without :meth:`ShardedSiteIndex.close` —
repeated local runs never accumulate ``/dev/shm`` garbage.
"""

from __future__ import annotations

import atexit
import os
import queue
import signal
import sys
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing import shared_memory
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bitparallel import pack_site_windows, window_packable
from ..core.config import Query
from ..core.patterns import compile_pattern
from ..core.pipeline import (ResidentChunk, build_entry_hits,
                             make_pipeline)
from ..core.records import OffTargetHit
from ..genome import twobit
from ..observability import tracing
from .index import (GenomeSiteIndex, profile_feasible,
                    query_allowed_masks, window_column_profile)

#: Prefix for every shared-memory segment this module creates.
SHM_PREFIX = "repro-shm-"

#: Where POSIX shared memory shows up for leak sweeping.
_DEV_SHM = "/dev/shm"

#: One fixed-width hit record in a shard's result ring.  ``locus`` is
#: the offset within the chunk (the comparer's native coordinate);
#: ``chunk`` is the global chunk index, so the parent can find the
#: resident chunk the locus refers to.  16 bytes keeps records
#: naturally aligned and a 64 Ki-record ring at 1 MiB per shard.
RING_RECORD_DTYPE = np.dtype([
    ("qi", "<u4"),      # query index within the batch
    ("chunk", "<u4"),   # global chunk index
    ("locus", "<u4"),   # candidate offset within the chunk
    ("mm", "<u2"),      # mismatch count
    ("strand", "u1"),   # ord("+") or ord("-"), as the kernels emit it
    ("pad", "u1"),
])

#: Default per-shard ring capacity in records (1 MiB per shard).
DEFAULT_RING_RECORDS = 1 << 16


class ShardWorkerError(RuntimeError):
    """A shard worker failed in a way respawning could not cover."""


def _attach_shared(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    ``SharedMemory(name=...)`` registers the segment with the
    ``resource_tracker``, which would *unlink* it when this process
    exits (or is killed) — destroying the index under every other
    worker.  The parent owns the segments, so registration is
    suppressed for the duration of the attach (Python < 3.13 has no
    ``track=False``); unregistering after the fact would instead strip
    the parent's own registration from the shared tracker.
    """
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

def _packed_region_size(length: int, scan_length: int,
                        n_sites: int) -> int:
    """Bytes one chunk occupies in a packed-layout shard segment."""
    return ((length + 3) // 4 + (length + 7) // 8
            + (scan_length + 7) // 8 + (n_sites + 3) // 4)


def _shard_worker_main(shard_id: int, genome_name: Optional[str],
                       genome_layout: List[Tuple[str, int, int]],
                       sites_name: str, site_count: int,
                       seg_bytes: int,
                       chunk_meta: List[Tuple[int, str, int, int, int,
                                              int, int]],
                       pipeline_params: Dict[str, Any],
                       packed: bool, plen: int,
                       ring_name: Optional[str], ring_records: int,
                       task_queue, result_queue) -> None:
    """One shard's comparer loop: attach, serve tasks, exit on stop.

    Byte layout: ``chunk_meta`` rows are ``(global_index, chrom, start,
    scan_length, length, lo, hi)`` and entries are zero-copy views over
    the genome and sites segments.  Packed layout: rows are
    ``(global_index, chrom, start, scan_length, length, n_sites,
    offset)``; the worker decodes its 2-bit bases, candidate bitmask
    and flag pairs into private arrays once at attach time and repacks
    the resident :class:`PackedSites` planes, so no shared view is held
    on the hot path.

    Results go back through the shard's result ring when they fit:
    fixed-width :data:`RING_RECORD_DTYPE` records written in (chunk,
    query, hit) order — the exact order hit construction iterates — and
    a small ``("ring", ..., count, spans)`` control message.  The ring
    writes land before ``result_queue.put`` returns (same thread, and
    the queue's pipe write is a syscall barrier), so the parent never
    reads a record ahead of its data.  A batch whose hits overflow the
    ring (or a tier with rings disabled) builds the hits here and
    ships them pickled, exactly as before.
    """
    genome_shm = None
    sites_shm = _attach_shared(sites_name)
    entries: List[ResidentChunk] = []
    if packed:
        seg = np.ndarray((seg_bytes,), dtype=np.uint8,
                         buffer=sites_shm.buf)
        shifts = np.arange(4, dtype=np.uint8) * np.uint8(2)
        for _, chrom, start, scan_length, length, n_sites, off \
                in chunk_meta:
            base_len = (length + 3) // 4
            nmask_len = (length + 7) // 8
            cand_len = (scan_length + 7) // 8
            flags_len = (n_sites + 3) // 4
            p = off
            data = twobit.decode(twobit.TwoBitSequence(
                packed=seg[p:p + base_len].copy(),
                n_mask=seg[p + base_len:p + base_len + nmask_len]
                .copy(),
                length=length))
            p += base_len + nmask_len
            loci = np.flatnonzero(np.unpackbits(
                seg[p:p + cand_len], bitorder="little",
                count=scan_length)).astype(np.uint32)
            p += cand_len
            quads = seg[p:p + flags_len]
            flags = np.ascontiguousarray(
                ((quads[:, None] >> shifts) & np.uint8(3))
                .reshape(-1)[:n_sites])
            entries.append(ResidentChunk(
                chrom=chrom, start=start, scan_length=scan_length,
                data=data, loci=loci, flags=flags,
                packed=pack_site_windows(data, loci, plen)))
        del seg
    else:
        genome_shm = _attach_shared(genome_name)
        genome_total = sum(size for _, _, size in genome_layout)
        genome_arr = np.ndarray((genome_total,), dtype=np.uint8,
                                buffer=genome_shm.buf)
        chrom_views = {name: genome_arr[offset:offset + size]
                       for name, offset, size in genome_layout}
        loci_all = np.ndarray((site_count,), dtype=np.uint32,
                              buffer=sites_shm.buf)
        flags_all = np.ndarray((site_count,), dtype=np.uint8,
                               buffer=sites_shm.buf,
                               offset=site_count * 4)
        entries = [
            ResidentChunk(chrom=chrom, start=start,
                          scan_length=scan_length,
                          data=chrom_views[chrom][start:start + length],
                          loci=loci_all[lo:hi], flags=flags_all[lo:hi])
            for _, chrom, start, scan_length, length, lo, hi
            in chunk_meta]
        del genome_arr, chrom_views, loci_all, flags_all
    ring_shm = None
    ring = None
    if ring_name is not None and ring_records > 0:
        ring_shm = _attach_shared(ring_name)
        ring = np.ndarray((ring_records,), dtype=RING_RECORD_DTYPE,
                          buffer=ring_shm.buf)
    pipeline = make_pipeline(**pipeline_params)
    try:
        while True:
            task = task_queue.get()
            kind = task[0]
            if kind == "stop":
                break
            if kind == "ping":
                result_queue.put(("pong", shard_id, task[1],
                                  os.getpid()))
                continue
            if kind == "crash":
                # Fault injection: die like a segfaulted worker would,
                # with no cleanup and no reply.
                os._exit(23)
            if kind == "delay":
                # Fault injection: stall the loop so the parent can
                # observe a batch genuinely in flight.
                time.sleep(float(task[1]))
                continue
            if kind != "query":
                continue
            _, epoch, batch_id, specs, trace = task
            spans: List[tracing.Span] = []
            try:
                queries = [Query(sequence=seq, max_mismatches=mm)
                           for seq, mm in specs]
                compiled = [compile_pattern(q.sequence)
                            for q in queries]
                recorder = tracing.TraceRecorder() if trace else None
                if recorder is not None:
                    tracing.activate(recorder)
                    tracing.set_process_name(f"shard-{shard_id}")
                try:
                    with tracing.span("shard", cat="shard",
                                      shard=shard_id, batch=batch_id,
                                      chunks=len(chunk_meta),
                                      packed=packed,
                                      queries=len(queries)) as sp:
                        triples = [pipeline.compare_resident_triples(
                            entry, queries, compiled, batched=True)
                            for entry in entries]
                        total = sum(
                            int(t[0].size)
                            for per_query in triples
                            if per_query is not None
                            for t in per_query)
                        sp.args["hits"] = total
                finally:
                    if recorder is not None:
                        spans = recorder.drain()
                        tracing.activate(None)
                if ring is not None and total <= ring_records:
                    pos = 0
                    for meta, per_query in zip(chunk_meta, triples):
                        if per_query is None:
                            continue
                        gi = meta[0]
                        for qi, (mm_loci, mm_count, direction) \
                                in enumerate(per_query):
                            n = int(mm_loci.size)
                            if n == 0:
                                continue
                            block = ring[pos:pos + n]
                            block["qi"] = np.uint32(qi)
                            block["chunk"] = np.uint32(gi)
                            block["locus"] = mm_loci.astype(
                                np.uint32, copy=False)
                            block["mm"] = mm_count.astype(
                                np.uint16, copy=False)
                            block["strand"] = direction.astype(
                                np.uint8, copy=False)
                            pos += n
                    result_queue.put(("ring", shard_id, epoch,
                                      batch_id, pos, spans))
                else:
                    # Ring overflow (or rings disabled): build the
                    # hits here and ship them pickled, as the tier
                    # originally did for every batch.
                    payload = []
                    for meta, entry, per_query in zip(
                            chunk_meta, entries, triples):
                        if per_query is None:
                            payload.append(
                                (meta[0], [[] for _ in queries]))
                        else:
                            payload.append((meta[0], build_entry_hits(
                                entry, queries, compiled, per_query)))
                    result_queue.put(("result", shard_id, epoch,
                                      batch_id, payload, spans))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - shipped back
                result_queue.put(("error", shard_id, epoch, batch_id,
                                  f"{type(exc).__name__}: {exc}",
                                  spans))
    finally:
        release = getattr(pipeline, "release", None)
        if release is not None:
            release()
        del entries  # byte-mode entries hold views over the segments
        del ring    # ring view pins the ring segment's buffer
        for shm in (genome_shm, sites_shm, ring_shm):
            if shm is None:
                continue
            try:
                shm.close()
            except BufferError:
                pass  # a stray view survives; process exit reclaims it


# ---------------------------------------------------------------------------
# Parent-side shard management
# ---------------------------------------------------------------------------

@dataclass
class _ShardWorker:
    """Parent-side record of one shard worker."""

    shard_id: int
    sites_name: str
    site_count: int
    seg_bytes: int
    chunk_meta: List[Tuple[int, str, int, int, int, int, int]]
    task_queue: Any
    process: Any = None
    #: Bumped on every respawn; results carrying an older epoch are
    #: stale leftovers from a dead incarnation and are dropped.
    epoch: int = 0
    respawns: int = 0
    #: Name of this shard's result-ring segment (None: rings disabled).
    ring_name: Optional[str] = None
    #: Candidate summary: per window position, the OR of base-class
    #: bits over every candidate site in the shard (see
    #: :func:`repro.service.index.window_column_profile`).  Drives the
    #: pre-scatter feasibility skip.
    profile: Optional[np.ndarray] = None


class ShardedSiteIndex:
    """N-process scatter/gather façade over one :class:`GenomeSiteIndex`.

    Duck-types the slice of the index surface the scheduler and server
    consume (``pattern`` / ``compiled_pattern`` / ``query_batch`` /
    counters), so it drops into :class:`BatchScheduler` unchanged.  The
    inner index's candidate arrays are published to shared memory once
    at construction; the inner index itself is never queried again.

    Chunks are assigned round-robin (chunk ``i`` → shard ``i % N``) and
    every worker's per-chunk hits come back tagged with the global
    chunk index, so the gather merge — sort by global index, then
    extend per query — reproduces the single-process chunk-major hit
    order byte-for-byte.
    """

    def __init__(self, index: GenomeSiteIndex, shards: int = 2,
                 task_timeout_s: float = 60.0,
                 max_respawns_per_batch: int = 3, start: bool = True,
                 ring_records: int = DEFAULT_RING_RECORDS,
                 auto_degrade: bool = False):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if ring_records < 0:
            raise ValueError(
                f"ring_records must be >= 0, got {ring_records}")
        self.index = index
        self.shard_count = int(shards)
        self.task_timeout_s = float(task_timeout_s)
        self.max_respawns_per_batch = int(max_respawns_per_batch)
        self.ring_records = int(ring_records)
        self._ctx = get_context("spawn")
        #: Guards worker/segment state and counters.  Deliberately
        #: narrow: never held across a gather, so ``shard_health`` /
        #: ``ping`` / ``comparer_stats`` answer mid-batch.
        self._lock = threading.RLock()
        #: Serializes scatter+gather (and close) — one batch owns the
        #: rings and the result queue at a time.  Acquired before
        #: ``_lock``; never the other way around.
        self._batch_lock = threading.Lock()
        #: Demux for the single results queue: gather and ping each
        #: pop under this lock and stash messages meant for the other.
        self._results_lock = threading.Lock()
        self._stash_pongs: Deque[Tuple] = deque()
        self._stash_results: Deque[Tuple] = deque()
        self._closed = False
        self._next_batch = 0
        self._genome_shm: Optional[shared_memory.SharedMemory] = None
        self._shard_shms: List[shared_memory.SharedMemory] = []
        self._ring_shms: List[shared_memory.SharedMemory] = []
        self._ring_views: Dict[int, np.ndarray] = {}
        self._genome_layout: List[Tuple[str, int, int]] = []
        self._genome_bytes = 0
        self._workers: List[_ShardWorker] = []
        #: Effective sharded-tier comparer mode (may degrade to byte).
        self.packed = bool(getattr(index, "packed", False))
        self.packed_disabled_reason: Optional[str] = \
            getattr(index, "packed_disabled_reason", None)
        self._queries_packed = 0
        self._queries_fallback = 0
        self._shards_skipped = 0
        self._batches_sharded = 0
        self._batches_direct = 0
        self._queries_total = 0
        self._entries_scanned = 0
        self._ring_batches = 0
        self._pickle_batches = 0
        self._ring_high_water = 0
        #: Resident chunks by global index, for parent-side hit
        #: reconstruction from ring records.
        self._entries = list(index.entries)
        #: True once the tier has routed itself out of the picture:
        #: every batch goes to the inner index in-process.
        self.degraded = False
        self.degrade_reason: Optional[str] = None
        if auto_degrade:
            cpus = os.cpu_count() or 1
            if cpus < 2:
                self.degraded = True
                self.degrade_reason = (
                    f"host has {cpus} cpu(s); the scatter/gather hop "
                    f"cannot beat the in-process comparer")
                tracing.instant("shard_tier_degraded", cat="shard",
                                reason=self.degrade_reason)
        self._results = self._ctx.Queue()
        self._pipeline_params = dict(
            api=index.api, device=index.device,
            variant=index.pipeline.variant, mode=index.pipeline.mode,
            chunk_size=index.chunk_size,
            work_group_size=getattr(index.pipeline, "_wg", 256))
        if not self.degraded:
            try:
                self._publish(index)
            except BaseException:
                self._release_segments()
                raise
        atexit.register(self.close)
        if start and not self.degraded:
            self.start()

    # -- duck-typed index surface ---------------------------------------

    @property
    def assembly(self):
        return self.index.assembly

    @property
    def pattern(self) -> str:
        return self.index.pattern

    @property
    def compiled_pattern(self):
        return self.index.compiled_pattern

    @property
    def chunk_size(self) -> int:
        return self.index.chunk_size

    @property
    def pipeline(self):
        """The inner index's pipeline (variant patch chunks are
        scanned and compared parent-side; shard workers never see
        request-scoped data)."""
        return self.index.pipeline

    @property
    def entries(self):
        """The inner index's resident chunks (read-only metadata)."""
        return self.index.entries

    @property
    def api(self) -> str:
        return self.index.api

    @property
    def device(self) -> str:
        return self.index.device

    @property
    def chunk_count(self) -> int:
        return self.index.chunk_count

    @property
    def site_count(self) -> int:
        return self.index.site_count

    def manifest(self):
        return self.index.manifest()

    def fingerprint(self) -> str:
        return self.index.fingerprint()

    @property
    def chromosomes(self):
        return self.index.chromosomes

    def segment_bytes(self) -> Dict[str, Any]:
        """Shared-memory footprint of the published index.

        ``total`` counts the index payload (genome + shard segments)
        only; the fixed-size result rings are reported separately so
        index-compression comparisons are not swamped by ring
        capacity, which is identical in every mode.
        """
        shard_bytes = sum(w.seg_bytes for w in self._workers)
        ring_bytes = sum(int(shm.size) for shm in self._ring_shms)
        return {
            "mode": "packed" if self.packed else "byte",
            "genome": self._genome_bytes,
            "shards": shard_bytes,
            "rings": ring_bytes,
            "total": self._genome_bytes + shard_bytes,
        }

    def comparer_stats(self) -> Dict[str, Any]:
        """Comparer-mode introspection (stats op), incl. shm bytes."""
        with self._lock:
            queries_packed = self._queries_packed
            queries_fallback = self._queries_fallback
            shards_skipped = self._shards_skipped
            batches_sharded = self._batches_sharded
            batches_direct = self._batches_direct
            queries_total = self._queries_total
            ring_batches = self._ring_batches
            pickle_batches = self._pickle_batches
            ring_high_water = self._ring_high_water
            entries_scanned = self._entries_scanned
        return {
            "mode": "packed" if self.packed else "byte",
            "packed_disabled_reason": self.packed_disabled_reason,
            "queries_packed": queries_packed,
            "queries_fallback": queries_fallback,
            "degraded": self.degraded,
            "degrade_reason": self.degrade_reason,
            "shards_skipped": shards_skipped,
            "batches_sharded": batches_sharded,
            "batches_direct": batches_direct,
            # Tier-level batch/query totals, mirroring the in-process
            # index's ``batches``/``queries_total`` proof that many
            # guides share each comparer pass.
            "batches": batches_sharded + batches_direct,
            "queries_total": queries_total,
            # Parent-side comparer entries only: the variant op's
            # ephemeral patch chunks are compared in-process (they are
            # request-scoped and never published to shard workers), so
            # this counts exactly the patched chunks scanned here.
            "entries_scanned": entries_scanned,
            "result_path": {"ring": ring_batches,
                            "pickle": pickle_batches},
            "ring_records": self.ring_records,
            "ring_high_water": ring_high_water,
            "segment_bytes": self.segment_bytes(),
        }

    # -- shared-memory publication --------------------------------------

    def _publish(self, index: GenomeSiteIndex) -> None:
        token = uuid.uuid4().hex[:8]
        base = f"{SHM_PREFIX}{os.getpid()}-{token}"
        self.packed = bool(getattr(index, "packed", False))
        entries = list(index.entries)
        if self.packed:
            for gi, entry in enumerate(entries):
                if entry.loci.size > 1 and not np.all(
                        np.diff(entry.loci.astype(np.int64)) > 0):
                    # The candidate bitmask can only represent strictly
                    # ascending unique loci; fall back rather than
                    # publish a lossy layout.
                    self.packed = False
                    self.packed_disabled_reason = (
                        f"chunk {gi} loci are not strictly ascending; "
                        f"cannot publish packed candidate bitmask")
                    break
        if not self.packed:
            offset = 0
            for chrom in index.assembly.chromosomes:
                self._genome_layout.append(
                    (chrom.name, offset, len(chrom)))
                offset += len(chrom)
            self._genome_shm = shared_memory.SharedMemory(
                name=f"{base}-genome", create=True, size=max(1, offset))
            genome_arr = np.ndarray((offset,), dtype=np.uint8,
                                    buffer=self._genome_shm.buf)
            for chrom, (_, off, size) in zip(
                    index.assembly.chromosomes, self._genome_layout):
                genome_arr[off:off + size] = chrom.sequence
            del genome_arr  # no live view: close() would BufferError
            self._genome_bytes = offset
        assignments: List[List[Tuple[int, Any]]] = [
            [] for _ in range(self.shard_count)]
        for gi, entry in enumerate(entries):
            assignments[gi % self.shard_count].append((gi, entry))
        plen = index.compiled_pattern.plen
        for shard_id, assigned in enumerate(assignments):
            site_count = sum(e.loci.size for _, e in assigned)
            if self.packed:
                seg_bytes, chunk_meta = self._publish_packed_shard(
                    index, base, shard_id, assigned)
            else:
                seg_bytes, chunk_meta = self._publish_byte_shard(
                    base, shard_id, assigned, site_count)
            # Candidate summary: OR of base-class bits per window
            # position over every site in the shard, for the
            # pre-scatter feasibility skip.
            profile = np.zeros(plen, dtype=np.uint8)
            for _, entry in assigned:
                data = entry.data
                if data is None:
                    data = index.assembly.fetch(
                        entry.chrom, entry.start,
                        entry.start + entry.length)
                profile |= window_column_profile(data, entry.loci,
                                                 plen)
            ring_name = None
            if self.ring_records > 0:
                ring_shm = shared_memory.SharedMemory(
                    name=f"{base}-r{shard_id}", create=True,
                    size=max(1, self.ring_records
                             * RING_RECORD_DTYPE.itemsize))
                self._ring_shms.append(ring_shm)
                self._ring_views[shard_id] = np.ndarray(
                    (self.ring_records,), dtype=RING_RECORD_DTYPE,
                    buffer=ring_shm.buf)
                ring_name = ring_shm.name
            self._workers.append(_ShardWorker(
                shard_id=shard_id, sites_name=self._shard_shms[-1].name,
                site_count=site_count, seg_bytes=seg_bytes,
                chunk_meta=chunk_meta, task_queue=self._ctx.Queue(),
                ring_name=ring_name, profile=profile))
        tracing.instant("shards_published", cat="shard",
                        shards=self.shard_count,
                        packed=self.packed,
                        genome_bytes=self._genome_bytes,
                        shard_bytes=sum(w.seg_bytes
                                        for w in self._workers),
                        ring_bytes=sum(int(shm.size)
                                       for shm in self._ring_shms),
                        sites=index.site_count)

    def _publish_byte_shard(self, base: str, shard_id: int, assigned,
                            site_count: int):
        """Original layout: loci (u32) then strand flags (u8)."""
        seg_bytes = site_count * 5
        shm = shared_memory.SharedMemory(
            name=f"{base}-s{shard_id}", create=True,
            size=max(1, seg_bytes))
        self._shard_shms.append(shm)
        loci_arr = np.ndarray((site_count,), dtype=np.uint32,
                              buffer=shm.buf)
        flags_arr = np.ndarray((site_count,), dtype=np.uint8,
                               buffer=shm.buf, offset=site_count * 4)
        lo = 0
        chunk_meta = []
        for gi, entry in assigned:
            hi = lo + entry.loci.size
            loci_arr[lo:hi] = entry.loci
            flags_arr[lo:hi] = entry.flags
            chunk_meta.append((gi, entry.chrom, int(entry.start),
                               int(entry.scan_length),
                               int(entry.length), lo, hi))
            lo = hi
        del loci_arr, flags_arr
        return seg_bytes, chunk_meta

    def _publish_packed_shard(self, index: GenomeSiteIndex, base: str,
                              shard_id: int, assigned):
        """Packed layout: per chunk, 2-bit bases + N mask, candidate
        bitmask over the scan region, and 2-bit strand flags."""
        regions = []
        total = 0
        for gi, entry in assigned:
            regions.append((gi, entry, total))
            total += _packed_region_size(int(entry.length),
                                         int(entry.scan_length),
                                         int(entry.loci.size))
        shm = shared_memory.SharedMemory(
            name=f"{base}-s{shard_id}", create=True,
            size=max(1, total))
        self._shard_shms.append(shm)
        seg = np.ndarray((total,), dtype=np.uint8, buffer=shm.buf)
        weights = np.array([1, 4, 16, 64], dtype=np.uint16)
        chunk_meta = []
        for gi, entry, off in regions:
            data = entry.data
            if data is None:
                data = index.assembly.fetch(
                    entry.chrom, entry.start,
                    entry.start + entry.length)
            encoded = twobit.encode(data)
            p = off
            seg[p:p + encoded.packed.size] = encoded.packed
            p += encoded.packed.size
            seg[p:p + encoded.n_mask.size] = encoded.n_mask
            p += encoded.n_mask.size
            cand_bits = np.zeros(int(entry.scan_length),
                                 dtype=np.uint8)
            cand_bits[entry.loci] = 1
            cand = np.packbits(cand_bits, bitorder="little")
            seg[p:p + cand.size] = cand
            p += cand.size
            n_sites = int(entry.loci.size)
            pad = (-n_sites) % 4
            flags = entry.flags if pad == 0 else np.concatenate(
                [entry.flags, np.zeros(pad, dtype=np.uint8)])
            quads = (flags.reshape(-1, 4).astype(np.uint16)
                     * weights).sum(axis=1).astype(np.uint8)
            seg[p:p + quads.size] = quads
            chunk_meta.append((gi, entry.chrom, int(entry.start),
                               int(entry.scan_length),
                               int(entry.length), n_sites, off))
        del seg
        return total, chunk_meta

    # -- worker lifecycle -----------------------------------------------

    def _spawn(self, worker: _ShardWorker) -> None:
        genome_name = (self._genome_shm.name
                       if self._genome_shm is not None else None)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(worker.shard_id, genome_name,
                  self._genome_layout, worker.sites_name,
                  worker.site_count, worker.seg_bytes,
                  worker.chunk_meta, self._pipeline_params,
                  self.packed, self.index.compiled_pattern.plen,
                  worker.ring_name, self.ring_records,
                  worker.task_queue, self._results),
            name=f"shard-{worker.shard_id}", daemon=True)
        process.start()
        worker.process = process

    def start(self) -> None:
        """Spawn any worker not currently running (idempotent)."""
        with self._lock:
            if self._closed:
                raise ShardWorkerError("sharded index is closed")
            for worker in self._workers:
                if worker.process is None or \
                        not worker.process.is_alive():
                    self._spawn(worker)

    def _respawn(self, worker: _ShardWorker) -> None:
        """Replace a dead worker; its shard re-attaches from shm.

        The fresh incarnation gets a *new* task queue: the old one may
        hold tasks meant for the dead worker, and a worker SIGKILLed
        mid-``get()`` dies holding the queue's reader lock, which would
        deadlock any successor handed the same queue.  The epoch bump
        makes any result the old process managed to enqueue
        recognizably stale.
        """
        process = worker.process
        if process is not None and process.is_alive():
            process.terminate()
        if process is not None:
            process.join(timeout=5.0)
        old_queue = worker.task_queue
        worker.task_queue = self._ctx.Queue()
        old_queue.cancel_join_thread()
        old_queue.close()
        worker.epoch += 1
        worker.respawns += 1
        self._spawn(worker)
        tracing.instant("shard_worker_respawn", cat="shard",
                        shard=worker.shard_id, epoch=worker.epoch)

    def _worker(self, shard_id: int) -> _ShardWorker:
        for worker in self._workers:
            if worker.shard_id == shard_id:
                return worker
        raise KeyError(f"no shard {shard_id}")

    # -- health / fault hooks -------------------------------------------

    def shard_health(self) -> List[Dict[str, Any]]:
        """Non-blocking per-shard liveness snapshot (health op)."""
        with self._lock:
            return [{
                "shard": worker.shard_id,
                "alive": (worker.process is not None
                          and worker.process.is_alive()),
                "pid": (worker.process.pid
                        if worker.process is not None else None),
                "epoch": worker.epoch,
                "respawns": worker.respawns,
                "chunks": len(worker.chunk_meta),
                "sites": worker.site_count,
            } for worker in self._workers]

    def _recv(self, want_pong: bool, timeout_s: float
              ) -> Optional[Tuple]:
        """Pop the next message of the wanted kind from the results
        queue, stashing messages of the other kind.

        ``ping()`` and ``_gather()`` share the one results queue and —
        with the narrow lock discipline — can now run concurrently, so
        either may pull a message meant for the other off the queue.
        Mismatches are stashed rather than dropped (the old ``ping``
        silently discarded result messages, which would have lost
        batches).  Returns None when nothing of the wanted kind is
        available within ``timeout_s``.
        """
        with self._results_lock:
            stash = (self._stash_pongs if want_pong
                     else self._stash_results)
            if stash:
                return stash.popleft()
            try:
                message = self._results.get(timeout=timeout_s)
            except queue.Empty:
                return None
            if (message[0] == "pong") == want_pong:
                return message
            other = (self._stash_results if want_pong
                     else self._stash_pongs)
            other.append(message)
            return None

    def ping(self, timeout_s: float = 5.0) -> Dict[int, bool]:
        """Round-trip a health ping through every live worker.

        Holds the state lock only while enqueueing the pings, so a
        batch in flight does not stall health checks.  A duplicate
        pong for the same token no longer double-counts toward the
        reply quorum (each shard flips its ``ok`` entry at most once).
        """
        with self._lock:
            if self.degraded:
                return {}
            token = uuid.uuid4().hex
            ok = {worker.shard_id: False for worker in self._workers}
            want = 0
            for worker in self._workers:
                if worker.process is not None and \
                        worker.process.is_alive():
                    worker.task_queue.put(("ping", token))
                    want += 1
        with self._results_lock:
            # Pongs from timed-out earlier pings are dead on arrival.
            self._stash_pongs.clear()
        got = 0
        deadline = time.monotonic() + timeout_s
        while got < want and time.monotonic() < deadline:
            message = self._recv(want_pong=True, timeout_s=0.05)
            if message is None:
                continue
            if message[2] == token and not ok.get(message[1], True):
                ok[message[1]] = True
                got += 1
        return ok

    def inject_worker_crash(self, shard_id: int) -> None:
        """Queue a fault-injection task: the worker dies uncleanly."""
        self._worker(shard_id).task_queue.put(("crash",))

    def inject_worker_delay(self, shard_id: int,
                            seconds: float) -> None:
        """Queue a fault-injection stall before the worker's next task.

        Lets tests observe a batch genuinely in flight (e.g. that
        ``shard_health``/``ping`` answer mid-batch) without racing the
        comparer.
        """
        self._worker(shard_id).task_queue.put(("delay", seconds))

    def kill_worker(self, shard_id: int) -> None:
        """SIGKILL a worker immediately (fault injection)."""
        worker = self._worker(shard_id)
        if worker.process is not None and worker.process.is_alive():
            os.kill(worker.process.pid, signal.SIGKILL)
            worker.process.join(timeout=5.0)

    # -- queries ---------------------------------------------------------

    def query_batch(self, queries: Sequence[Query]
                    ) -> List[List[OffTargetHit]]:
        """Scatter one batch to the feasible shards, gather, merge.

        The state lock is held only for the scatter and epoch
        bookkeeping; the gather runs outside it (under the batch
        lock), so ``shard_health``/``ping``/``comparer_stats`` answer
        while a batch is in flight.
        """
        if not queries:
            return []
        plen = self.compiled_pattern.plen
        for query in queries:
            if len(query.sequence) != plen:
                raise ValueError(
                    f"query {query.sequence!r} has length "
                    f"{len(query.sequence)}, index pattern "
                    f"{self.pattern!r} has length {plen}")
        queries = list(queries)
        if self.degraded:
            return self.query_batch_direct(queries)
        specs = [(q.sequence, q.max_mismatches) for q in queries]
        compiled = [compile_pattern(q.sequence) for q in queries]
        with self._batch_lock:
            with self._lock:
                if self._closed:
                    raise ShardWorkerError("sharded index is closed")
                if self.packed:
                    packed_n = sum(1 for cq in compiled
                                   if window_packable(cq))
                    self._queries_packed += packed_n
                    self._queries_fallback += \
                        len(queries) - packed_n
                batch_id = self._next_batch
                self._next_batch += 1
                self._batches_sharded += 1
                self._queries_total += len(queries)
                trace = tracing.active() is not None
                targets = self._select_shards(queries, compiled)
                with tracing.span("scatter", cat="shard",
                                  batch=batch_id,
                                  shards=len(targets),
                                  skipped=(len(self._workers)
                                           - len(targets)),
                                  queries=len(queries)):
                    for worker in targets:
                        if worker.process is None or \
                                not worker.process.is_alive():
                            self._respawn(worker)
                        worker.task_queue.put(
                            ("query", worker.epoch, batch_id, specs,
                             trace))
            collected = self._gather(batch_id, queries, specs,
                                     compiled, trace, targets)
        merged: List[Tuple[int, List[List[OffTargetHit]]]] = []
        for payload in collected.values():
            merged.extend(payload)
        merged.sort(key=lambda item: item[0])
        hits: List[List[OffTargetHit]] = [[] for _ in queries]
        for _, entry_hits in merged:
            for qi, query_hits in enumerate(entry_hits):
                hits[qi].extend(query_hits)
        return hits

    def query_batch_direct(self, queries: Sequence[Query]
                           ) -> List[List[OffTargetHit]]:
        """Serve one batch on the inner index, bypassing the hop.

        Used when the tier is degraded, and by the adaptive scheduler
        for batches too small to amortize the scatter/gather cost.
        """
        if self._closed:
            raise ShardWorkerError("sharded index is closed")
        with self._lock:
            self._batches_direct += 1
            self._queries_total += len(queries)
        return self.index.query_batch(queries)

    def query_batch_with_extras(self, queries: Sequence[Query],
                                extras: Sequence[Any]
                                ) -> Tuple[List[List[OffTargetHit]],
                                           List[List[List[
                                               OffTargetHit]]], int]:
        """Reference via the sharded scatter, extras in-parent.

        The resident reference chunks ride one normal sharded batch
        (or the direct path when degraded) — still a single tier-level
        batch — while the request-scoped extras (variant patch chunks)
        are compared in this process: they exist for one request only,
        so publishing them to shard shared memory would cost more than
        the comparison itself.  Returns the same ``(reference_hits,
        extra_hits, reference_chunks)`` triple as
        :meth:`GenomeSiteIndex.query_batch_with_extras`.
        """
        if not queries:
            raise ValueError(
                "query_batch_with_extras needs at least one query")
        queries = list(queries)
        extras = list(extras)
        reference_hits = self.query_batch(queries)
        compiled = [compile_pattern(q.sequence) for q in queries]
        extra_hits = list(self.index.pipeline.compare_resident(
            extras, queries, compiled, batched=True))
        n_ref = sum(1 for entry in self._entries if entry.loci.size)
        with self._lock:
            self._entries_scanned += len(extras)
        return reference_hits, extra_hits, n_ref

    def _select_shards(self, queries: Sequence[Query],
                       compiled) -> List[_ShardWorker]:
        """The shards whose candidate summary says a hit is possible.

        For each shard, :func:`profile_feasible` lower-bounds the
        mismatch count any site in the shard could achieve against
        each query; a shard where every query's bound exceeds its
        budget cannot contribute a hit and is not scattered to.
        Callers hold ``_lock``.
        """
        allowed = [query_allowed_masks(cq) for cq in compiled]
        targets: List[_ShardWorker] = []
        skipped = 0
        for worker in self._workers:
            if worker.site_count == 0:
                skipped += 1
                continue
            if worker.profile is not None and not any(
                    profile_feasible(worker.profile, masks,
                                     q.max_mismatches)
                    for q, masks in zip(queries, allowed)):
                skipped += 1
                continue
            targets.append(worker)
        if skipped:
            self._shards_skipped += skipped
            tracing.instant("shards_skipped", cat="shard",
                            skipped=skipped)
        return targets

    def _payload_from_ring(self, worker: _ShardWorker, count: int,
                           queries: List[Query], compiled
                           ) -> List[Tuple[int,
                                           List[List[OffTargetHit]]]]:
        """Rebuild per-chunk hit lists from a shard's ring records.

        Records were written in (chunk, query, hit) order — the exact
        order :func:`build_entry_hits` iterates — so grouping
        consecutive records by chunk and rendering them through the
        same constructor reproduces the worker-built payload
        byte-for-byte.  Only chunks with hits appear; the merge treats
        missing chunks as empty, same as a worker's empty lists.
        """
        view = self._ring_views[worker.shard_id]
        records = np.array(view[:count], copy=True)
        plen = self.compiled_pattern.plen
        payload: List[Tuple[int, List[List[OffTargetHit]]]] = []
        pos = 0
        while pos < count:
            gi = int(records["chunk"][pos])
            end = pos
            while end < count and int(records["chunk"][end]) == gi:
                end += 1
            entry = self._entries[gi]
            data = entry.data
            if data is None:
                data = self.index.assembly.fetch(
                    entry.chrom, entry.start,
                    entry.start + entry.length)
                entry.data = data
            entry_hits: List[List[OffTargetHit]] = \
                [[] for _ in queries]
            for rec in records[pos:end]:
                qi = int(rec["qi"])
                lo = int(rec["locus"])
                strand = "+" if int(rec["strand"]) == ord("+") \
                    else "-"
                cq = compiled[qi]
                codes = (cq.sequence if strand == "+"
                         else cq.rc_sequence)
                entry_hits[qi].append(OffTargetHit.from_site(
                    query=queries[qi].sequence, chrom=entry.chrom,
                    position=entry.start + lo, strand=strand,
                    mismatches=int(rec["mm"]),
                    window=data[lo:lo + plen], query_codes=codes))
            payload.append((gi, entry_hits))
            pos = end
        return payload

    def _gather(self, batch_id: int, queries: List[Query], specs,
                compiled, trace: bool,
                targets: List[_ShardWorker]) -> Dict[int, List]:
        """Collect one result per scattered shard, respawning crashed
        workers (with a fresh deadline for each respawn resend)."""
        pending = {worker.shard_id for worker in targets}
        collected: Dict[int, List] = {}
        respawns = 0
        deadline = time.monotonic() + self.task_timeout_s
        with tracing.span("gather", cat="shard", batch=batch_id,
                          shards=len(pending)) as gather_span:
            while pending:
                message = self._recv(want_pong=False, timeout_s=0.05)
                if message is None:
                    with self._lock:
                        for worker in targets:
                            if worker.shard_id in pending and (
                                    worker.process is None or
                                    not worker.process.is_alive()):
                                respawns += 1
                                if respawns > \
                                        self.max_respawns_per_batch:
                                    raise ShardWorkerError(
                                        f"shard {worker.shard_id} "
                                        f"died {respawns} times "
                                        f"during batch {batch_id}; "
                                        f"giving up")
                                self._respawn(worker)
                                worker.task_queue.put(
                                    ("query", worker.epoch, batch_id,
                                     specs, trace))
                                # The fresh worker re-runs the whole
                                # shard; give it a full timeout
                                # instead of the dead one's leftovers.
                                deadline = (time.monotonic()
                                            + self.task_timeout_s)
                    if time.monotonic() > deadline:
                        raise ShardWorkerError(
                            f"batch {batch_id} timed out after "
                            f"{self.task_timeout_s} s waiting on "
                            f"shard(s) {sorted(pending)}")
                    continue
                kind = message[0]
                _, shard_id, epoch, bid, body, spans = message
                worker = self._worker(shard_id)
                if bid != batch_id or epoch != worker.epoch or \
                        shard_id not in pending:
                    continue  # stale result from a dead incarnation
                tracing.merge(spans)
                if kind == "error":
                    raise ShardWorkerError(
                        f"shard {shard_id} failed batch {batch_id}: "
                        f"{body}")
                if kind == "ring":
                    count = int(body)
                    with self._lock:
                        self._ring_batches += 1
                        self._ring_high_water = max(
                            self._ring_high_water, count)
                    tracing.counter(
                        "ring_occupancy", cat="shard",
                        **{f"shard{shard_id}": count})
                    collected[shard_id] = self._payload_from_ring(
                        worker, count, queries, compiled)
                else:
                    with self._lock:
                        self._pickle_batches += 1
                    collected[shard_id] = body
                pending.discard(shard_id)
            gather_span.args["respawns"] = respawns
        return collected

    # -- degrade / calibration -------------------------------------------

    def _degrade(self, reason: str) -> None:
        """Route every future batch to the in-process inner index.

        Workers are stopped and the segments released — a degraded
        tier holds no shared memory — but the facade stays open:
        ``query_batch`` keeps serving through
        :meth:`query_batch_direct`.
        """
        with self._batch_lock:
            with self._lock:
                if self.degraded or self._closed:
                    return
                self.degraded = True
                self.degrade_reason = reason
                self._stop_workers()
                self._release_segments()
        tracing.instant("shard_tier_degraded", cat="shard",
                        reason=reason)

    def calibrate(self, queries: Sequence[Query],
                  repeats: int = 2) -> Dict[str, Any]:
        """Measure the hop against the in-process comparer; degrade
        if it cannot win.

        Runs ``queries`` through both paths (one warm-up, then the
        best of ``repeats``) and degrades the tier when the sharded
        path is measurably slower — the scatter/gather overhead story
        the benchmarks record, turned into a runtime decision.
        Returns the measured timings either way.
        """
        queries = list(queries)
        if self.degraded or not queries:
            return {"degraded": self.degraded,
                    "reason": self.degrade_reason,
                    "sharded_s": None, "direct_s": None}
        self.query_batch(queries)
        self.index.query_batch(queries)
        sharded_s = min(self._time_call(self.query_batch, queries)
                        for _ in range(max(1, repeats)))
        direct_s = min(self._time_call(self.index.query_batch,
                                       queries)
                       for _ in range(max(1, repeats)))
        if sharded_s > direct_s:
            self._degrade(
                f"measured shard speedup "
                f"{direct_s / sharded_s:.2f}x over {len(queries)} "
                f"calibration queries; serving in-process")
        return {"degraded": self.degraded,
                "reason": self.degrade_reason,
                "sharded_s": sharded_s, "direct_s": direct_s}

    @staticmethod
    def _time_call(fn, queries) -> float:
        started = time.perf_counter()
        fn(queries)
        return time.perf_counter() - started

    # -- shutdown --------------------------------------------------------

    def _release_segments(self) -> None:
        self._ring_views.clear()  # live views pin the ring buffers
        segments = list(self._shard_shms) + list(self._ring_shms)
        if self._genome_shm is not None:
            segments.append(self._genome_shm)
        self._shard_shms = []
        self._ring_shms = []
        self._genome_shm = None
        for shm in segments:
            try:
                shm.close()
            except BufferError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def _stop_workers(self) -> None:
        """Drain and join every worker process (callers hold _lock)."""
        for worker in self._workers:
            if worker.process is not None and \
                    worker.process.is_alive():
                worker.task_queue.put(("stop",))
        for worker in self._workers:
            if worker.process is not None:
                worker.process.join(timeout=5.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
        self._workers = []

    def close(self) -> None:
        """Graceful drain: stop workers, then unlink every segment.

        Waits for any batch in flight (the batch lock), so a close
        never yanks the rings out from under a gather.  Idempotent,
        and registered with :mod:`atexit` so a test or script that
        forgets to close still leaves ``/dev/shm`` clean.
        """
        with self._batch_lock:
            with self._lock:
                if self._closed:
                    return
                self._closed = True
                self._stop_workers()
                self._release_segments()

    def __enter__(self) -> "ShardedSiteIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Leaked-segment sweeping
# ---------------------------------------------------------------------------

def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def cleanup_leaked_segments(force: bool = False) -> List[str]:
    """Unlink ``repro-shm-*`` segments whose owning process is gone.

    Segment names embed the creating pid; a segment whose pid no
    longer exists was leaked by a crashed or killed run.  ``force``
    removes every matching segment regardless of owner liveness (for
    CI teardown, where nothing else can legitimately be running).
    Returns the names removed.
    """
    removed: List[str] = []
    if not os.path.isdir(_DEV_SHM):
        return removed
    for name in os.listdir(_DEV_SHM):
        if not name.startswith(SHM_PREFIX):
            continue
        rest = name[len(SHM_PREFIX):]
        pid_text = rest.split("-", 1)[0]
        stale = force or not pid_text.isdigit() or \
            not _pid_alive(int(pid_text))
        if not stale:
            continue
        try:
            os.unlink(os.path.join(_DEV_SHM, name))
        except OSError:
            continue
        removed.append(name)
    return removed


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.shards",
        description="Maintenance entry point for the sharded serving "
                    "tier's shared-memory segments.")
    parser.add_argument("--cleanup", action="store_true",
                        help="unlink repro-shm-* segments whose owning "
                             "process is dead")
    parser.add_argument("--force", action="store_true",
                        help="with --cleanup: remove every repro-shm-* "
                             "segment, even ones with a live owner")
    parser.add_argument("--guard", action="store_true",
                        help="exit 1 if any repro-shm-* segment exists "
                             "(CI leak guard; run after the smokes, "
                             "when nothing should be serving)")
    args = parser.parse_args(argv)
    if args.guard:
        present = sorted(
            name for name in os.listdir(_DEV_SHM)
            if name.startswith(SHM_PREFIX)
        ) if os.path.isdir(_DEV_SHM) else []
        if present:
            for name in present:
                print(f"leaked: {name}")
            print(f"shm guard: {len(present)} leaked segment(s)")
            return 1
        print("shm guard: clean")
        return 0
    if not args.cleanup:
        parser.error("nothing to do; pass --cleanup or --guard")
    removed = cleanup_leaked_segments(force=args.force)
    for name in removed:
        print(f"removed {name}")
    print(f"cleanup: {len(removed)} leaked segment(s) removed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
