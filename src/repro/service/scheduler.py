"""Continuous-batching request scheduler over a resident site index.

Production inference servers coalesce whatever requests are waiting
into one accelerator launch instead of running them one by one; the
batched multi-query comparer gives this workload the same opportunity.
:class:`BatchScheduler` owns a bounded queue and a worker thread that
gathers requests into a micro-batch — flushed when either ``max_batch``
queries have accumulated or the oldest request has waited
``max_wait_ms``, whichever comes first — and runs the whole batch
through a single :meth:`GenomeSiteIndex.query_batch` call, so the
comparer launch count scales with batches, not requests.

Overload is handled at admission: when the queue is full, ``submit``
raises a typed :class:`ServiceOverloaded` immediately instead of
letting latency grow without bound.  Each request may carry a deadline;
requests that expire while queued are failed with
:class:`DeadlineExceeded` rather than occupying comparer time.

With ``adaptive=True`` the scheduler retunes itself from the stats it
already tracks: ``max_batch`` doubles (up to ``max_batch_limit``) when
the queue is backed up a full batch deep, halves (down to
``min_batch``) when the queue is empty but the latency tail has blown
out past 3× the median — batching that large buys no coalescing, only
tail latency — and batches smaller than ``direct_below`` queries are
routed through the index's ``query_batch_direct`` (when it has one;
the sharded tier's runs the batch in-process), because a scatter/gather
hop cannot amortize over one or two queries.

Observability: every batch runs under a ``service_batch`` tracing span,
every completed request ships a manually-timed ``service_request`` span
(queue wait + execution), and :meth:`stats` reports queue depth, a
batch-size histogram, p50/p95/p99 latency and the adaptive controller's
state for the ``stats`` server op.
"""

from __future__ import annotations

import math
import os
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.config import Query
from ..core.records import OffTargetHit
from ..observability import tracing
from .index import GenomeSiteIndex


class ServiceOverloaded(RuntimeError):
    """The request queue is full; the client should back off and retry."""


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before a batch could serve it."""


class SchedulerClosed(RuntimeError):
    """The scheduler has been closed and accepts no new requests."""


@dataclass
class _PendingRequest:
    """One admitted request waiting for (or riding in) a batch."""

    queries: List[Query]
    future: "Future[List[List[OffTargetHit]]]"
    enqueued_perf: float
    enqueued_wall: float
    #: Absolute ``perf_counter`` expiry, or None for no deadline.
    deadline: Optional[float] = None
    args: Dict[str, object] = field(default_factory=dict)


def _percentile(sorted_values: Sequence[float],
                q: float) -> Optional[float]:
    """Nearest-rank percentile over an ascending sequence.

    Returns ``None`` when no samples exist: a freshly started scheduler
    has no latency history, and reporting a fabricated ``0.0`` (which
    dashboards read as "instant responses") is misreporting, not a
    percentile.
    """
    if not sorted_values:
        return None
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class BatchScheduler:
    """Bounded queue + micro-batching worker over a site index.

    ``start=False`` leaves the worker thread unstarted so tests can
    enqueue a known set of requests and then observe exactly how they
    coalesce (or exercise admission control deterministically); call
    :meth:`start` to begin draining.
    """

    def __init__(self, index: GenomeSiteIndex, max_batch: int = 8,
                 max_wait_ms: float = 5.0, max_queue: int = 64,
                 start: bool = True, latency_window: int = 2048,
                 adaptive: bool = False, min_batch: int = 1,
                 max_batch_limit: Optional[int] = None,
                 direct_below: int = 0):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if not max_wait_ms >= 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if min_batch < 1 or min_batch > max_batch:
            raise ValueError(
                f"min_batch must be in [1, max_batch], got {min_batch}")
        if max_batch_limit is not None and max_batch_limit < max_batch:
            raise ValueError(
                f"max_batch_limit must be >= max_batch, "
                f"got {max_batch_limit}")
        if direct_below < 0:
            raise ValueError(
                f"direct_below must be >= 0, got {direct_below}")
        self.index = index
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.max_queue = int(max_queue)
        self.adaptive = bool(adaptive)
        self.min_batch = int(min_batch)
        self.max_batch_limit = int(
            max_batch_limit if max_batch_limit is not None
            else max(max_batch, max_queue))
        self.direct_below = int(direct_below)
        self._grown = 0
        self._shrunk = 0
        self._routed = {"batched": 0, "direct": 0}
        self._queue: "queue.Queue[Optional[_PendingRequest]]" = \
            queue.Queue(maxsize=max_queue)
        self._stop = threading.Event()
        self._stats_lock = threading.Lock()
        #: Guards the executing/inflight counters; notified whenever a
        #: request settles so :meth:`drain` and :meth:`swap_index` can
        #: wait without polling.
        self._exec_cond = threading.Condition()
        #: Batches currently inside ``_execute`` (0 or 1).
        self._executing = 0
        #: Admitted requests not yet settled (result/exception set).
        self._inflight = 0
        #: Serializes :meth:`swap_index` callers.
        self._swap_lock = threading.Lock()
        self._swaps = 0
        self._completed = 0
        self._rejected = 0
        self._expired = 0
        self._batches = 0
        #: Admitted requests by workload kind (plain guide lookups,
        #: guide-design candidate sweeps, variant-overlay searches).
        #: query/design coalesce into the same micro-batches; variant
        #: requests run their own single-batch pass outside the queue
        #: (counted via :meth:`count_request`).  The split is
        #: observability only.
        self._requests_by_kind: Dict[str, int] = {"query": 0,
                                                  "design": 0,
                                                  "variant": 0}
        self._batch_sizes: Dict[int, int] = {}
        self._latencies_ms: "deque[float]" = deque(maxlen=latency_window)
        self._worker: Optional[threading.Thread] = None
        if start:
            self.start()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Start the batch worker (idempotent)."""
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._run, name="batch-scheduler", daemon=True)
            self._worker.start()

    def close(self) -> None:
        """Stop accepting requests and drain the worker."""
        if self._stop.is_set():
            return
        self._stop.set()
        try:
            self._queue.put_nowait(None)  # wake a blocked get()
        except queue.Full:
            pass
        if self._worker is not None and self._worker.is_alive():
            self._worker.join(timeout=10.0)
        # Fail whatever is still queued so no client hangs forever.
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            if pending is None:
                continue
            if pending.future.set_running_or_notify_cancel():
                pending.future.set_exception(
                    SchedulerClosed("scheduler closed before the "
                                    "request could be served"))
            self._request_done()

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- admission ------------------------------------------------------

    def submit(self, queries: Sequence[Query],
               deadline_s: Optional[float] = None,
               kind: str = "query",
               ) -> "Future[List[List[OffTargetHit]]]":
        """Admit one request; returns a future of per-query hit lists.

        ``kind`` labels the workload ("query" for guide lookups,
        "design" for a guide-design candidate sweep riding the same
        batch path); it only affects the :meth:`stats` counters.

        Raises :class:`ServiceOverloaded` when the queue is full,
        :class:`SchedulerClosed` after :meth:`close`,
        :class:`DeadlineExceeded` when ``deadline_s`` has already
        expired at submit time, and ``ValueError`` for empty or
        malformed query lists (checked here so bad input never reaches
        the batch worker).
        """
        if kind not in self._requests_by_kind:
            raise ValueError(
                f"unknown request kind {kind!r}; expected one of "
                f"{sorted(self._requests_by_kind)}")
        if self._stop.is_set():
            raise SchedulerClosed("scheduler is closed")
        queries = list(queries)
        if not queries:
            raise ValueError("a request must carry at least one query")
        plen = self.index.compiled_pattern.plen
        for q in queries:
            if len(q.sequence) != plen:
                raise ValueError(
                    f"query {q.sequence!r} has length "
                    f"{len(q.sequence)}; the served pattern "
                    f"{self.index.pattern!r} requires {plen}")
        if deadline_s is not None and not math.isfinite(deadline_s):
            raise ValueError(
                f"deadline_s must be finite, got {deadline_s}")
        if deadline_s is not None and deadline_s <= 0:
            # Already expired: fail fast instead of occupying a queue
            # slot only to be discarded at batch assembly.
            with self._stats_lock:
                self._expired += 1
            tracing.instant("service_deadline", cat="service",
                            at="submit", deadline_s=deadline_s)
            raise DeadlineExceeded(
                f"deadline_s={deadline_s} had already expired at "
                f"submit time")
        now = time.perf_counter()
        pending = _PendingRequest(
            queries=queries, future=Future(), enqueued_perf=now,
            enqueued_wall=time.time(),
            deadline=None if deadline_s is None else now + deadline_s)
        # Count the request in-flight *before* it becomes visible to
        # the worker, so the counter can never dip negative even if the
        # worker settles it immediately.
        with self._exec_cond:
            self._inflight += 1
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self._request_done()
            with self._stats_lock:
                self._rejected += 1
            tracing.instant("service_reject", cat="service",
                            queue_depth=self._queue.qsize())
            raise ServiceOverloaded(
                f"request queue is full ({self.max_queue} waiting); "
                f"retry with backoff") from None
        with self._stats_lock:
            self._requests_by_kind[kind] += 1
        return pending.future

    def count_request(self, kind: str) -> None:
        """Count one request served outside the micro-batch path.

        The ``variant`` op builds request-scoped patch chunks and runs
        its own single batched pass through
        ``query_batch_with_extras`` — it cannot coalesce with queued
        guide lookups — but it should still show up in the
        :meth:`stats` request accounting.
        """
        if kind not in self._requests_by_kind:
            raise ValueError(
                f"unknown request kind {kind!r}; expected one of "
                f"{sorted(self._requests_by_kind)}")
        with self._stats_lock:
            self._requests_by_kind[kind] += 1

    def _request_done(self, n: int = 1) -> None:
        """Settle ``n`` in-flight requests and wake drain waiters."""
        with self._exec_cond:
            self._inflight -= n
            self._exec_cond.notify_all()

    # -- worker ---------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            batch = self._gather()
            if not batch:
                continue
            with self._exec_cond:
                self._executing += 1
            try:
                self._execute(batch)
            finally:
                with self._exec_cond:
                    self._executing -= 1
                    self._exec_cond.notify_all()

    def _gather(self) -> List[_PendingRequest]:
        """Block for one request, then coalesce until flush."""
        try:
            first = self._queue.get(timeout=0.1)
        except queue.Empty:
            return []
        if first is None:
            return []
        batch = [first]
        total = len(first.queries)
        flush_at = time.perf_counter() + self.max_wait_s
        while total < self.max_batch:
            remaining = flush_at - time.perf_counter()
            if remaining <= 0:
                break
            try:
                nxt = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if nxt is None:
                break
            batch.append(nxt)
            total += len(nxt.queries)
        return batch

    def _execute(self, batch: List[_PendingRequest]) -> None:
        now = time.perf_counter()
        live: List[_PendingRequest] = []
        for pending in batch:
            if not pending.future.set_running_or_notify_cancel():
                self._request_done()
                continue  # client cancelled while queued
            if pending.deadline is not None and now >= pending.deadline:
                with self._stats_lock:
                    self._expired += 1
                tracing.instant("service_deadline", cat="service",
                                waited_ms=(now - pending.enqueued_perf)
                                * 1000.0)
                pending.future.set_exception(DeadlineExceeded(
                    f"request expired after waiting "
                    f"{(now - pending.enqueued_perf) * 1000.0:.1f} ms "
                    f"in the queue"))
                self._request_done()
                continue
            live.append(pending)
        if not live:
            return
        flat: List[Query] = []
        for pending in live:
            flat.extend(pending.queries)
        runner = self.index.query_batch
        route = "batched"
        if self.direct_below > 0 and len(flat) < self.direct_below:
            direct = getattr(self.index, "query_batch_direct", None)
            if callable(direct):
                # Too small to amortize a scatter/gather hop: run the
                # batch on the in-process comparer instead.
                runner = direct
                route = "direct"
        try:
            with tracing.span("service_batch", cat="service",
                              requests=len(live), queries=len(flat),
                              route=route):
                results = runner(flat)
        except BaseException as exc:  # noqa: BLE001 - forwarded to clients
            for pending in live:
                pending.future.set_exception(exc)
            self._request_done(len(live))
            return
        finished = time.perf_counter()
        finished_wall = time.time()
        cursor = 0
        request_spans: List[tracing.Span] = []
        with self._stats_lock:
            self._batches += 1
            self._routed[route] += 1
            self._batch_sizes[len(flat)] = \
                self._batch_sizes.get(len(flat), 0) + 1
            for pending in live:
                span = results[cursor:cursor + len(pending.queries)]
                cursor += len(pending.queries)
                pending.future.set_result(span)
                self._completed += 1
                self._latencies_ms.append(
                    (finished - pending.enqueued_perf) * 1000.0)
                request_spans.append(tracing.Span(
                    name="service_request", cat="service",
                    start_s=pending.enqueued_wall, end_s=finished_wall,
                    pid=os.getpid(), tid="batch-scheduler",
                    args={"queries": len(pending.queries),
                          "batch_queries": len(flat)}))
        tracing.merge(request_spans)
        self._request_done(len(live))
        if self.adaptive:
            self._adapt()

    # -- hot swap / drain -----------------------------------------------

    def swap_index(self, new_index: GenomeSiteIndex,
                   drain_timeout_s: float = 30.0) -> GenomeSiteIndex:
        """Atomically swap the served index; returns the old one.

        The worker reads ``self.index`` once per batch, so a plain
        assignment is the swap; this method additionally waits (up to
        ``drain_timeout_s``) for any batch already executing on the old
        index to finish, so the caller may safely release the returned
        index (close shared memory, drop references).  Requests queued
        at swap time run on the *new* index — zero downtime.

        Raises ``ValueError`` when the new index serves a different
        pattern (queued requests were validated against the old one),
        and ``TimeoutError`` when an old-index batch is still running
        after the budget — the swap itself has taken effect either
        way.
        """
        old = self.index
        if getattr(new_index, "pattern", None) != old.pattern:
            raise ValueError(
                f"cannot swap index serving pattern "
                f"{getattr(new_index, 'pattern', None)!r} in place of "
                f"{old.pattern!r}: queued requests were validated "
                f"against the served pattern")
        with self._swap_lock:
            self.index = new_index
            deadline = time.perf_counter() + drain_timeout_s
            with self._exec_cond:
                while self._executing:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"a batch was still executing on the old "
                            f"index after {drain_timeout_s:g}s; the "
                            f"swap has taken effect but the old index "
                            f"must not be released yet")
                    self._exec_cond.wait(timeout=remaining)
            with self._stats_lock:
                self._swaps += 1
        tracing.instant("scheduler_swap", cat="service",
                        pattern=old.pattern)
        return old

    def drain(self, timeout_s: float) -> bool:
        """Wait until every admitted request has settled.

        Returns True when the scheduler went idle within ``timeout_s``
        (queue empty *and* no batch executing), False on timeout — the
        graceful-shutdown path uses this to bound how long a SIGTERM
        waits for in-flight work.
        """
        deadline = time.perf_counter() + timeout_s
        with self._exec_cond:
            while self._inflight:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return False
                self._exec_cond.wait(timeout=remaining)
        return True

    def _adapt(self) -> None:
        """Retune ``max_batch`` from queue depth and latency tails.

        Grow when admission is outrunning the flush size (a full
        batch is already queued behind the one just served); shrink
        when the queue is drained but the p95 tail has blown out past
        3× the median — at that point larger batches are buying no
        coalescing, only latency.  The latency window resets on
        shrink so one bad tail does not trigger a collapse to
        ``min_batch``.
        """
        depth = self._queue.qsize()
        with self._stats_lock:
            if depth >= self.max_batch and \
                    self.max_batch < self.max_batch_limit:
                self.max_batch = min(self.max_batch_limit,
                                     self.max_batch * 2)
                self._grown += 1
                changed = ("grow", depth)
            elif depth == 0 and self.max_batch > self.min_batch \
                    and len(self._latencies_ms) >= 16:
                latencies = sorted(self._latencies_ms)
                p50 = _percentile(latencies, 0.50)
                p95 = _percentile(latencies, 0.95)
                if p50 and p95 and p95 > 3.0 * p50:
                    self.max_batch = max(self.min_batch,
                                         self.max_batch // 2)
                    self._shrunk += 1
                    self._latencies_ms.clear()
                    changed = ("shrink", depth)
                else:
                    return
            else:
                return
        tracing.instant("scheduler_adapt", cat="service",
                        direction=changed[0], queue_depth=changed[1],
                        max_batch=self.max_batch)

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Queue depth, counters, batch-size histogram, latency tails.

        When the index exposes ``comparer_stats`` (packed/byte mode,
        fallback counters, shm footprint for the sharded tier), it is
        included under ``"comparer"``.
        """
        with self._stats_lock:
            latencies = sorted(self._latencies_ms)
            histogram = dict(sorted(self._batch_sizes.items()))
            completed, rejected = self._completed, self._rejected
            expired, batches = self._expired, self._batches
            grown, shrunk = self._grown, self._shrunk
            routed = dict(self._routed)
            swaps = self._swaps
            by_kind = dict(self._requests_by_kind)
        comparer_stats = getattr(self.index, "comparer_stats", None)
        comparer = (comparer_stats() if callable(comparer_stats)
                    else None)
        return {
            "comparer": comparer,
            "queue_depth": self._queue.qsize(),
            "max_queue": self.max_queue,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_s * 1000.0,
            "completed": completed,
            "rejected": rejected,
            "expired": expired,
            "batches": batches,
            "inflight": self._inflight,
            "index_swaps": swaps,
            "requests_by_kind": by_kind,
            "batch_size_histogram": histogram,
            "adaptive": {
                "enabled": self.adaptive,
                "min_batch": self.min_batch,
                "max_batch_limit": self.max_batch_limit,
                "direct_below": self.direct_below,
                "grown": grown,
                "shrunk": shrunk,
                "routed": routed,
            },
            "latency_ms": {
                "count": len(latencies),
                "mean": (sum(latencies) / len(latencies)
                         if latencies else None),
                "p50": _percentile(latencies, 0.50),
                "p95": _percentile(latencies, 0.95),
                "p99": _percentile(latencies, 0.99),
                "max": latencies[-1] if latencies else None,
            },
        }
