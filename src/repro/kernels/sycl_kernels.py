"""SYCL-dialect device kernels: ``finder`` and ``comparer`` (base–opt4).

These are the paper's kernels, ported line-for-line to the Python runtime
model.  They follow the SYCL spellings of Table IV (``item.get_global_id``,
``item.get_group``, ``item.get_local_range``, ``item.barrier``) and are
written as generator functions: each ``yield item.barrier(...)`` is a
barrier point the executor aligns across the work-group.

``comparer_base`` is Listing 1.  The optimization variants implement the
four cumulative changes of Section IV.B:

* **opt1** — ``__restrict`` on pointer arguments.  A pure compiler fact
  with no Python-visible behaviour; the body is shared with base and the
  difference lives in the codegen model (:mod:`repro.devices.codegen`).
* **opt2** — the per-work-item global reads ``loci[i]`` and ``flag[i]``
  are fetched once into registers (locals) instead of re-read.
* **opt3** — the pattern fetch into shared local memory is cooperative:
  all work-items of the group stride over the array instead of work-item
  0 copying it serially.
* **opt4** — pattern characters read from shared local memory are cached
  in registers before the (13-way) comparison chain uses them.

The genome is uppercase A/C/G/T/N; queries are validated IUPAC codes.
The mismatch test is the explicit character chain of Listing 1 (extended
to the full IUPAC set — see :mod:`repro.core.patterns` for why the
printed listing's ``'A'``/``'P'`` lines are OCR noise).
"""

from __future__ import annotations

import numpy as np

from ..core.patterns import MASK_TABLE
from ..runtime.executor import FenceSpace
from ..runtime.sycl.atomic import atomic_inc

_A, _C, _G, _T, _N = (ord(c) for c in "ACGTN")
_R, _Y, _M, _K, _W, _S = (ord(c) for c in "RYMKWS")
_B, _D, _H, _V = (ord(c) for c in "BDHV")
_PLUS, _MINUS = ord("+"), ord("-")


def _is_mismatch(p: int, g: int) -> bool:
    """The comparison chain of Listing 1 (one pattern char vs one base).

    For concrete pattern bases any other genome character mismatches;
    for ambiguity codes only the explicitly excluded concrete bases do.
    """
    return bool(
        (p == _R and (g == _C or g == _T)) or
        (p == _Y and (g == _A or g == _G)) or
        (p == _M and (g == _G or g == _T)) or
        (p == _K and (g == _A or g == _C)) or
        (p == _W and (g == _C or g == _G)) or
        (p == _S and (g == _A or g == _T)) or
        (p == _H and g == _G) or
        (p == _B and g == _A) or
        (p == _V and g == _T) or
        (p == _D and g == _C) or
        (p == _A and g != _A) or
        (p == _G and g != _G) or
        (p == _C and g != _C) or
        (p == _T and g != _T))


def _pam_match(p: int, g: int) -> bool:
    """Finder semantics: checked pattern position admits genome base."""
    gmask = MASK_TABLE[g]
    return gmask != 15 and (MASK_TABLE[p] & gmask) != 0


# ---------------------------------------------------------------------------
# finder
# ---------------------------------------------------------------------------


def finder(item, chr, pat, pat_index, plen, scan_len, loci, flag,
           entrycount, l_pat, l_pat_index):
    """Search kernel: select sites matching the PAM pattern.

    Writes each candidate's position and strand flag (0 = both strands,
    1 = forward only, 2 = reverse only) through an atomic counter.
    """
    i = item.get_global_id(0)
    li = i - item.get_group(0) * item.get_local_range(0)
    if li == 0:
        for k in range(plen * 2):
            l_pat[k] = pat[k]
            l_pat_index[k] = pat_index[k]
    yield item.barrier(FenceSpace.LOCAL)
    if i < scan_len:
        fwd_ok = True
        for j in range(plen):
            k = l_pat_index[j]
            if k == -1:
                break
            if not _pam_match(l_pat[k], chr[i + k]):
                fwd_ok = False
                break
        rev_ok = True
        for j in range(plen):
            k = l_pat_index[plen + j]
            if k == -1:
                break
            if not _pam_match(l_pat[k + plen], chr[i + k]):
                rev_ok = False
                break
        if fwd_ok or rev_ok:
            if fwd_ok and rev_ok:
                f = 0
            elif fwd_ok:
                f = 1
            else:
                f = 2
            old = atomic_inc(entrycount, 0)
            loci[old] = i
            flag[old] = f


# ---------------------------------------------------------------------------
# comparer: base (Listing 1) and the optimization variants
# ---------------------------------------------------------------------------


def comparer_base(item, locicnts, chr, loci, mm_loci, comp, comp_index,
                  plen, threshold, flag, mm_count, direction, entrycount,
                  l_comp, l_comp_index):
    """Listing 1: the hotspot kernel, unoptimized.

    Work-item 0 of each group stages the query (both strands) in shared
    local memory; every work-item then counts mismatches for one
    candidate site, re-reading ``flag[i]`` and ``loci[i]`` from global
    memory at each use, exactly as the original does.
    """
    i = item.get_global_id(0)
    li = i - item.get_group(0) * item.get_local_range(0)
    if li == 0:
        for k in range(plen * 2):
            l_comp[k] = comp[k]
            l_comp_index[k] = comp_index[k]
    yield item.barrier(FenceSpace.LOCAL)
    if i < locicnts:
        if flag[i] == 0 or flag[i] == 1:
            lmm_count = 0
            for j in range(plen):
                k = l_comp_index[j]
                if k == -1:
                    break
                if _is_mismatch(l_comp[k], chr[loci[i] + k]):
                    lmm_count += 1
                    if lmm_count > threshold:
                        break
            if lmm_count <= threshold:
                old = atomic_inc(entrycount, 0)
                mm_count[old] = lmm_count
                direction[old] = _PLUS
                mm_loci[old] = loci[i]
        if flag[i] == 0 or flag[i] == 2:
            lmm_count = 0
            for j in range(plen):
                k = l_comp_index[plen + j]
                if k == -1:
                    break
                if _is_mismatch(l_comp[k + plen], chr[loci[i] + k]):
                    lmm_count += 1
                    if lmm_count > threshold:
                        break
            if lmm_count <= threshold:
                old = atomic_inc(entrycount, 0)
                mm_count[old] = lmm_count
                direction[old] = _MINUS
                mm_loci[old] = loci[i]


#: opt1 adds ``__restrict`` to every pointer argument — no behavioural
#: difference at this level; the codegen model is where it bites.
comparer_opt1 = comparer_base


def comparer_opt2(item, locicnts, chr, loci, mm_loci, comp, comp_index,
                  plen, threshold, flag, mm_count, direction, entrycount,
                  l_comp, l_comp_index):
    """opt2: register-cache the per-work-item global reads.

    ``loci[i]`` and ``flag[i]`` are loaded once and reused across both
    strand comparisons (Section IV.B change 2), on top of opt1.
    """
    i = item.get_global_id(0)
    li = i - item.get_group(0) * item.get_local_range(0)
    if li == 0:
        for k in range(plen * 2):
            l_comp[k] = comp[k]
            l_comp_index[k] = comp_index[k]
    yield item.barrier(FenceSpace.LOCAL)
    if i < locicnts:
        f = flag[i]
        base = loci[i]
        if f == 0 or f == 1:
            lmm_count = 0
            for j in range(plen):
                k = l_comp_index[j]
                if k == -1:
                    break
                if _is_mismatch(l_comp[k], chr[base + k]):
                    lmm_count += 1
                    if lmm_count > threshold:
                        break
            if lmm_count <= threshold:
                old = atomic_inc(entrycount, 0)
                mm_count[old] = lmm_count
                direction[old] = _PLUS
                mm_loci[old] = base
        if f == 0 or f == 2:
            lmm_count = 0
            for j in range(plen):
                k = l_comp_index[plen + j]
                if k == -1:
                    break
                if _is_mismatch(l_comp[k + plen], chr[base + k]):
                    lmm_count += 1
                    if lmm_count > threshold:
                        break
            if lmm_count <= threshold:
                old = atomic_inc(entrycount, 0)
                mm_count[old] = lmm_count
                direction[old] = _MINUS
                mm_loci[old] = base


def comparer_opt3(item, locicnts, chr, loci, mm_loci, comp, comp_index,
                  plen, threshold, flag, mm_count, direction, entrycount,
                  l_comp, l_comp_index):
    """opt3: cooperative fetch of the pattern into shared local memory.

    All work-items of the group stride over the ``plen * 2`` staging
    arrays (Section IV.B change 3), on top of opt2.
    """
    i = item.get_global_id(0)
    lws = item.get_local_range(0)
    li = i - item.get_group(0) * lws
    for k in range(li, plen * 2, lws):
        l_comp[k] = comp[k]
        l_comp_index[k] = comp_index[k]
    yield item.barrier(FenceSpace.LOCAL)
    if i < locicnts:
        f = flag[i]
        base = loci[i]
        if f == 0 or f == 1:
            lmm_count = 0
            for j in range(plen):
                k = l_comp_index[j]
                if k == -1:
                    break
                if _is_mismatch(l_comp[k], chr[base + k]):
                    lmm_count += 1
                    if lmm_count > threshold:
                        break
            if lmm_count <= threshold:
                old = atomic_inc(entrycount, 0)
                mm_count[old] = lmm_count
                direction[old] = _PLUS
                mm_loci[old] = base
        if f == 0 or f == 2:
            lmm_count = 0
            for j in range(plen):
                k = l_comp_index[plen + j]
                if k == -1:
                    break
                if _is_mismatch(l_comp[k + plen], chr[base + k]):
                    lmm_count += 1
                    if lmm_count > threshold:
                        break
            if lmm_count <= threshold:
                old = atomic_inc(entrycount, 0)
                mm_count[old] = lmm_count
                direction[old] = _MINUS
                mm_loci[old] = base


def comparer_opt4(item, locicnts, chr, loci, mm_loci, comp, comp_index,
                  plen, threshold, flag, mm_count, direction, entrycount,
                  l_comp, l_comp_index):
    """opt4: register-cache the shared-local-memory pattern reads.

    Each pattern character (and the genome base it is compared against)
    is read into a register once before the comparison chain uses it
    repeatedly (Section IV.B change 4), on top of opt3.  On the real
    GPUs this raised vector-register pressure enough to cost a wave of
    occupancy and roughly double the kernel time.
    """
    i = item.get_global_id(0)
    lws = item.get_local_range(0)
    li = i - item.get_group(0) * lws
    for k in range(li, plen * 2, lws):
        l_comp[k] = comp[k]
        l_comp_index[k] = comp_index[k]
    yield item.barrier(FenceSpace.LOCAL)
    if i < locicnts:
        f = flag[i]
        base = loci[i]
        if f == 0 or f == 1:
            lmm_count = 0
            for j in range(plen):
                k = l_comp_index[j]
                if k == -1:
                    break
                p = l_comp[k]
                g = chr[base + k]
                if _is_mismatch(p, g):
                    lmm_count += 1
                    if lmm_count > threshold:
                        break
            if lmm_count <= threshold:
                old = atomic_inc(entrycount, 0)
                mm_count[old] = lmm_count
                direction[old] = _PLUS
                mm_loci[old] = base
        if f == 0 or f == 2:
            lmm_count = 0
            for j in range(plen):
                k = l_comp_index[plen + j]
                if k == -1:
                    break
                p = l_comp[k + plen]
                g = chr[base + k]
                if _is_mismatch(p, g):
                    lmm_count += 1
                    if lmm_count > threshold:
                        break
            if lmm_count <= threshold:
                old = atomic_inc(entrycount, 0)
                mm_count[old] = lmm_count
                direction[old] = _MINUS
                mm_loci[old] = base


def comparer_batched(item, locicnts, nqueries, chr, loci, mm_loci, comp,
                     comp_index, plen, thresholds, flag, mm_count,
                     mm_query, direction, entrycount, l_comp,
                     l_comp_index):
    """Batched multi-query comparer: all queries in one launch.

    ``comp``/``comp_index`` stack ``nqueries`` layouts of ``2 * plen``
    entries (query ``q`` at offset ``q * 2 * plen``); ``thresholds``
    holds one budget per query; accepted sites record their query index
    in ``mm_query``.  The staging fetch is cooperative (opt3-style)
    because the staged region grows with the query count.
    """
    i = item.get_global_id(0)
    lws = item.get_local_range(0)
    li = i - item.get_group(0) * lws
    for k in range(li, nqueries * plen * 2, lws):
        l_comp[k] = comp[k]
        l_comp_index[k] = comp_index[k]
    yield item.barrier(FenceSpace.LOCAL)
    if i < locicnts:
        f = flag[i]
        base = loci[i]
        for offset, direction_char, selected in (
                (0, _PLUS, f == 0 or f == 1),
                (plen, _MINUS, f == 0 or f == 2)):
            if not selected:
                continue
            for q in range(nqueries):
                qoff = q * 2 * plen + offset
                threshold = thresholds[q]
                lmm_count = 0
                for j in range(plen):
                    k = l_comp_index[qoff + j]
                    if k == -1:
                        break
                    if _is_mismatch(l_comp[qoff + k], chr[base + k]):
                        lmm_count += 1
                        if lmm_count > threshold:
                            break
                if lmm_count <= threshold:
                    old = atomic_inc(entrycount, 0)
                    mm_count[old] = lmm_count
                    mm_query[old] = q
                    direction[old] = direction_char
                    mm_loci[old] = base


COMPARER_VARIANTS = {
    "base": comparer_base,
    "opt1": comparer_opt1,
    "opt2": comparer_opt2,
    "opt3": comparer_opt3,
    "opt4": comparer_opt4,
}
