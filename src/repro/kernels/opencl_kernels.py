"""OpenCL-dialect device kernels: the pre-migration ``finder``/``comparer``.

These bodies are the same algorithms as :mod:`repro.kernels.sycl_kernels`
but written against the OpenCL work-item functions (Table IV, left
column): a :class:`~repro.runtime.executor.OpenCLWorkItemFunctions`
context is the first argument, standing in for OpenCL C's global
built-ins (``get_global_id``, ``get_group_id``, ``get_local_size``,
``barrier(CLK_LOCAL_MEM_FENCE)``).  Keeping both dialects in the tree is
the point of the case study: tests assert the two produce identical
results, which is the "migration preserved semantics" property the paper
takes for granted.
"""

from __future__ import annotations

from .sycl_kernels import _is_mismatch, _pam_match, _MINUS, _PLUS


def _atomic_inc(array, index=0):
    """OpenCL ``atomic_inc``: increment and return the old value."""
    old = array[index]
    array[index] = old + 1
    return old


def finder(cl, chr, pat, pat_index, plen, scan_len, loci, flag,
           entrycount, l_pat, l_pat_index):
    """OpenCL search kernel (Table VI's ``finder``)."""
    i = cl.get_global_id(0)
    li = i - cl.get_group_id(0) * cl.get_local_size(0)
    if li == 0:
        for k in range(plen * 2):
            l_pat[k] = pat[k]
            l_pat_index[k] = pat_index[k]
    yield cl.barrier(cl.CLK_LOCAL_MEM_FENCE)
    if i < scan_len:
        fwd_ok = True
        for j in range(plen):
            k = l_pat_index[j]
            if k == -1:
                break
            if not _pam_match(l_pat[k], chr[i + k]):
                fwd_ok = False
                break
        rev_ok = True
        for j in range(plen):
            k = l_pat_index[plen + j]
            if k == -1:
                break
            if not _pam_match(l_pat[k + plen], chr[i + k]):
                rev_ok = False
                break
        if fwd_ok or rev_ok:
            if fwd_ok and rev_ok:
                f = 0
            elif fwd_ok:
                f = 1
            else:
                f = 2
            old = _atomic_inc(entrycount, 0)
            loci[old] = i
            flag[old] = f


def comparer(cl, locicnts, chr, loci, mm_loci, comp, comp_index, plen,
             threshold, flag, mm_count, direction, entrycount, l_comp,
             l_comp_index):
    """OpenCL compare kernel — the original of Listing 1."""
    i = cl.get_global_id(0)
    li = i - cl.get_group_id(0) * cl.get_local_size(0)
    if li == 0:
        for k in range(plen * 2):
            l_comp[k] = comp[k]
            l_comp_index[k] = comp_index[k]
    yield cl.barrier(cl.CLK_LOCAL_MEM_FENCE)
    if i < locicnts:
        if flag[i] == 0 or flag[i] == 1:
            lmm_count = 0
            for j in range(plen):
                k = l_comp_index[j]
                if k == -1:
                    break
                if _is_mismatch(l_comp[k], chr[loci[i] + k]):
                    lmm_count += 1
                    if lmm_count > threshold:
                        break
            if lmm_count <= threshold:
                old = _atomic_inc(entrycount, 0)
                mm_count[old] = lmm_count
                direction[old] = _PLUS
                mm_loci[old] = loci[i]
        if flag[i] == 0 or flag[i] == 2:
            lmm_count = 0
            for j in range(plen):
                k = l_comp_index[plen + j]
                if k == -1:
                    break
                if _is_mismatch(l_comp[k + plen], chr[loci[i] + k]):
                    lmm_count += 1
                    if lmm_count > threshold:
                        break
            if lmm_count <= threshold:
                old = _atomic_inc(entrycount, 0)
                mm_count[old] = lmm_count
                direction[old] = _MINUS
                mm_loci[old] = loci[i]


def comparer_batched(cl, locicnts, nqueries, chr, loci, mm_loci, comp,
                     comp_index, plen, thresholds, flag, mm_count,
                     mm_query, direction, entrycount, l_comp,
                     l_comp_index):
    """OpenCL batched multi-query compare kernel.

    Same contract as :func:`repro.kernels.sycl_kernels.comparer_batched`:
    ``nqueries`` stacked pattern layouts, one threshold per query, and a
    ``mm_query`` output recording which query accepted each site.
    """
    i = cl.get_global_id(0)
    lws = cl.get_local_size(0)
    li = i - cl.get_group_id(0) * lws
    for k in range(li, nqueries * plen * 2, lws):
        l_comp[k] = comp[k]
        l_comp_index[k] = comp_index[k]
    yield cl.barrier(cl.CLK_LOCAL_MEM_FENCE)
    if i < locicnts:
        f = flag[i]
        base = loci[i]
        for offset, direction_char, selected in (
                (0, _PLUS, f == 0 or f == 1),
                (plen, _MINUS, f == 0 or f == 2)):
            if not selected:
                continue
            for q in range(nqueries):
                qoff = q * 2 * plen + offset
                threshold = thresholds[q]
                lmm_count = 0
                for j in range(plen):
                    k = l_comp_index[qoff + j]
                    if k == -1:
                        break
                    if _is_mismatch(l_comp[qoff + k], chr[base + k]):
                        lmm_count += 1
                        if lmm_count > threshold:
                            break
                if lmm_count <= threshold:
                    old = _atomic_inc(entrycount, 0)
                    mm_count[old] = lmm_count
                    mm_query[old] = q
                    direction[old] = direction_char
                    mm_loci[old] = base
