"""Registry of comparer-kernel optimization variants (Section IV.B).

Each :class:`KernelVariant` pairs the runnable kernel with the structural
facts the device models need: whether pointer aliasing was removed
(opt1), whether per-work-item global reads are register-cached (opt2),
whether the local-memory fetch is cooperative (opt3) and whether
local-memory pattern reads are register-cached (opt4).  The variants are
cumulative, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from . import sycl_kernels


@dataclass(frozen=True)
class KernelVariant:
    """One comparer variant and its codegen-relevant structure."""

    name: str
    description: str
    restrict: bool
    cache_global_reads: bool
    cooperative_fetch: bool
    cache_lds_reads: bool
    kernel: Callable


COMPARER_VARIANTS: Dict[str, KernelVariant] = {
    "base": KernelVariant(
        name="base",
        description="Listing 1 as migrated: serial local fetch by "
                    "work-item 0, repeated global and local reads",
        restrict=False, cache_global_reads=False,
        cooperative_fetch=False, cache_lds_reads=False,
        kernel=sycl_kernels.comparer_base),
    "opt1": KernelVariant(
        name="opt1",
        description="base + __restrict on every pointer argument",
        restrict=True, cache_global_reads=False,
        cooperative_fetch=False, cache_lds_reads=False,
        kernel=sycl_kernels.comparer_opt1),
    "opt2": KernelVariant(
        name="opt2",
        description="opt1 + register-cache loci[i] and flag[i]",
        restrict=True, cache_global_reads=True,
        cooperative_fetch=False, cache_lds_reads=False,
        kernel=sycl_kernels.comparer_opt2),
    "opt3": KernelVariant(
        name="opt3",
        description="opt2 + cooperative local-memory fetch by all "
                    "work-items",
        restrict=True, cache_global_reads=True,
        cooperative_fetch=True, cache_lds_reads=False,
        kernel=sycl_kernels.comparer_opt3),
    "opt4": KernelVariant(
        name="opt4",
        description="opt3 + register-cache local-memory pattern reads",
        restrict=True, cache_global_reads=True,
        cooperative_fetch=True, cache_lds_reads=True,
        kernel=sycl_kernels.comparer_opt4),
}

#: Paper order: base, opt1..opt4 (cumulative).
VARIANT_ORDER: List[str] = ["base", "opt1", "opt2", "opt3", "opt4"]


def get_variant(name: str) -> KernelVariant:
    try:
        return COMPARER_VARIANTS[name]
    except KeyError:
        raise KeyError(f"unknown comparer variant {name!r}; "
                       f"choose from {VARIANT_ORDER}") from None
