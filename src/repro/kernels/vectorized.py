"""Vectorized (numpy) implementations of the device kernels.

Semantically identical to the interpreted kernels — tests assert exact
result equality — but computed array-at-a-time so the full pipelines and
benchmarks run at realistic scales.  The staging copies into shared local
memory are kept so local-memory accounting stays honest.

Both runtime front-ends accept these through their ``vectorized=True``
launch paths; work-group decomposition is fused into large blocks by
:meth:`repro.runtime.executor.NDRangeExecutor.run_vectorized`.
"""

from __future__ import annotations

import numpy as np

from ..core.patterns import MASK_TABLE, MISMATCH_LUT
from ..runtime.executor import GroupContext

_PLUS, _MINUS = ord("+"), ord("-")


def _pam_match_block(pat: np.ndarray, checked: np.ndarray,
                     chr: np.ndarray, pos: np.ndarray,
                     offset: int) -> np.ndarray:
    """Mask-match a block of positions against one strand's pattern.

    ``checked`` holds the non-N pattern indices; ``offset`` selects the
    forward (0) or reverse (plen) half of the combined layout.
    """
    if checked.size == 0:
        return np.ones(pos.size, dtype=bool)
    gmask = MASK_TABLE[chr[pos[:, None] + checked[None, :]]]
    pmask = MASK_TABLE[pat[checked + offset]]
    ok = ((gmask & pmask[None, :]) != 0) & (gmask != 15)
    return ok.all(axis=1)


def finder_vectorized(group: GroupContext, chr, pat, pat_index, plen,
                      scan_len, loci, flag, entrycount, l_pat,
                      l_pat_index):
    """Vectorized search kernel (same contract as ``finder``)."""
    n = min(plen * 2, l_pat.shape[0])
    l_pat[:n] = pat[:n]
    l_pat_index[:n] = pat_index[:n]
    start = group.group_start
    end = min(start + group.group_size, int(scan_len))
    if end <= start:
        return
    pos = np.arange(start, end, dtype=np.int64)
    fwd_checked = pat_index[:plen]
    fwd_checked = fwd_checked[fwd_checked >= 0].astype(np.int64)
    rev_checked = pat_index[plen:2 * plen]
    rev_checked = rev_checked[rev_checked >= 0].astype(np.int64)
    fwd_ok = _pam_match_block(pat, fwd_checked, chr, pos, 0)
    rev_ok = _pam_match_block(pat, rev_checked, chr, pos, plen)
    sel = fwd_ok | rev_ok
    count = int(sel.sum())
    if not count:
        return
    flags = np.where(fwd_ok & rev_ok, 0,
                     np.where(fwd_ok, 1, 2)).astype(flag.dtype)
    old = int(entrycount[0])
    entrycount[0] = old + count
    loci[old:old + count] = pos[sel]
    flag[old:old + count] = flags[sel]


def comparer_batched_vectorized(group: GroupContext, locicnts, nqueries,
                                chr, loci, mm_loci, comp, comp_index, plen,
                                thresholds, flag, mm_count, mm_query,
                                direction, entrycount, l_comp,
                                l_comp_index):
    """Batched multi-query compare kernel: one launch for all queries.

    ``comp``/``comp_index`` stack ``nqueries`` pattern layouts of
    ``2 * plen`` entries each (query ``q``'s layout starts at
    ``q * 2 * plen``), and ``thresholds`` holds one mismatch budget per
    query.  Each accepted site additionally records its query index in
    ``mm_query`` so the host can demultiplex.

    The expensive part of the per-query kernel is the per-launch gather
    of genome windows at the candidate loci plus a mismatch-table lookup
    per (candidate, position).  All queries share the same candidates, so
    the batched kernel gathers each strand's windows once and then packs
    every query's per-position mismatch indicator into one byte lane of a
    shared ``(plen, 256)`` lookup table: a single table pass counts
    mismatches for up to four queries simultaneously, with each query's
    exact count recovered from its lane (:data:`MISMATCH_LUT` is strictly
    0/1 and ``plen < 256``, so lanes cannot carry into each other).
    Unchecked pattern positions hold ``N``, whose table row is all zeros,
    so full-window counting equals checked-only counting.  Emission order
    per query (ascending candidate within forward, then reverse, per
    block) matches the per-query kernel exactly, so demultiplexed results
    are identical.
    """
    nq = int(nqueries)
    plen = int(plen)
    n = min(nq * plen * 2, l_comp.shape[0])
    l_comp[:n] = comp[:n]
    l_comp_index[:n] = comp_index[:n]
    start = group.group_start
    end = min(start + group.group_size, int(locicnts))
    if end <= start:
        return
    idx = np.arange(start, end, dtype=np.int64)
    f = flag[idx]
    base = loci[idx].astype(np.int64)
    cols = np.arange(plen, dtype=np.int64)
    qrows = (np.arange(nq, dtype=np.int64) * (2 * plen))[:, None]
    lane_shifts = (np.arange(4, dtype=np.uint32) * np.uint32(8))
    for offset, direction_char, strand_sel in (
            (0, _PLUS, (f == 0) | (f == 1)),
            (plen, _MINUS, (f == 0) | (f == 2))):
        sub = base[strand_sel]
        if sub.size == 0:
            continue
        windows = chr[sub[:, None] + cols[None, :]]
        counts_by_query = []
        for g0 in range(0, nq, 4):
            gq = min(4, nq - g0)
            # Stacked (gq, plen) pattern matrix for this strand.
            pats = comp[qrows[g0:g0 + gq] + offset + cols[None, :]]
            packed_lut = (
                MISMATCH_LUT[pats].astype(np.uint32)
                << lane_shifts[:gq, None, None]).sum(
                axis=0, dtype=np.uint32)
            packed = packed_lut[cols[None, :], windows].sum(
                axis=1, dtype=np.uint32)
            counts_by_query.extend(
                ((packed >> lane_shifts[lane]) & np.uint32(0xFF))
                .astype(np.int64)
                for lane in range(gq))
        for q in range(nq):
            counts = counts_by_query[q]
            keep = counts <= int(thresholds[q])
            kept = int(keep.sum())
            if not kept:
                continue
            old = int(entrycount[0])
            entrycount[0] = old + kept
            mm_count[old:old + kept] = counts[keep].astype(mm_count.dtype)
            mm_query[old:old + kept] = q
            direction[old:old + kept] = direction_char
            mm_loci[old:old + kept] = sub[keep]


def comparer_vectorized(group: GroupContext, locicnts, chr, loci, mm_loci,
                        comp, comp_index, plen, threshold, flag, mm_count,
                        direction, entrycount, l_comp, l_comp_index):
    """Vectorized compare kernel (same contract as ``comparer_base``).

    The early-exit of Listing 1 only affects counts already above the
    threshold, which are discarded either way, so full counting is
    result-identical.
    """
    n = min(plen * 2, l_comp.shape[0])
    l_comp[:n] = comp[:n]
    l_comp_index[:n] = comp_index[:n]
    start = group.group_start
    end = min(start + group.group_size, int(locicnts))
    if end <= start:
        return
    idx = np.arange(start, end, dtype=np.int64)
    f = flag[idx]
    base = loci[idx].astype(np.int64)
    for offset, direction_char, strand_sel in (
            (0, _PLUS, (f == 0) | (f == 1)),
            (plen, _MINUS, (f == 0) | (f == 2))):
        sub = base[strand_sel]
        if sub.size == 0:
            continue
        ks = comp_index[offset:offset + plen]
        ks = ks[ks >= 0].astype(np.int64)
        if ks.size:
            pats = comp[ks + offset]
            sites = chr[sub[:, None] + ks[None, :]]
            counts = MISMATCH_LUT[pats[None, :], sites].sum(
                axis=1, dtype=np.int64)
        else:
            counts = np.zeros(sub.size, dtype=np.int64)
        keep = counts <= int(threshold)
        kept = int(keep.sum())
        if not kept:
            continue
        old = int(entrycount[0])
        entrycount[0] = old + kept
        mm_count[old:old + kept] = counts[keep].astype(mm_count.dtype)
        direction[old:old + kept] = direction_char
        mm_loci[old:old + kept] = sub[keep]
