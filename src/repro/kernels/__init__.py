"""Device kernels: OpenCL dialect, SYCL dialect (base + opt1..opt4) and
the vectorized numpy fast paths."""

from . import opencl_kernels, sycl_kernels, vectorized
from .variants import (COMPARER_VARIANTS, KernelVariant, VARIANT_ORDER,
                       get_variant)

__all__ = [
    "COMPARER_VARIANTS", "KernelVariant", "VARIANT_ORDER", "get_variant",
    "opencl_kernels", "sycl_kernels", "vectorized",
]
