"""Variant-aware off-target search: haplotype diff layers.

A reference-only search answers "where could this guide cut in the
reference assembly"; edited cells carry variants, and a single SNV can
create a PAM (a cut site the reference search never reports) or
destroy one.  This package searches guide x {reference + K haplotypes}
incrementally:

* :mod:`repro.variants.model` — the VCF-like data model:
  :class:`~repro.variants.model.Variant` (SNVs and small indels, 0-based
  reference coordinates, anchored refs) and named, normalized
  :class:`~repro.variants.model.Haplotype` sets, with typed
  :class:`~repro.variants.model.VariantError` validation;
* :mod:`repro.variants.overlay` — the diff layer:
  :class:`~repro.variants.overlay.HaplotypeOverlay` shares untouched
  reference bytes zero-copy and materializes only windows a variant
  touches; :func:`~repro.variants.overlay.search_variants` rebuilds
  (finder scan + 2-bit re-pack) only the touched chunks and rides them
  with the resident reference chunks through **one** batched comparer
  pass, then projects haplotype hits back to reference coordinates so
  downstream indel shifts cancel and the report is exactly the
  per-haplotype gained/lost off-targets, with causal-variant
  provenance.

The ``variant`` server op, the router fan-out and the client's
``variant_search`` all serialize through
:func:`~repro.variants.overlay.variant_payload`, keeping responses
byte-identical across serving tiers.  ``python -m repro.variants
--smoke`` boots a server and asserts exactly that, plus the
single-batch comparer accounting.
"""

_MODEL_EXPORTS = ("Variant", "Haplotype", "VariantError",
                  "decode_haplotypes")
_OVERLAY_EXPORTS = ("EVENT_FIELDS", "HaplotypeOverlay",
                    "VariantSearchResult", "affected_site_interval",
                    "event_sort_key", "reference_scan_bounds",
                    "search_variants", "sort_event_rows",
                    "validate_haplotypes", "variant_payload")


def __getattr__(name):
    # Lazy re-export so ``python -m repro.variants`` (runpy) does not
    # warn about double-importing the submodules.
    if name in _MODEL_EXPORTS:
        from . import model
        return getattr(model, name)
    if name in _OVERLAY_EXPORTS:
        from . import overlay
        return getattr(overlay, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = list(_MODEL_EXPORTS + _OVERLAY_EXPORTS)
