"""Haplotype diff-layer overlay and variant-aware off-target search.

The naive way to search K haplotypes is to splice K full genome
copies and build K full site indexes — K+1 finder scans, K+1 packed
re-packs, K+1 resident copies, for genomes that differ from the
reference in a handful of bases.  This module does the incremental
version:

* :class:`HaplotypeOverlay` is a *diff layer* over one chromosome:
  piecewise segments that reference the assembly's bytes zero-copy
  outside variant intervals and small alt arrays inside them, plus
  monotone coordinate maps between reference and haplotype positions.
  Fetching a window only materializes the bytes of that window —
  untouched chunks are never copied, never re-scanned, never
  re-packed;
* :func:`search_variants` classifies which reference chunks a
  haplotype's variants can possibly affect (a variant at ``pos``
  replacing ``ref`` perturbs exactly the site starts in
  ``[pos - plen + 1, pos + len(ref))``), builds **patch entries** for
  only those chunks — finder scan + 2-bit re-pack over the fetched
  window — and rides reference chunks *and* all patches through one
  batched comparer pass
  (:meth:`GenomeSiteIndex.query_batch_with_extras`);
* hits from patch chunks are projected back to reference coordinates
  through the overlay's coordinate map, so hits that merely *shifted*
  downstream of an indel cancel against their reference twins and the
  report contains only real per-haplotype **gained**/**lost**
  off-targets, each with provenance: the haplotype and the causal
  variant whose interval the site's window overlaps.

The wire payload (:func:`variant_payload`) is the single source of
key order for the ``variant`` op, shared by the in-process API, the
server, and the router, so responses are byte-identical across
serving tiers.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import (Any, Dict, FrozenSet, List, Optional, Sequence,
                    Tuple)

import numpy as np

from ..core.bitparallel import (MAX_CHECKED_POSITIONS, acgtn_only,
                                pack_site_windows)
from ..core.config import Query
from ..core.pipeline import ResidentChunk
from ..core.records import OffTargetHit
from ..genome.assembly import Chunk
from .model import Haplotype, Variant, VariantError

#: Wire row layout for one gained/lost event.  ``position`` is the
#: site's reference-projected coordinate (what you would compare
#: against a reference search); ``hap_position`` the coordinate on the
#: haplotype sequence, ``-1`` for lost sites (they have no haplotype
#: locus).  ``variant`` indexes the causal variant within the
#: haplotype's normalized variant list, ``-1`` when no single variant's
#: interval overlaps the site window.
EVENT_FIELDS = ("haplotype", "variant", "change", "query", "chrom",
                "position", "hap_position", "strand", "mismatches",
                "site")

_CHANGE_RANK = {"gained": 0, "lost": 1}


class HaplotypeOverlay:
    """One chromosome with one haplotype's variants applied, lazily.

    Maintains piecewise segments: reference spans are *views* into the
    assembly's byte array (zero-copy), variant spans are small alt
    arrays.  :meth:`fetch` materializes only the requested window;
    :attr:`materialized_bases` counts the bytes actually copied, which
    is how the overlay's central claim — untouched chunks are shared
    by reference, not duplicated — is audited.
    """

    def __init__(self, chrom: str, sequence: np.ndarray,
                 variants: Sequence[Variant]):
        self.chrom = chrom
        self.reference = sequence
        self.materialized_bases = 0
        n = int(sequence.size)
        ordered = sorted(variants, key=lambda v: (v.position, v.end))
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.position < prev.end:
                raise VariantError(
                    f"variants {prev.describe()} and {cur.describe()} "
                    f"overlap on {chrom!r}")
        for variant in ordered:
            if variant.chrom != chrom:
                raise VariantError(
                    f"variant {variant.describe()} does not belong to "
                    f"chromosome {chrom!r}")
            if variant.end > n:
                raise VariantError(
                    f"variant {variant.describe()} runs past the end "
                    f"of {chrom!r} (length {n})")
            found = sequence[variant.position:variant.end] \
                .tobytes().decode("ascii")
            if found != variant.ref:
                raise VariantError(
                    f"variant {variant.describe()}: reference bases at "
                    f"{chrom}:{variant.position} are {found!r}, not "
                    f"{variant.ref!r}")
        self.variants: Tuple[Variant, ...] = tuple(ordered)

        # Interval tables for the coordinate maps.
        self._ref_starts: List[int] = []
        self._ref_ends: List[int] = []
        self._hap_starts: List[int] = []
        self._hap_ends: List[int] = []
        # Piecewise segments: (hap_start, hap_end, ref_start, alt).
        # ``alt is None`` marks a reference span starting at
        # ``ref_start``; otherwise ``alt`` holds the variant bytes.
        self._segments: List[Tuple[int, int, int,
                                   Optional[np.ndarray]]] = []
        self._segment_starts: List[int] = []
        shift = 0
        ref_cursor = 0
        for variant in self.variants:
            if variant.position > ref_cursor:
                hap_lo = ref_cursor + shift
                self._segments.append(
                    (hap_lo, variant.position + shift, ref_cursor, None))
            hap_lo = variant.position + shift
            alt = np.frombuffer(variant.alt.encode("ascii"),
                                dtype=np.uint8)
            self._ref_starts.append(variant.position)
            self._ref_ends.append(variant.end)
            self._hap_starts.append(hap_lo)
            self._hap_ends.append(hap_lo + alt.size)
            self._segments.append(
                (hap_lo, hap_lo + alt.size, variant.position, alt))
            shift += variant.shift
            ref_cursor = variant.end
        if ref_cursor < n:
            self._segments.append(
                (ref_cursor + shift, n + shift, ref_cursor, None))
        self.length = n + shift
        self._segment_starts = [seg[0] for seg in self._segments]

    # -- coordinate maps ------------------------------------------------

    def map_ref_to_hap(self, position: int) -> int:
        """Monotone reference -> haplotype coordinate map.

        Positions strictly inside a variant's replaced interval clamp
        to the corresponding offset of its alt span — there is no
        exact image for a deleted base, and a clamped monotone map is
        all boundary translation needs.
        """
        j = bisect_right(self._ref_starts, position)
        if j == 0:
            return position
        v = j - 1
        if position >= self._ref_ends[v]:
            return position + (self._hap_ends[v] - self._ref_ends[v])
        offset = min(position - self._ref_starts[v],
                     self._hap_ends[v] - self._hap_starts[v])
        return self._hap_starts[v] + offset

    def map_hap_to_ref(self, position: int) -> int:
        """Monotone haplotype -> reference coordinate map (clamped)."""
        j = bisect_right(self._hap_starts, position)
        if j == 0:
            return position
        v = j - 1
        if position >= self._hap_ends[v]:
            return position - (self._hap_ends[v] - self._ref_ends[v])
        offset = min(position - self._hap_starts[v],
                     self._ref_ends[v] - self._ref_starts[v])
        return self._ref_starts[v] + offset

    # -- byte access ----------------------------------------------------

    def fetch(self, start: int, end: int) -> np.ndarray:
        """Haplotype bytes ``[start, end)``, materializing lazily.

        A window falling entirely inside one reference span returns a
        zero-copy view of the assembly's array; windows crossing a
        variant concatenate just the pieces they cover.
        """
        if not 0 <= start <= end <= self.length:
            raise VariantError(
                f"window [{start}, {end}) outside haplotype "
                f"{self.chrom!r} of length {self.length}")
        if start == end:
            return np.zeros(0, dtype=np.uint8)
        j = bisect_right(self._segment_starts, start) - 1
        pieces: List[np.ndarray] = []
        cursor = start
        while cursor < end:
            hap_lo, hap_hi, ref_lo, alt = self._segments[j]
            take = min(hap_hi, end)
            lo = cursor - hap_lo
            hi = take - hap_lo
            if alt is None:
                pieces.append(self.reference[ref_lo + lo:ref_lo + hi])
            else:
                pieces.append(alt[lo:hi])
            cursor = take
            j += 1
        if len(pieces) == 1:
            return pieces[0]
        window = np.concatenate(pieces)
        self.materialized_bases += int(window.size)
        return window


def affected_site_interval(variant: Variant, plen: int
                           ) -> Tuple[int, int]:
    """Reference site-start interval a variant can perturb.

    A site starting at ``s`` reads window ``[s, s + plen)``; it
    overlaps the replaced interval ``[pos, pos + len(ref))`` exactly
    when ``s`` lies in ``[pos - plen + 1, pos + len(ref))``.  Sites
    outside carry unchanged bytes (possibly shifted), which the
    projection step cancels.
    """
    return (max(0, variant.position - plen + 1), variant.end)


def reference_scan_bounds(length: int, chunk_size: int, plen: int
                          ) -> List[Tuple[int, int]]:
    """Per-chunk ``[scan_start, scan_end)`` bounds of one chromosome.

    Replicates :meth:`Assembly.chunks` exactly, so patch chunks align
    one-to-one with the chunks the resident index was built from.
    """
    overlap = plen - 1
    bounds: List[Tuple[int, int]] = []
    if length < plen:
        return bounds
    start = 0
    while start < length - overlap:
        end = min(start + chunk_size, length)
        scan_end = min(end - overlap, length - overlap)
        if scan_end - start <= 0:
            break
        bounds.append((start, scan_end))
        start = scan_end
    return bounds


@dataclass
class _PatchChunk:
    """One rebuilt chunk of one haplotype, ready for the comparer."""

    hap_index: int
    chrom: str
    ref_bounds: Tuple[int, int]     # the reference chunk it replaces
    entry: ResidentChunk            # loci/flags/packed over hap bytes


def _build_patches(index: Any, haplotypes: Sequence[Haplotype],
                   allowed: FrozenSet[str],
                   ) -> Tuple[List[_PatchChunk],
                              Dict[Tuple[int, str], HaplotypeOverlay]]:
    """Overlays plus patch entries for every touched chunk."""
    assembly = index.assembly
    compiled = index.compiled_pattern
    plen = compiled.plen
    chunk_size = index.chunk_size
    overlap = plen - 1
    patches: List[_PatchChunk] = []
    overlays: Dict[Tuple[int, str], HaplotypeOverlay] = {}
    chrom_order = [c.name for c in assembly.chromosomes]
    for hap_index, haplotype in enumerate(haplotypes):
        by_chrom: Dict[str, List[Variant]] = {}
        for variant in haplotype.variants:
            if variant.chrom in allowed:
                by_chrom.setdefault(variant.chrom, []).append(variant)
        for chrom in chrom_order:
            variants = by_chrom.get(chrom)
            if not variants:
                continue
            sequence = assembly[chrom].sequence
            overlay = HaplotypeOverlay(chrom, sequence, variants)
            overlays[(hap_index, chrom)] = overlay
            bounds = reference_scan_bounds(sequence.size, chunk_size,
                                           plen)
            if not bounds or overlay.length < plen:
                continue
            affected = [affected_site_interval(v, plen)
                        for v in overlay.variants]
            hap_scan_end = overlay.length - overlap
            final_ref_end = bounds[-1][1]
            for ref_lo, ref_hi in bounds:
                touched = any(lo < ref_hi and hi > ref_lo
                              for lo, hi in affected)
                if not touched:
                    continue
                hap_lo = min(overlay.map_ref_to_hap(ref_lo),
                             hap_scan_end)
                if ref_hi == final_ref_end:
                    # The last chunk owns the haplotype's tail: an
                    # insertion near the chromosome end creates site
                    # starts past the image of the reference bound.
                    hap_hi = hap_scan_end
                else:
                    hap_hi = min(overlay.map_ref_to_hap(ref_hi),
                                 hap_scan_end)
                if hap_hi <= hap_lo:
                    continue
                data = overlay.fetch(hap_lo, hap_hi + overlap)
                chunk = Chunk(chrom=chrom, start=hap_lo, data=data,
                              scan_length=hap_hi - hap_lo)
                _count, loci, flags = index.pipeline.find_candidates(
                    chunk, compiled)
                packed = None
                if plen <= MAX_CHECKED_POSITIONS and acgtn_only(data):
                    packed = pack_site_windows(data, loci, plen)
                patches.append(_PatchChunk(
                    hap_index=hap_index, chrom=chrom,
                    ref_bounds=(ref_lo, ref_hi),
                    entry=ResidentChunk(
                        chrom=chrom, start=hap_lo,
                        scan_length=hap_hi - hap_lo, data=data,
                        loci=loci, flags=flags, packed=packed)))
    return patches, overlays


def _causal_variant(variants: Sequence[Variant], span_lo: int,
                    span_hi: int) -> int:
    """Index of the first variant whose interval overlaps the span."""
    for vi, variant in enumerate(variants):
        if variant.position < span_hi and variant.end > span_lo:
            return vi
    return -1


@dataclass
class VariantSearchResult:
    """Everything the ``variant`` op reports, tier-independent."""

    pattern: str
    queries: List[Query]
    haplotypes: List[Haplotype]
    #: Sorted wire rows, one per gained/lost site (``EVENT_FIELDS``).
    events: List[List[Any]]
    #: Per-query reference hit counts (observability).
    reference_hits: List[int]
    patched_chunks: int
    reference_chunks: int

    def payload(self) -> Dict[str, Any]:
        return variant_payload(
            self.pattern, len(self.queries),
            [h.to_payload() for h in self.haplotypes], self.events,
            self.reference_hits, self.patched_chunks,
            self.reference_chunks)


def event_sort_key(row: Sequence[Any], hap_rank: Dict[str, int],
                   query_rank: Dict[str, int],
                   chrom_rank: Dict[str, int]) -> Tuple:
    """Global deterministic order for event rows.

    Shared by :func:`search_variants` and the router's merge so a
    routed response's event list is byte-identical to a single
    server's.
    """
    return (hap_rank.get(row[0], len(hap_rank)),
            query_rank.get(row[3], len(query_rank)),
            chrom_rank.get(row[4], len(chrom_rank)),
            row[5], row[6], row[7],
            _CHANGE_RANK.get(row[2], len(_CHANGE_RANK)),
            row[8], row[9])


def sort_event_rows(rows: List[List[Any]],
                    haplotype_names: Sequence[str],
                    query_sequences: Sequence[str],
                    chromosome_order: Sequence[str]
                    ) -> List[List[Any]]:
    hap_rank = {name: i for i, name in enumerate(haplotype_names)}
    query_rank: Dict[str, int] = {}
    for sequence in query_sequences:
        query_rank.setdefault(sequence, len(query_rank))
    chrom_rank = {name: i for i, name in enumerate(chromosome_order)}
    rows.sort(key=lambda row: event_sort_key(row, hap_rank, query_rank,
                                             chrom_rank))
    return rows


def variant_payload(pattern: str, n_queries: int,
                    haplotype_rows: List[Dict[str, Any]],
                    events: List[List[Any]],
                    reference_hits: Sequence[int], patched_chunks: int,
                    reference_chunks: int) -> Dict[str, Any]:
    """The ``variant`` op's response body — single source of key order.

    Every tier (in-process, server, sharded server, router) builds its
    response through this function, which is what makes the responses
    byte-identical on the wire.
    """
    summary = []
    for hap_row in haplotype_rows:
        name = hap_row["name"]
        gained = sum(1 for row in events
                     if row[0] == name and row[2] == "gained")
        lost = sum(1 for row in events
                   if row[0] == name and row[2] == "lost")
        summary.append({"haplotype": name,
                        "variants": len(hap_row["variants"]),
                        "gained": gained, "lost": lost})
    return {
        "pattern": pattern,
        "queries": int(n_queries),
        "haplotypes": haplotype_rows,
        "reference_chunks": int(reference_chunks),
        "patched_chunks": int(patched_chunks),
        "reference_hits": [int(count) for count in reference_hits],
        "summary": summary,
        "event_fields": list(EVENT_FIELDS),
        "events": events,
    }


def validate_haplotypes(index: Any, haplotypes: Sequence[Haplotype],
                        chromosomes: Optional[FrozenSet[str]]
                        ) -> FrozenSet[str]:
    """Chromosome-level validation with the partition skip rule.

    Returns the set of chromosome names variants may be applied to.  A
    variant naming a chromosome the assembly lacks raises
    :class:`VariantError` — *unless* a ``chromosomes`` filter is
    present and excludes that chromosome, in which case the variant is
    silently skipped: in a routed deployment the partition that owns
    the chromosome computes its events, and every other partition must
    not error on it.
    """
    known = {c.name for c in index.assembly.chromosomes}
    if chromosomes is None:
        allowed = known
    else:
        allowed = known & set(chromosomes)
    for haplotype in haplotypes:
        for variant in haplotype.variants:
            if variant.chrom in known:
                continue
            if chromosomes is not None and \
                    variant.chrom not in chromosomes:
                continue
            raise VariantError(
                f"variant {variant.describe()} names unknown "
                f"chromosome {variant.chrom!r}; assembly "
                f"{index.assembly.name!r} has {sorted(known)}")
    return frozenset(allowed)


def search_variants(index: Any, queries: Sequence[Query],
                    haplotypes: Sequence[Haplotype],
                    chromosomes: Optional[FrozenSet[str]] = None
                    ) -> VariantSearchResult:
    """Guide x {reference + K haplotypes} in one comparer batch.

    ``index`` is a :class:`~repro.service.index.GenomeSiteIndex` or
    anything duck-typing its surface (the sharded tier does): it must
    expose ``assembly``, ``pattern``, ``compiled_pattern``,
    ``chunk_size``, ``pipeline``, ``entries`` and
    ``query_batch_with_extras``.

    Only chunks a variant touches are re-fetched, re-scanned and
    re-packed; everything else is served from the resident reference
    index.  Patch hits are projected to reference coordinates, so the
    returned events are exactly the sites each haplotype gains or
    loses relative to the reference — downstream shifts cancel.
    """
    queries = list(queries)
    if not queries:
        raise ValueError("a variant search needs at least one query")
    haplotypes = list(haplotypes)
    if not haplotypes:
        raise VariantError(
            "a variant search needs at least one haplotype")
    allowed = validate_haplotypes(index, haplotypes, chromosomes)
    plen = index.compiled_pattern.plen

    patches, overlays = _build_patches(index, haplotypes, allowed)
    extras = [patch.entry for patch in patches]
    ref_hits, extra_hits, reference_chunks = \
        index.query_batch_with_extras(queries, extras)
    if chromosomes is not None:
        ref_hits = [[hit for hit in per_query
                     if hit.chrom in chromosomes]
                    for per_query in ref_hits]
        # Scope the chunk count to the filter too: a routed partition
        # reports only its own chromosomes' chunks, so the router's
        # per-partition sums reproduce the single-server totals.
        reference_chunks = sum(
            1 for entry in index.entries
            if entry.loci.size and entry.chrom in chromosomes)

    # Group patch entries and touched reference intervals by layer.
    patch_of_layer: Dict[Tuple[int, str], List[int]] = {}
    touched_of_layer: Dict[Tuple[int, str],
                           List[Tuple[int, int]]] = {}
    for pi, patch in enumerate(patches):
        layer = (patch.hap_index, patch.chrom)
        patch_of_layer.setdefault(layer, []).append(pi)
        touched_of_layer.setdefault(layer, []).append(patch.ref_bounds)

    events: List[List[Any]] = []
    for (hap_index, chrom), overlay in overlays.items():
        layer = (hap_index, chrom)
        haplotype = haplotypes[hap_index]
        intervals = touched_of_layer.get(layer, [])
        if not intervals:
            continue
        for qi in range(len(queries)):
            ref_keys: Dict[Tuple[int, str, str, int],
                           OffTargetHit] = {}
            for hit in ref_hits[qi]:
                if hit.chrom != chrom:
                    continue
                if any(lo <= hit.position < hi
                       for lo, hi in intervals):
                    key = (hit.position, hit.strand, hit.site,
                           hit.mismatches)
                    ref_keys.setdefault(key, hit)
            hap_keys: Dict[Tuple[int, str, str, int],
                           OffTargetHit] = {}
            for pi in patch_of_layer[layer]:
                for hit in extra_hits[pi][qi]:
                    projected = overlay.map_hap_to_ref(hit.position)
                    key = (projected, hit.strand, hit.site,
                           hit.mismatches)
                    hap_keys.setdefault(key, hit)
            for key, hit in hap_keys.items():
                if key in ref_keys:
                    continue
                span_lo = overlay.map_hap_to_ref(hit.position)
                span_hi = overlay.map_hap_to_ref(
                    hit.position + plen - 1) + 1
                events.append([
                    haplotype.name,
                    _causal_variant(haplotype.variants, span_lo,
                                    span_hi),
                    "gained", hit.query, chrom, int(key[0]),
                    int(hit.position), hit.strand,
                    int(hit.mismatches), hit.site])
            for key, hit in ref_keys.items():
                if key in hap_keys:
                    continue
                events.append([
                    haplotype.name,
                    _causal_variant(haplotype.variants, hit.position,
                                    hit.position + plen),
                    "lost", hit.query, chrom, int(hit.position), -1,
                    hit.strand, int(hit.mismatches), hit.site])

    sort_event_rows(events, [h.name for h in haplotypes],
                    [q.sequence for q in queries],
                    [c.name for c in index.assembly.chromosomes])
    return VariantSearchResult(
        pattern=index.pattern, queries=queries, haplotypes=haplotypes,
        events=events,
        reference_hits=[len(per_query) for per_query in ref_hits],
        patched_chunks=len(patches),
        reference_chunks=int(reference_chunks))
