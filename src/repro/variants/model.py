"""Variant and haplotype records for variant-aware off-target search.

A reference assembly is one consensus sequence; the genomes actually
edited carry variants.  A PAM-creating SNV turns a harmless locus into
a cut site the reference search never reports; a deletion can destroy
one.  This module defines the minimal VCF-like data model the overlay
layer (:mod:`repro.variants.overlay`) applies to the reference:

* :class:`Variant` — one substitution/insertion/deletion in reference
  coordinates (0-based), written like a VCF record: ``ref`` is the
  reference bases replaced (never empty — indels carry an anchor
  base), ``alt`` the concrete replacement;
* :class:`Haplotype` — a named, sorted, non-overlapping set of
  variants, the unit a search is run against.

Validation is split the way the serving tiers need it: structural
checks (field types, base alphabets, ordering, overlap) happen at
decode time and are assembly-independent, so every tier normalizes a
request identically; the *reference-match* check (``ref`` must equal
the assembly bases at ``position``) happens in the overlay layer where
the assembly lives, and in a routed deployment runs exactly once on
the partition that owns the chromosome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

_ALT_BASES = frozenset("ACGT")
#: Reference bases may include N: assemblies carry gap runs, and a
#: variant is allowed to replace them.
_REF_BASES = frozenset("ACGTN")


class VariantError(ValueError):
    """A malformed variant/haplotype or one the assembly rejects."""


@dataclass(frozen=True)
class Variant:
    """One VCF-like variant in 0-based reference coordinates."""

    chrom: str
    position: int
    ref: str     # reference bases replaced (non-empty)
    alt: str     # concrete replacement bases (non-empty, ACGT)

    @property
    def end(self) -> int:
        """Exclusive reference end of the replaced interval."""
        return self.position + len(self.ref)

    @property
    def shift(self) -> int:
        """Length change this variant introduces downstream."""
        return len(self.alt) - len(self.ref)

    def describe(self) -> str:
        return (f"{self.chrom}:{self.position}:"
                f"{self.ref}>{self.alt}")


def _decode_variant(row: Any, source: str) -> Variant:
    if not isinstance(row, (list, tuple)) or len(row) != 4:
        raise VariantError(
            f"{source}: variant row {row!r} must be "
            f"[chrom, position, ref, alt]")
    chrom, position, ref, alt = row
    if not isinstance(chrom, str) or not chrom:
        raise VariantError(
            f"{source}: variant chromosome must be a non-empty string, "
            f"got {chrom!r}")
    if isinstance(position, bool) or not isinstance(position, int):
        raise VariantError(
            f"{source}: variant position must be an integer, got "
            f"{position!r}")
    if position < 0:
        raise VariantError(
            f"{source}: variant position must be >= 0, got {position}")
    if not isinstance(ref, str) or not ref:
        raise VariantError(
            f"{source}: variant ref must be a non-empty string "
            f"(indels carry an anchor base), got {ref!r}")
    if not isinstance(alt, str) or not alt:
        raise VariantError(
            f"{source}: variant alt must be a non-empty string, got "
            f"{alt!r}")
    ref = ref.upper()
    alt = alt.upper()
    bad_ref = sorted(set(ref) - _REF_BASES)
    if bad_ref:
        raise VariantError(
            f"{source}: variant ref {ref!r} contains non-ACGTN "
            f"base(s) {bad_ref}")
    bad_alt = sorted(set(alt) - _ALT_BASES)
    if bad_alt:
        raise VariantError(
            f"{source}: variant alt {alt!r} contains non-ACGT "
            f"base(s) {bad_alt} (alt bases must be concrete)")
    return Variant(chrom=chrom, position=position, ref=ref, alt=alt)


@dataclass(frozen=True)
class Haplotype:
    """A named set of variants applied together to the reference.

    ``variants`` is normalized: sorted by (chromosome, position) and
    non-overlapping per chromosome.  Use :func:`decode_haplotypes` /
    :meth:`normalized` to build one from unordered input.
    """

    name: str
    variants: Tuple[Variant, ...]

    def to_payload(self) -> Dict[str, Any]:
        """Wire echo: the normalized form every tier reports."""
        return {
            "name": self.name,
            "variants": [[v.chrom, int(v.position), v.ref, v.alt]
                         for v in self.variants],
        }

    @classmethod
    def normalized(cls, name: str, variants: Sequence[Variant]
                   ) -> "Haplotype":
        """Sort and overlap-check a variant list into a Haplotype."""
        if not isinstance(name, str) or not name:
            raise VariantError(
                f"haplotype name must be a non-empty string, got "
                f"{name!r}")
        ordered = sorted(variants,
                         key=lambda v: (v.chrom, v.position, v.end))
        for prev, cur in zip(ordered, ordered[1:]):
            if prev.chrom == cur.chrom and cur.position < prev.end:
                raise VariantError(
                    f"haplotype {name!r}: variants "
                    f"{prev.describe()} and {cur.describe()} overlap; "
                    f"one haplotype applies non-overlapping variants")
        return cls(name=name, variants=tuple(ordered))


def decode_haplotypes(raw: Any) -> List[Haplotype]:
    """Decode and normalize the wire ``haplotypes`` field.

    Expects a non-empty list of ``{"name": str, "variants": [[chrom,
    position, ref, alt], ...]}`` objects.  Haplotype names must be
    unique (events are keyed by them).  All checks here are
    assembly-independent so every serving tier normalizes a request to
    the same echo bytes.
    """
    if not isinstance(raw, list) or not raw:
        raise VariantError(
            "'haplotypes' must be a non-empty list of "
            "{name, variants} objects")
    haplotypes: List[Haplotype] = []
    seen = set()
    for hap_index, entry in enumerate(raw):
        source = f"haplotypes[{hap_index}]"
        if not isinstance(entry, dict):
            raise VariantError(
                f"{source}: expected an object with 'name' and "
                f"'variants', got {entry!r}")
        unknown = set(entry) - {"name", "variants"}
        if unknown:
            raise VariantError(
                f"{source}: unknown field(s) {sorted(unknown)}")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            raise VariantError(
                f"{source}: 'name' must be a non-empty string, got "
                f"{name!r}")
        if name in seen:
            raise VariantError(
                f"{source}: duplicate haplotype name {name!r}")
        seen.add(name)
        rows = entry.get("variants")
        if not isinstance(rows, list) or not rows:
            raise VariantError(
                f"{source}: 'variants' must be a non-empty list of "
                f"[chrom, position, ref, alt] rows")
        variants = [_decode_variant(row, f"{source}.variants[{i}]")
                    for i, row in enumerate(rows)]
        haplotypes.append(Haplotype.normalized(name, variants))
    return haplotypes
