"""Smoke test: `python -m repro.variants --smoke`.

Builds a small synthetic index, applies deterministic haplotypes (an
SNV and an indel derived from the assembly's own bases), and asserts
the tentpole invariants end to end:

* one variant search costs exactly ONE batched comparer pass, and the
  comparer scans exactly ``reference_chunks + patched_chunks`` entries
  (the single-batch accounting in ``comparer_stats``);
* a served ``variant`` response is byte-identical to the in-process
  payload, including when the server fronts a 2-shard
  :class:`~repro.service.shards.ShardedSiteIndex` (whose parent-side
  ``entries_scanned`` counts only the patch entries) — running the
  sharded leg under ``scripts/verify.sh`` also puts the variant path
  under the shared-memory leak guard;
* a TOML enzyme config loads, serves, and answers ``enzymes`` and
  enzyme-tagged ``query`` requests.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from typing import List, Optional, Sequence

from ..core.config import Query


def _demo_haplotypes(assembly) -> List[dict]:
    """Deterministic SNV + indel built from the assembly's own bases."""
    chroms = [c for c in assembly.chromosomes if len(c) >= 2000]
    if not chroms:
        raise RuntimeError("assembly too small for the variant smoke")
    first = chroms[0]
    seq = first.sequence

    def base(position: int) -> str:
        return seq[position:position + 1].tobytes().decode("ascii")

    def flipped(position: int) -> str:
        return "G" if base(position) != "G" else "A"

    snv_pos, del_pos = 500, 1200
    rows = [
        {"name": "hap-snv",
         "variants": [[first.name, snv_pos, base(snv_pos),
                       flipped(snv_pos)]]},
        {"name": "hap-indel",
         "variants": [
             [first.name, del_pos,
              seq[del_pos:del_pos + 2].tobytes().decode("ascii"),
              base(del_pos)[:1] or "A"],
             [first.name, del_pos + 600, base(del_pos + 600),
              base(del_pos + 600) + "ACGT"]]},
    ]
    if len(chroms) > 1:
        other = chroms[1]
        rows[0]["variants"].append(
            [other.name, 800,
             other.sequence[800:801].tobytes().decode("ascii"),
             "C" if other.sequence[800] != ord("C") else "T"])
    return rows


_ENZYME_TOML = """\
[[enzymes]]
name = "SpCas9-NGG"
guide_length = 20
pam = "NGG"
pam_side = "3prime"
scoring = "cfd"
"""


def _smoke(scale: float = 0.0002, seed: int = 7,
           shards: int = 2) -> int:
    from ..genome.synthetic import synthetic_assembly
    from ..service.client import ServiceClient
    from ..service.index import GenomeSiteIndex
    from ..service.server import OffTargetServer
    from ..service.shards import ShardedSiteIndex
    from .model import decode_haplotypes
    from .overlay import search_variants

    pattern = "NNNNNNRG"
    failures: List[str] = []
    assembly = synthetic_assembly("hg19", scale=scale, seed=seed)
    index = GenomeSiteIndex.build(assembly, pattern,
                                  chunk_size=1 << 15)
    queries = [Query("GACGTCNN", 3), Query("TTACGANN", 2)]
    haplotypes = decode_haplotypes(_demo_haplotypes(assembly))

    # 1. In-process: single-batch comparer accounting.
    before = index.comparer_stats()
    result = search_variants(index, queries, haplotypes)
    after = index.comparer_stats()
    expected_payload = result.payload()
    batches = after["batches"] - before["batches"]
    scanned = after["entries_scanned"] - before["entries_scanned"]
    expected_scanned = result.reference_chunks + result.patched_chunks
    print(f"# in-process: {len(expected_payload['events'])} events, "
          f"{result.patched_chunks} patches over "
          f"{result.reference_chunks} reference chunks, "
          f"{batches} comparer batch(es)")
    if batches != 1:
        failures.append(
            f"variant search took {batches} comparer batches, not 1")
    if scanned != expected_scanned:
        failures.append(
            f"comparer scanned {scanned} entries, expected "
            f"{expected_scanned} (reference + patches)")
    if not expected_payload["events"]:
        failures.append("variant search produced no events")

    # 2. Served (single process) + TOML enzyme config: byte-identity
    #    and the enzyme registry end to end.
    with tempfile.TemporaryDirectory() as tmp:
        config_path = os.path.join(tmp, "enzymes.toml")
        with open(config_path, "w", encoding="ascii") as handle:
            handle.write(_ENZYME_TOML)
        from ..enzymes import load_enzymes
        enzymes = load_enzymes(config_path)
        enzyme_pairs = [
            (enzyme,
             GenomeSiteIndex.build(assembly, enzyme.pattern,
                                   chunk_size=1 << 15))
            for enzyme in enzymes]
    server = OffTargetServer(index, max_wait_ms=1.0,
                             enzymes=enzyme_pairs)
    handle = server.start_background()
    try:
        with ServiceClient(handle.host, handle.port) as client:
            served = client.variant_search(queries, haplotypes)
            served.pop("id", None)
            served.pop("ok", None)
            if json.dumps(served) != json.dumps(expected_payload):
                failures.append(
                    "served variant response is not byte-identical "
                    "to the in-process payload")
            else:
                print("# served response byte-identical to in-process")
            listing = client.enzymes()
            names = [row["name"] for row in listing["enzymes"]]
            if names != ["SpCas9-NGG"]:
                failures.append(
                    f"enzymes op listed {names}, expected "
                    f"['SpCas9-NGG']")
            enzyme_hits = client.query(
                [Query("N" * 20 + "NGG", 4)], enzyme="SpCas9-NGG")
            print(f"# enzyme 'SpCas9-NGG' served "
                  f"{sum(len(per) for per in enzyme_hits)} hits")
            stats = client.stats()
            if stats.get("requests_by_kind", {}).get("variant") != 1:
                failures.append(
                    "scheduler did not account the variant request")
    finally:
        handle.stop()

    # 3. Sharded serving: parent-side accounting plus byte-identity.
    #    Run under scripts/verify.sh, this leg also puts the variant
    #    path under the shm leak guard.
    sharded = ShardedSiteIndex(index, shards=shards)
    try:
        server = OffTargetServer(sharded, max_wait_ms=1.0)
        handle = server.start_background()
        try:
            before = sharded.comparer_stats()
            with ServiceClient(handle.host, handle.port) as client:
                served = client.variant_search(queries, haplotypes)
            served.pop("id", None)
            served.pop("ok", None)
            after = sharded.comparer_stats()
            if json.dumps(served) != json.dumps(expected_payload):
                failures.append(
                    "sharded variant response is not byte-identical "
                    "to the in-process payload")
            else:
                print(f"# sharded ({shards} workers, "
                      f"degraded={sharded.degraded}) response "
                      f"byte-identical")
            delta = (after["entries_scanned"]
                     - before["entries_scanned"])
            if not sharded.degraded and \
                    delta != result.patched_chunks:
                failures.append(
                    f"sharded parent scanned {delta} entries, "
                    f"expected {result.patched_chunks} (patches only "
                    f"— reference chunks belong to the workers)")
        finally:
            handle.stop()
    finally:
        sharded.close()

    if failures:
        for failure in failures:
            print(f"smoke FAILED: {failure}")
        return 1
    print(f"smoke OK: {len(expected_payload['events'])} events "
          f"byte-identical across in-process, served and sharded "
          f"tiers in one comparer batch per search")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.variants",
        description="Variant-aware search smoke test: single-batch "
                    "accounting, cross-tier byte-identity, enzyme "
                    "registry serving.")
    parser.add_argument("--smoke", action="store_true",
                        help="run the variant smoke")
    parser.add_argument("--scale", type=float, default=0.0002,
                        help="synthetic assembly scale factor")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=2,
                        help="worker processes for the sharded leg")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke is supported; use the `variants` "
                     "CLI subcommand for real searches")
    return _smoke(args.scale, args.seed, shards=args.shards)


if __name__ == "__main__":
    raise SystemExit(main())
