"""Durability layer: checkpointed, resumable searches.

The paper's workload is long-running by construction — full hg19/hg38
sweeps cover hundreds of device-sized chunks (Table VIII) — so a process
dying near the end of a run must not throw the run away.  This package
makes any search resumable and its output crash-safe:

* :mod:`repro.resilience.journal` — an append-only per-chunk journal
  with per-record checksums.  Every completed chunk's device outputs are
  appended with flush + fsync, so a SIGKILL at any byte leaves a file
  that recovery can truncate to the last valid record.
* :mod:`repro.resilience.checkpoint` — the run manifest (a fingerprint
  of genome identity, pattern, queries and chunking) and the
  :class:`~repro.resilience.checkpoint.CheckpointSession` that the
  serial loop, the streaming engine and the multi-device searcher all
  drive: completed chunks are skipped on resume and their persisted
  outputs are replayed through the ordered
  :class:`~repro.core.pipeline.SearchAccumulator`, so a resumed run's
  hit list is byte-identical to an uninterrupted one.
"""

from .checkpoint import (CHECKPOINT_ENV, CheckpointError,
                         CheckpointMismatchError, CheckpointSession,
                         RunManifest, resolve_session)
from .journal import (JOURNAL_NAME, JournalError, JournalWriter,
                      load_journal, repair_journal)

__all__ = [
    "CHECKPOINT_ENV",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointSession",
    "JOURNAL_NAME",
    "JournalError",
    "JournalWriter",
    "RunManifest",
    "load_journal",
    "repair_journal",
    "resolve_session",
]
