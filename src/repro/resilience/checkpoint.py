"""Run manifests and checkpoint sessions.

A :class:`RunManifest` fingerprints everything that determines a
search's chunk stream and results: the genome's identity (assembly name
plus every chromosome's name and length), the PAM pattern, the queries
with their mismatch thresholds, and the chunk size.  Two runs with the
same fingerprint enumerate byte-identical chunks in the same order, so
a per-chunk journal written by one run can be replayed by the other.

A :class:`CheckpointSession` binds a manifest to a directory holding
``manifest.json`` and ``journal.jsonl``:

* **fresh** (``resume=False``) — the manifest is written atomically
  (temp file + rename) and any previous journal is truncated;
* **resume** (``resume=True``) — the stored fingerprint must match
  (:class:`CheckpointMismatchError` otherwise), the journal's corrupt
  or torn tail is repaired to the last valid record, and every valid
  record becomes a restorable chunk output.

Execution paths (serial loop, streaming engine, multi-device searcher)
then call :meth:`CheckpointSession.restore` before running a chunk's
kernels — a hit skips the kernels entirely — and
:meth:`CheckpointSession.record` after merging a freshly computed
chunk.  Restores are validated against the live chunk (scan length
must match) and invalid records are recomputed, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.pipeline import _ChunkOutput
from ..genome.assembly import Chunk
from ..observability import tracing
from .journal import (JOURNAL_NAME, JournalWriter, make_record,
                      repair_journal, unpack_output)

#: Environment variable consulted when no policy names a directory.
CHECKPOINT_ENV = "REPRO_CHECKPOINT_DIR"

#: Manifest file name inside a checkpoint directory.
MANIFEST_NAME = "manifest.json"

MANIFEST_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised for unusable checkpoint state or configuration."""


class CheckpointMismatchError(CheckpointError):
    """The stored manifest fingerprint does not match this run."""


@dataclass(frozen=True)
class RunManifest:
    """Fingerprintable description of one search's chunk stream."""

    genome: str
    chromosomes: Tuple[Tuple[str, int], ...]
    pattern: str
    queries: Tuple[Tuple[str, int], ...]
    chunk_size: int

    @classmethod
    def from_search(cls, assembly, request, chunk_size: int
                    ) -> "RunManifest":
        """Build the manifest for ``search(assembly, request)``.

        Accepts any assembly-like object exposing ``name`` and
        ``chromosomes`` (including the engine's shard/subset views,
        which proxy the full assembly's identity — so every share of a
        multi-device run agrees on one fingerprint).
        """
        return cls(
            genome=assembly.name,
            chromosomes=tuple((chrom.name, len(chrom))
                              for chrom in assembly.chromosomes),
            pattern=request.pattern,
            queries=tuple((q.sequence, q.max_mismatches)
                          for q in request.queries),
            chunk_size=int(chunk_size))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "genome": self.genome,
            "chromosomes": [list(pair) for pair in self.chromosomes],
            "pattern": self.pattern,
            "queries": [list(pair) for pair in self.queries],
            "chunk_size": self.chunk_size,
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form of the manifest."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".manifest-",
                               suffix=".part")
    try:
        with os.fdopen(fd, "w", encoding="ascii") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CheckpointSession:
    """Durable progress state for one (possibly interrupted) search.

    Thread-safe: the streaming engine's workers call :meth:`restore`
    concurrently while the merging thread calls :meth:`record`.
    """

    def __init__(self, directory: str, manifest: RunManifest,
                 resume: bool = False):
        self.directory = os.fspath(directory)
        self.manifest = manifest
        self.resume = resume
        self.repaired_bytes = 0
        os.makedirs(self.directory, exist_ok=True)
        self.manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        self.journal_path = os.path.join(self.directory, JOURNAL_NAME)
        self._lock = threading.Lock()
        self._restored: Dict[Tuple[str, int], Dict[str, Any]] = {}
        self._completed: set = set()
        if resume and os.path.exists(self.manifest_path):
            self._load_existing()
        else:
            self._start_fresh()
        self._writer = JournalWriter(self.journal_path)

    # -- construction ---------------------------------------------------

    def _load_existing(self) -> None:
        try:
            with open(self.manifest_path, "r", encoding="ascii") as fh:
                stored = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest "
                f"{self.manifest_path!r}: {exc}") from exc
        fingerprint = self.manifest.fingerprint()
        stored_fp = stored.get("fingerprint")
        if stored_fp != fingerprint:
            raise CheckpointMismatchError(
                f"checkpoint at {self.directory!r} was written by a "
                f"different run (stored fingerprint {stored_fp!r}, this "
                f"run {fingerprint!r}); refusing to resume — pass a "
                f"fresh --checkpoint-dir or drop --resume to overwrite")
        records, self.repaired_bytes = repair_journal(self.journal_path)
        for record in records:
            key = (record["chrom"], int(record["start"]))
            self._restored[key] = record
            self._completed.add(key)
        tracing.instant("checkpoint_restore", cat="checkpoint",
                        records=len(records),
                        repaired_bytes=self.repaired_bytes)

    def _start_fresh(self) -> None:
        _atomic_write_json(self.manifest_path, {
            "fingerprint": self.manifest.fingerprint(),
            **self.manifest.to_dict()})
        # Truncate any stale journal from an earlier, different run.
        with open(self.journal_path, "wb"):
            pass

    # -- progress queries ----------------------------------------------

    @staticmethod
    def key(chunk: Chunk) -> Tuple[str, int]:
        """A chunk's durable identity: (chromosome, start offset)."""
        return (chunk.chrom, int(chunk.start))

    @property
    def restored_count(self) -> int:
        with self._lock:
            return len(self._restored)

    def has(self, chunk: Chunk) -> bool:
        with self._lock:
            return self.key(chunk) in self._completed

    def restore(self, chunk: Chunk) -> Optional[_ChunkOutput]:
        """Replayable output for ``chunk``, or None to recompute.

        A journaled record whose scan length disagrees with the live
        chunk (or whose payload fails validation) is dropped — the
        chunk is recomputed and re-journaled rather than trusted.
        """
        key = self.key(chunk)
        with self._lock:
            record = self._restored.get(key)
        if record is None:
            return None
        try:
            if int(record["scan_length"]) != int(chunk.scan_length):
                raise ValueError(
                    f"scan length {record['scan_length']} != "
                    f"{chunk.scan_length}")
            output = unpack_output(record["output"])
        except (KeyError, TypeError, ValueError) as exc:
            with self._lock:
                self._restored.pop(key, None)
                self._completed.discard(key)
            tracing.instant("checkpoint_invalid", cat="checkpoint",
                            chrom=chunk.chrom, start=int(chunk.start),
                            error=str(exc))
            return None
        return output

    # -- journal writes -------------------------------------------------

    def record(self, chunk: Chunk, output: _ChunkOutput,
               device: Optional[str] = None,
               reassigned_from: Optional[str] = None) -> None:
        """Durably journal one freshly computed chunk."""
        key = self.key(chunk)
        with self._lock:
            if key in self._completed:
                return
            self._completed.add(key)
        self._writer.append(make_record(
            chunk, output, device=device,
            reassigned_from=reassigned_from))

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "CheckpointSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def resolve_session(policy, assembly, request, chunk_size: int
                    ) -> Optional[CheckpointSession]:
    """Build the session a policy (or the environment) asks for.

    ``policy.checkpoint_dir`` wins; when it is unset, the
    ``REPRO_CHECKPOINT_DIR`` environment variable is consulted, so
    long-running deployments can turn durability on without touching
    call sites.  Returns None when neither names a directory.
    """
    directory = getattr(policy, "checkpoint_dir", None)
    resume = bool(getattr(policy, "resume", False))
    if directory is None:
        directory = os.environ.get(CHECKPOINT_ENV) or None
    if not directory:
        if resume:
            raise CheckpointError(
                "resume requested but no checkpoint directory is "
                "configured (set checkpoint_dir or REPRO_CHECKPOINT_DIR)")
        return None
    manifest = RunManifest.from_search(assembly, request, chunk_size)
    return CheckpointSession(directory, manifest, resume=resume)
