"""Append-only per-chunk journal with per-record checksums.

One journal line per completed chunk::

    <crc32 hex, 8 chars> <canonical JSON payload>\\n

The payload carries the chunk's identity (chromosome, start offset,
scan length), the device that processed it (plus the device it was
reassigned from, when multi-device failover moved the chunk), and the
raw device outputs (:class:`~repro.core.pipeline._ChunkOutput`) with
every numpy array base64-encoded alongside its dtype — enough to replay
the chunk through :class:`~repro.core.pipeline.SearchAccumulator`
without touching a kernel.

Crash-safety model:

* **Append** — each record is written as one line followed by flush +
  fsync, so a record is either fully durable or entirely absent from
  the valid prefix.
* **Recovery** — :func:`load_journal` scans from the start and stops at
  the first line that is torn (no trailing newline), fails its
  checksum, or does not decode; everything after that point is
  untrusted.  :func:`repair_journal` rewrites the valid prefix through
  a temp file + atomic rename, so recovery itself is crash-safe too.

Records are *never* trusted blindly: the checksum guards the line, and
:func:`unpack_output` re-validates dtypes and shapes before handing
arrays back to the accumulator.
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
import zlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.pipeline import _ChunkOutput
from ..genome.assembly import Chunk

#: Journal file name inside a checkpoint directory.
JOURNAL_NAME = "journal.jsonl"

#: Record format version, bumped on any layout change.
JOURNAL_VERSION = 1

#: dtypes a journal record is allowed to name (what the kernels emit).
_ALLOWED_DTYPES = ("uint8", "uint16", "uint32")

_REQUIRED_KEYS = ("v", "chrom", "start", "scan_length", "output")


class JournalError(ValueError):
    """Raised for malformed journal lines or payloads."""


# ---------------------------------------------------------------------------
# Array / output (de)serialization
# ---------------------------------------------------------------------------


def _pack_array(arr: np.ndarray) -> Dict[str, str]:
    arr = np.ascontiguousarray(arr)
    return {"dtype": str(arr.dtype),
            "b64": base64.b64encode(arr.tobytes()).decode("ascii")}


def _unpack_array(obj: Any) -> np.ndarray:
    if (not isinstance(obj, dict) or "dtype" not in obj
            or "b64" not in obj):
        raise JournalError(f"bad packed array {obj!r}")
    dtype = obj["dtype"]
    if dtype not in _ALLOWED_DTYPES:
        raise JournalError(f"journal names disallowed dtype {dtype!r}")
    try:
        raw = base64.b64decode(obj["b64"], validate=True)
    except Exception as exc:
        raise JournalError(f"bad base64 array payload: {exc}") from exc
    return np.frombuffer(raw, dtype=np.dtype(dtype)).copy()


def pack_output(output: _ChunkOutput) -> Dict[str, Any]:
    """Serialize one chunk's device outputs to a JSON-able dict."""
    return {
        "candidate_count": int(output.candidate_count),
        "loci": _pack_array(output.loci),
        "flags": _pack_array(output.flags),
        "per_query": [[_pack_array(mm_loci), _pack_array(mm_count),
                       _pack_array(direction)]
                      for mm_loci, mm_count, direction
                      in output.per_query],
    }


def unpack_output(obj: Any) -> _ChunkOutput:
    """Rebuild a :class:`_ChunkOutput`, validating the payload shape."""
    if not isinstance(obj, dict):
        raise JournalError(f"journal output is not an object: {obj!r}")
    try:
        count = int(obj["candidate_count"])
        per_query = [tuple(_unpack_array(part) for part in triple)
                     for triple in obj["per_query"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(f"bad journal output payload: {exc}") from exc
    for triple in per_query:
        if len(triple) != 3:
            raise JournalError("per-query entry is not a triple")
    return _ChunkOutput(candidate_count=count, per_query=list(per_query),
                        loci=_unpack_array(obj["loci"]),
                        flags=_unpack_array(obj["flags"]))


# ---------------------------------------------------------------------------
# Record encoding
# ---------------------------------------------------------------------------


def make_record(chunk: Chunk, output: _ChunkOutput,
                device: Optional[str] = None,
                reassigned_from: Optional[str] = None) -> Dict[str, Any]:
    """Build the journal record dict for one completed chunk."""
    record: Dict[str, Any] = {
        "v": JOURNAL_VERSION,
        "chrom": chunk.chrom,
        "start": int(chunk.start),
        "scan_length": int(chunk.scan_length),
        "output": pack_output(output),
    }
    if device is not None:
        record["device"] = device
    if reassigned_from is not None:
        record["reassigned_from"] = reassigned_from
    return record


def encode_record(record: Dict[str, Any]) -> bytes:
    """Encode a record dict as one checksummed journal line."""
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("ascii")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x " % crc + payload + b"\n"


def decode_record(line: bytes) -> Dict[str, Any]:
    """Decode one journal line (without its newline), verifying the CRC."""
    if len(line) < 10 or line[8:9] != b" ":
        raise JournalError("journal line too short or missing CRC field")
    try:
        crc = int(line[:8], 16)
    except ValueError:
        raise JournalError("journal line has a non-hex CRC") from None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise JournalError("journal record checksum mismatch")
    try:
        record = json.loads(payload.decode("ascii"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(f"journal record is not JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise JournalError("journal record is not an object")
    missing = [key for key in _REQUIRED_KEYS if key not in record]
    if missing:
        raise JournalError(f"journal record missing keys {missing}")
    if record["v"] != JOURNAL_VERSION:
        raise JournalError(f"unsupported journal version {record['v']!r}")
    return record


# ---------------------------------------------------------------------------
# File-level read / repair / append
# ---------------------------------------------------------------------------


def load_journal(path: str) -> Tuple[List[Dict[str, Any]], int, int]:
    """Read the valid prefix of a journal file.

    Returns ``(records, valid_bytes, total_bytes)``.  Scanning stops at
    the first record that is torn (no trailing newline), corrupt
    (checksum/JSON failure) or structurally invalid; a missing file
    reads as empty.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return [], 0, 0
    records: List[Dict[str, Any]] = []
    offset = 0
    while offset < len(blob):
        newline = blob.find(b"\n", offset)
        if newline < 0:
            break  # torn tail: the write never completed
        try:
            records.append(decode_record(blob[offset:newline]))
        except JournalError:
            break
        offset = newline + 1
    return records, offset, len(blob)


def repair_journal(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Truncate a journal to its last valid record, crash-safely.

    Returns ``(records, truncated_bytes)``.  When the tail is corrupt or
    torn, the valid prefix is rewritten through a temp file in the same
    directory and atomically renamed over the original, so a crash
    during repair leaves either the old or the repaired file — never a
    half-written one.
    """
    records, valid, total = load_journal(path)
    truncated = total - valid
    if truncated:
        with open(path, "rb") as handle:
            prefix = handle.read(valid)
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".journal-",
                                   suffix=".part")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(prefix)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    return records, truncated


class JournalWriter:
    """Durable appender: one fsynced line per completed chunk."""

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "ab")

    def append(self, record: Dict[str, Any]) -> None:
        line = encode_record(record)
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
