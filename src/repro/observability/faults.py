"""Deterministic fault injection for the streaming engine.

A *fault plan* names chunk indices on which a pipeline's
``_process_chunk`` should misbehave, and how:

* ``raise`` — raise :class:`InjectedFault` before the kernels run
  (models a worker dying mid-chunk);
* ``stall`` — sleep for a configurable duration before the kernels run
  (models a hung device/queue; combined with the engine's per-chunk
  deadline this exercises the watchdog path);
* ``crash`` — terminate the process immediately with ``os._exit(1)``
  (models a backend index server dying mid-request; the routing tier's
  failover path is exercised with this kind);
* ``disconnect`` — a *serving-layer* kind: the server closes the
  client's connection without writing a response (a half-open
  connection from the client's point of view).  The index applied is
  the per-server query-request ordinal rather than a chunk index when
  a plan is given to ``OffTargetServer(request_fault_plan=...)``.

The engine applies plans through :meth:`FaultInjector.inject`, which
handles ``raise``/``stall``/``crash`` directly (``disconnect`` degrades
to ``raise`` there — an engine has no connection to drop).  The
serving layer instead consumes entries with :meth:`FaultInjector.fire`
and applies them itself, because an asyncio server must stall with
``asyncio.sleep`` and drop connections at the protocol layer.

Plans are written as a comma-separated spec, accepted from
``ExecutionPolicy.fault_plan`` or the ``REPRO_FAULT_INJECT``
environment variable::

    raise@2            # raise once on chunk 2
    stall@5:0.4        # stall 0.4 s once on chunk 5
    raise@7x3          # raise on the first three attempts at chunk 7
    raise@0,stall@2:0.3,raise@7x3   # combined
    MI60!raise@0x9     # device-scoped: fires only on the MI60 share

A ``DEVICE!`` prefix scopes an entry to one modeled device: injectors
are resolved with the device their engine drives, and entries naming a
different device never fire.  This is how multi-device failover is
exercised — a persistent plan like ``MI60!raise@0x9`` kills exactly one
device's shard while the survivors keep working.

Each entry fires a bounded number of times (``xCOUNT``, default once)
and then goes quiet, so a retried chunk succeeds deterministically —
the property the fault-injected equivalence tests rely on.  The
:class:`FaultInjector` holding the remaining-fire state is thread-safe;
process-pool workers each build their own injector from the same spec
(per-process counters), so plans aimed at the process backend should
use single-fire entries and rely on the engine's main-process fallback.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Sequence, Tuple

from . import tracing

#: Environment variable consulted when no explicit plan is configured.
FAULT_ENV = "REPRO_FAULT_INJECT"

#: Default stall duration (seconds) when an entry gives none.
DEFAULT_STALL_S = 0.25

_KINDS = ("raise", "stall", "crash", "disconnect")


class InjectedFault(RuntimeError):
    """The failure raised by a ``raise`` fault action."""

    def __init__(self, chunk_index: int):
        super().__init__(f"injected fault on chunk {chunk_index}")
        self.chunk_index = chunk_index

    def __reduce__(self):
        # Keep the constructor signature across pickling (process pools
        # ship worker exceptions back to the parent).
        return (InjectedFault, (self.chunk_index,))


@dataclass(frozen=True)
class FaultSpec:
    """One plan entry: what to do, where, and how many times."""

    chunk_index: int
    kind: str
    count: int = 1
    stall_s: float = DEFAULT_STALL_S
    #: Restrict this entry to one modeled device (None = any device).
    device: Optional[str] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"fault kind must be one of {_KINDS}, "
                             f"got {self.kind!r}")
        if self.chunk_index < 0:
            raise ValueError(
                f"fault chunk index must be >= 0, got {self.chunk_index}")
        if self.count < 1:
            raise ValueError(
                f"fault fire count must be >= 1, got {self.count}")
        if self.stall_s <= 0:
            raise ValueError(
                f"stall duration must be positive, got {self.stall_s}")


def parse_fault_plan(spec: str) -> Tuple[FaultSpec, ...]:
    """Parse a plan spec (``[DEVICE!]KIND@INDEX[:SECONDS][xCOUNT],...``).

    Raises :class:`ValueError` with the offending entry on any malformed
    input, so a bad ``REPRO_FAULT_INJECT`` fails loudly at engine start
    instead of silently injecting nothing.
    """
    entries = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        device = None
        if "!" in part:
            device, _, part = part.partition("!")
            device = device.strip()
            part = part.strip()
            if not device:
                raise ValueError(
                    f"bad fault entry {part!r}: empty device name "
                    f"before '!'")
        kind, sep, rest = part.partition("@")
        kind = kind.strip().lower()
        if not sep or not rest:
            raise ValueError(
                f"bad fault entry {part!r}: expected KIND@INDEX"
                f"[:SECONDS][xCOUNT]")
        count = 1
        if "x" in rest:
            rest, _, count_text = rest.partition("x")
            try:
                count = int(count_text)
            except ValueError:
                raise ValueError(f"bad fault fire count in {part!r}"
                                 ) from None
        stall_s = DEFAULT_STALL_S
        if ":" in rest:
            rest, _, stall_text = rest.partition(":")
            try:
                stall_s = float(stall_text)
            except ValueError:
                raise ValueError(f"bad stall duration in {part!r}"
                                 ) from None
        try:
            index = int(rest)
        except ValueError:
            raise ValueError(f"bad chunk index in {part!r}") from None
        entries.append(FaultSpec(chunk_index=index, kind=kind,
                                 count=count, stall_s=stall_s,
                                 device=device))
    if not entries:
        raise ValueError(f"fault plan {spec!r} names no entries")
    return tuple(entries)


class FaultInjector:
    """Stateful, thread-safe firing of a fault plan.

    Each plan entry is expanded to ``count`` queued firings per chunk
    index; :meth:`inject` pops and applies the next one (if any) under a
    lock, so concurrent workers and retries consume firings exactly
    once, in plan order.
    """

    def __init__(self, plan: Sequence[FaultSpec],
                 device: Optional[str] = None):
        self._lock = threading.Lock()
        self._queues: Dict[int, Deque[FaultSpec]] = {}
        for entry in plan:
            if (device is not None and entry.device is not None
                    and entry.device != device):
                continue  # scoped to a different device
            queue = self._queues.setdefault(entry.chunk_index, deque())
            for _ in range(entry.count):
                queue.append(entry)

    def pending(self) -> int:
        """How many firings remain across all chunk indices."""
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def fire(self, chunk_index: int) -> Optional[FaultSpec]:
        """Consume and return the next firing for ``chunk_index``."""
        with self._lock:
            queue = self._queues.get(chunk_index)
            if not queue:
                return None
            return queue.popleft()

    def inject(self, chunk_index: int) -> None:
        """Apply the next fault for this chunk index, if one remains."""
        entry = self.fire(chunk_index)
        if entry is None:
            return
        tracing.instant("fault", cat="fault", chunk=chunk_index,
                        kind=entry.kind)
        if entry.kind == "crash":
            os._exit(1)
        if entry.kind in ("raise", "disconnect"):
            # An engine has no connection to half-close; "disconnect"
            # degrades to the nearest engine-level failure.
            raise InjectedFault(chunk_index)
        time.sleep(entry.stall_s)


def resolve_injector(plan_spec: Optional[str] = None,
                     device: Optional[str] = None
                     ) -> Optional[FaultInjector]:
    """Build an injector from an explicit spec or ``REPRO_FAULT_INJECT``.

    ``device`` names the modeled device the calling engine drives;
    plan entries scoped to a different device are dropped.  Returns
    None when neither source names a plan — the engine's normal,
    zero-overhead state.
    """
    spec = plan_spec if plan_spec is not None else os.environ.get(FAULT_ENV)
    if not spec:
        return None
    return FaultInjector(parse_fault_plan(spec), device=device)
