"""Runtime observability and robustness: tracing and fault injection.

Two cooperating layers over the streaming engine and the runtime
models:

* :mod:`repro.observability.tracing` — a lightweight span recorder with
  per-thread buffers.  The engine, the pipelines and both runtime
  front-ends record spans (chunk stage-in, every kernel launch, merges,
  cache hits/misses) when a recorder is active; the result exports as
  Chrome-trace JSON (``chrome://tracing`` / Perfetto) or a per-kernel
  summary table.
* :mod:`repro.observability.faults` — deterministic fault injection
  (``REPRO_FAULT_INJECT`` / ``ExecutionPolicy.fault_plan``) that makes a
  pipeline's ``_process_chunk`` raise or stall on chosen chunk indices,
  so the engine's retry / deadline / serial-fallback paths can be
  exercised in tests and tier-1 CI.
"""

from .faults import (FAULT_ENV, FaultInjector, FaultSpec, InjectedFault,
                     parse_fault_plan, resolve_injector)
from .tracing import Span, TraceRecorder, recording

__all__ = [
    "FAULT_ENV", "FaultInjector", "FaultSpec", "InjectedFault",
    "Span", "TraceRecorder", "parse_fault_plan", "recording",
    "resolve_injector",
]
