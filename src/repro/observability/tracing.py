"""Span/trace recorder: per-launch visibility for engine and runtimes.

The PR-1 engine exposed five aggregate stage timers; production SYCL and
OpenCL codes instead attribute cost per kernel launch through event
profiling.  This module provides the Python analog: a
:class:`TraceRecorder` that instrumentation sites write *spans* into
(chunk stage-in, every kernel launch, merge, cache hits/misses), cheap
enough to leave compiled in.

Design points:

* **Per-thread buffers.**  Each recording thread appends to its own
  list, so the hot path takes no lock; buffers are merged on export.
* **Process-safe by shipping.**  :class:`Span` is a plain picklable
  dataclass; process-pool workers record into their own recorder and
  ship the drained spans back with each chunk result, which the parent
  folds in via :func:`merge`.
* **Module-level activation.**  Instrumentation sites call the
  module-level :func:`span` / :func:`instant` helpers, which are no-ops
  (a shared null context manager) unless a recorder has been activated
  with :func:`recording` — so the pipelines and runtime models pay
  nearly nothing when tracing is off.
* **Chrome-trace export.**  :meth:`TraceRecorder.chrome_trace` emits the
  Trace Event Format understood by ``chrome://tracing`` and Perfetto:
  complete events (``ph: "X"``) for spans, instant events (``ph: "i"``)
  for cache hits/misses and fault firings, and thread-name metadata.

Timestamps use ``time.time()`` (not ``perf_counter``) so spans recorded
in different processes share a clock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

_CLOCK = time.time


@dataclass
class Span:
    """One traced interval (or instant event, when ``phase == "i"``)."""

    name: str
    cat: str
    start_s: float
    end_s: float
    pid: int
    tid: str
    args: Dict[str, Any] = field(default_factory=dict)
    #: Chrome-trace phase: "X" complete event, "i" instant event,
    #: "M" metadata event (process/thread naming), "s"/"f" flow
    #: start/finish (arrows between lanes, e.g. router -> backend).
    phase: str = "X"
    #: Correlates "s"/"f" flow events; ignored for other phases.
    flow_id: Optional[int] = None

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class TraceRecorder:
    """Thread- and process-safe span recorder.

    Threads write lock-free into per-thread buffers; spans from worker
    processes arrive via :meth:`merge`.  ``spans()`` returns everything
    recorded so far in start-time order.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._buffers: List[List[Span]] = []
        self._merged: List[Span] = []

    # -- recording ------------------------------------------------------

    def _buffer(self) -> List[Span]:
        buf = getattr(self._local, "buffer", None)
        if buf is None:
            buf = []
            self._local.buffer = buf
            with self._lock:
                self._buffers.append(buf)
        return buf

    @contextmanager
    def span(self, name: str, cat: str = "", **args) -> Iterator[Span]:
        """Record a complete event around the ``with`` body.

        The yielded :class:`Span` is live — callers may add ``args``
        entries (e.g. a chunk index learned inside the body).  An
        exception in the body is recorded as ``args["error"]`` and
        re-raised.
        """
        entry = Span(name=name, cat=cat, start_s=_CLOCK(), end_s=0.0,
                     pid=os.getpid(),
                     tid=threading.current_thread().name,
                     args=dict(args))
        try:
            yield entry
        except BaseException as exc:
            entry.args["error"] = type(exc).__name__
            raise
        finally:
            entry.end_s = _CLOCK()
            self._buffer().append(entry)

    def instant(self, name: str, cat: str = "", **args) -> Span:
        """Record a zero-duration instant event (cache hit, fault)."""
        now = _CLOCK()
        entry = Span(name=name, cat=cat, start_s=now, end_s=now,
                     pid=os.getpid(),
                     tid=threading.current_thread().name,
                     args=dict(args), phase="i")
        self._buffer().append(entry)
        return entry

    def counter(self, name: str, cat: str = "", **values) -> Span:
        """Record a counter sample (Chrome-trace ``ph: "C"`` event).

        Counter events render as a stacked value track in trace
        viewers; the sharded tier samples ring occupancy through this
        so ring sizing can be read off a trace instead of guessed.
        ``values`` must be numeric — they become the counter series.
        """
        now = _CLOCK()
        entry = Span(name=name, cat=cat, start_s=now, end_s=now,
                     pid=os.getpid(),
                     tid=threading.current_thread().name,
                     args=dict(values), phase="C")
        self._buffer().append(entry)
        return entry

    def flow(self, name: str, flow_id: int, cat: str = "",
             end: bool = False, **args) -> Span:
        """Record a flow start (``ph: "s"``) or finish (``ph: "f"``).

        Flow events draw arrows between lanes in Chrome-trace viewers;
        the routing tier emits a start when it dispatches a sub-request
        and a finish when the answering backend's response lands, so a
        hedged request's fan-out is visible as arrows from the router
        span to each backend span sharing the same ``flow_id``.
        """
        now = _CLOCK()
        entry = Span(name=name, cat=cat, start_s=now, end_s=now,
                     pid=os.getpid(),
                     tid=threading.current_thread().name,
                     args=dict(args), phase="f" if end else "s",
                     flow_id=int(flow_id))
        self._buffer().append(entry)
        return entry

    def set_process_name(self, label: str) -> Span:
        """Record a ``process_name`` metadata event for this process.

        Shard workers call this so their spans group under a readable
        lane (``shard-0``, ``shard-1``, ...) in Chrome-trace viewers
        instead of a bare pid.  The span is picklable like any other,
        so workers ship it back with their drained spans.
        """
        now = _CLOCK()
        entry = Span(name="process_name", cat="__metadata",
                     start_s=now, end_s=now, pid=os.getpid(),
                     tid=threading.current_thread().name,
                     args={"name": label}, phase="M")
        self._buffer().append(entry)
        return entry

    # -- collection -----------------------------------------------------

    def merge(self, spans: Sequence[Span]) -> None:
        """Fold spans shipped from another process (or recorder) in."""
        with self._lock:
            self._merged.extend(spans)

    def drain(self) -> List[Span]:
        """Remove and return everything recorded so far.

        Process-pool workers drain after each chunk so only the new
        slice crosses the pool boundary.
        """
        with self._lock:
            out: List[Span] = []
            for buf in self._buffers:
                out.extend(buf)
                del buf[:]
            out.extend(self._merged)
            del self._merged[:]
        out.sort(key=lambda s: s.start_s)
        return out

    def spans(self) -> List[Span]:
        with self._lock:
            out = [s for buf in self._buffers for s in buf]
            out.extend(self._merged)
        out.sort(key=lambda s: s.start_s)
        return out

    # -- export ---------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """The trace in Chrome Trace Event Format (JSON object form)."""
        spans = self.spans()
        origin = min((s.start_s for s in spans), default=0.0)
        tids: Dict[tuple, int] = {}
        events: List[Dict[str, Any]] = []
        for span in spans:
            key = (span.pid, span.tid)
            if key not in tids:
                tids[key] = len(tids)
                events.append({
                    "name": "thread_name", "ph": "M", "pid": span.pid,
                    "tid": tids[key], "args": {"name": span.tid}})
            if span.phase == "M":
                events.append({
                    "name": span.name, "ph": "M", "pid": span.pid,
                    "tid": tids[key], "args": span.args})
                continue
            event: Dict[str, Any] = {
                "name": span.name,
                "cat": span.cat or "default",
                "ph": span.phase,
                "ts": (span.start_s - origin) * 1e6,
                "pid": span.pid,
                "tid": tids[key],
                "args": span.args,
            }
            if span.phase == "X":
                event["dur"] = span.duration_s * 1e6
            elif span.phase == "i":
                event["s"] = "t"
            elif span.phase in ("s", "f"):
                event["id"] = span.flow_id or 0
                if span.phase == "f":
                    # Bind the arrow head to the enclosing slice.
                    event["bp"] = "e"
            # Counter events ("C") carry their values directly in args.
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save(self, path: str) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        with open(path, "w", encoding="ascii") as handle:
            json.dump(self.chrome_trace(), handle)


# ---------------------------------------------------------------------------
# Module-level activation: instrumentation sites go through these
# helpers so they cost almost nothing when no recorder is active.
# ---------------------------------------------------------------------------

_active: Optional[TraceRecorder] = None
_active_lock = threading.Lock()


class _NullSpan:
    """Stand-in yielded when tracing is inactive; swallows arg writes."""

    __slots__ = ("args",)

    def __init__(self):
        self.args: Dict[str, Any] = {}


@contextmanager
def _null_span() -> Iterator[_NullSpan]:
    yield _NullSpan()


def active() -> Optional[TraceRecorder]:
    """The currently active recorder, or None."""
    return _active


def activate(recorder: Optional[TraceRecorder]) -> None:
    """Install ``recorder`` as the process-wide active recorder."""
    global _active
    with _active_lock:
        _active = recorder


@contextmanager
def recording(recorder: Optional[TraceRecorder] = None
              ) -> Iterator[TraceRecorder]:
    """Activate a recorder for the duration of the ``with`` block.

    Creates a fresh :class:`TraceRecorder` when none is given; restores
    the previously active recorder (usually None) on exit.
    """
    if recorder is None:
        recorder = TraceRecorder()
    previous = _active
    activate(recorder)
    try:
        yield recorder
    finally:
        activate(previous)


def span(name: str, cat: str = "", **args):
    """Record a span on the active recorder; no-op context otherwise."""
    recorder = _active
    if recorder is None:
        return _null_span()
    return recorder.span(name, cat, **args)


def instant(name: str, cat: str = "", **args) -> None:
    """Record an instant event on the active recorder, if any."""
    recorder = _active
    if recorder is not None:
        recorder.instant(name, cat, **args)


def counter(name: str, cat: str = "", **values) -> None:
    """Record a counter sample on the active recorder, if any."""
    recorder = _active
    if recorder is not None:
        recorder.counter(name, cat, **values)


def flow(name: str, flow_id: int, cat: str = "", end: bool = False,
         **args) -> None:
    """Record a flow start/finish on the active recorder, if any."""
    recorder = _active
    if recorder is not None:
        recorder.flow(name, flow_id, cat, end=end, **args)


def merge(spans: Sequence[Span]) -> None:
    """Fold shipped spans into the active recorder, if any."""
    recorder = _active
    if recorder is not None and spans:
        recorder.merge(spans)


def set_process_name(label: str) -> None:
    """Name this process in trace exports, if a recorder is active."""
    recorder = _active
    if recorder is not None:
        recorder.set_process_name(label)


def drain_active() -> List[Span]:
    """Drain the active recorder (for shipping across a pool boundary)."""
    recorder = _active
    if recorder is None:
        return []
    return recorder.drain()
