"""2-bit sequence encoding.

The related-work section of the paper notes that the Cas-OFFinder authors
"optimized the OpenCL kernels with a 2-bit sequence format, shared local
memory and atomic operations ... improving the performance of the
application by a factor of 30 approximately", and that "the current
OpenCL and SYCL kernels include these optimizations".  This module is
that encoding substrate: A/C/G/T pack four bases per byte, with a
separate bit-mask marking positions that were ``N`` (or any other
ambiguity code) in the original sequence, so decoding is lossless for the
alphabet the kernels care about.

An ablation benchmark (`benchmarks/test_micro_kernels.py`) measures the
memory-traffic effect of the encoding the way the Cas-OFFinder paper did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

# Base codes: A=0, C=1, G=2, T=3 (UCSC .2bit uses T=0..G=3; the choice is
# internal and documented here).
_CODE_OF = np.zeros(256, dtype=np.uint8)
_CODE_OF[ord("A")] = 0
_CODE_OF[ord("C")] = 1
_CODE_OF[ord("G")] = 2
_CODE_OF[ord("T")] = 3
_CODE_OF[ord("a")] = 0
_CODE_OF[ord("c")] = 1
_CODE_OF[ord("g")] = 2
_CODE_OF[ord("t")] = 3

_BASE_OF = np.frombuffer(b"ACGT", dtype=np.uint8)

_KNOWN = np.zeros(256, dtype=bool)
for _b in b"ACGTacgt":
    _KNOWN[_b] = True


@dataclass
class TwoBitSequence:
    """A 2-bit packed sequence plus an N-position bitmask."""

    packed: np.ndarray        # uint8, four bases per byte, LSB-first
    n_mask: np.ndarray        # uint8 bitset, 8 positions per byte
    length: int

    @property
    def nbytes(self) -> int:
        return self.packed.nbytes + self.n_mask.nbytes

    def __len__(self) -> int:
        return self.length


def encode(sequence: np.ndarray) -> TwoBitSequence:
    """Pack an ASCII uint8 sequence into 2-bit form.

    Positions holding anything other than A/C/G/T (case-insensitive) are
    encoded as base code 0 and flagged in the N mask.
    """
    sequence = np.asarray(sequence, dtype=np.uint8)
    n = sequence.size
    codes = _CODE_OF[sequence]
    unknown = ~_KNOWN[sequence]
    codes = np.where(unknown, 0, codes).astype(np.uint8)
    padded_len = (n + 3) // 4 * 4
    padded = np.zeros(padded_len, dtype=np.uint8)
    padded[:n] = codes
    quads = padded.reshape(-1, 4)
    packed = (quads[:, 0] | (quads[:, 1] << 2) | (quads[:, 2] << 4)
              | (quads[:, 3] << 6)).astype(np.uint8)
    mask_len = (n + 7) // 8 * 8
    mask_bits = np.zeros(mask_len, dtype=np.uint8)
    mask_bits[:n] = unknown
    n_mask = np.packbits(mask_bits, bitorder="little")
    return TwoBitSequence(packed=packed, n_mask=n_mask, length=n)


def decode(encoded: TwoBitSequence) -> np.ndarray:
    """Unpack a :class:`TwoBitSequence` back to ASCII uint8 bases.

    N-flagged positions decode to ``N``.
    """
    n = encoded.length
    packed = encoded.packed
    codes = np.empty(packed.size * 4, dtype=np.uint8)
    codes[0::4] = packed & 0x3
    codes[1::4] = (packed >> 2) & 0x3
    codes[2::4] = (packed >> 4) & 0x3
    codes[3::4] = (packed >> 6) & 0x3
    out = _BASE_OF[codes[:n]].copy()
    n_flags = np.unpackbits(encoded.n_mask, bitorder="little")[:n]
    out[n_flags.astype(bool)] = ord("N")
    return out


def base_at(encoded: TwoBitSequence, index: int) -> int:
    """Random access: the ASCII code of one base (N-aware)."""
    if not 0 <= index < encoded.length:
        raise IndexError(f"index {index} out of range "
                         f"[0, {encoded.length})")
    byte = encoded.n_mask[index >> 3]
    if (byte >> (index & 7)) & 1:
        return ord("N")
    code = (encoded.packed[index >> 2] >> ((index & 3) * 2)) & 0x3
    return int(_BASE_OF[code])


def compression_ratio(encoded: TwoBitSequence) -> float:
    """Bytes of ASCII per byte of encoded form (~3.6x for real genomes)."""
    return encoded.length / encoded.nbytes
