"""Genome assemblies and device-sized chunking.

Cas-OFFinder "divides the genome data into chunks that can fit the memory
of a heterogeneous device" (Section II.A); the chunk loop is the host side
of the whole pipeline.  :class:`Assembly` holds an ordered set of
chromosomes; :meth:`Assembly.chunks` yields device-sized pieces with an
overlap of ``pattern_length - 1`` bases so sites straddling a chunk
boundary are found exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .fasta import FastaRecord, iter_fasta, sequence_to_array, write_fasta


@dataclass
class Chromosome:
    """One chromosome: name plus uppercase sequence bytes."""

    name: str
    sequence: np.ndarray

    def __post_init__(self):
        self.sequence = sequence_to_array(self.sequence)
        # Kernels compare against uppercase bases only; normalize once.
        lower = (self.sequence >= ord("a")) & (self.sequence <= ord("z"))
        if lower.any():
            self.sequence = self.sequence.copy()
            self.sequence[lower] -= 32

    def __len__(self) -> int:
        return self.sequence.size


@dataclass
class Chunk:
    """A device-sized window of one chromosome.

    ``start`` is the 0-based chromosome coordinate of ``data[0]``;
    ``scan_length`` is the number of positions the finder kernel should
    treat as site starts (the trailing overlap region belongs to the next
    chunk).
    """

    chrom: str
    start: int
    data: np.ndarray
    scan_length: int

    def __len__(self) -> int:
        return self.data.size


class Assembly:
    """An ordered collection of chromosomes (one genome build)."""

    def __init__(self, name: str, chromosomes: Sequence[Chromosome]):
        self.name = name
        self.chromosomes: List[Chromosome] = list(chromosomes)
        seen: Dict[str, int] = {}
        for chrom in self.chromosomes:
            if chrom.name in seen:
                raise ValueError(
                    f"assembly {name!r}: duplicate chromosome "
                    f"{chrom.name!r}")
            seen[chrom.name] = 1
        self._by_name = {c.name: c for c in self.chromosomes}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_fasta(cls, path, name: Optional[str] = None) -> "Assembly":
        records = list(iter_fasta(path))
        chroms = [Chromosome(r.name, r.sequence) for r in records]
        return cls(name or str(path), chroms)

    @classmethod
    def from_dict(cls, name: str,
                  chromosomes: Dict[str, Union[str, bytes, np.ndarray]]
                  ) -> "Assembly":
        return cls(name, [Chromosome(n, s) for n, s in chromosomes.items()])

    def to_fasta(self, path, line_width: int = 60) -> None:
        records = [FastaRecord(c.name, c.sequence)
                   for c in self.chromosomes]
        write_fasta(records, path, line_width)

    # -- queries ----------------------------------------------------------

    def __getitem__(self, name: str) -> Chromosome:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Chromosome]:
        return iter(self.chromosomes)

    @property
    def total_length(self) -> int:
        return sum(len(c) for c in self.chromosomes)

    def effective_length(self) -> int:
        """Total bases excluding 'N' gap runs (searchable positions)."""
        total = 0
        for chrom in self.chromosomes:
            total += int((chrom.sequence != ord("N")).sum())
        return total

    def subset(self, names: Sequence[str]) -> "Assembly":
        """A new assembly holding only the named chromosomes.

        Order follows *this* assembly (not ``names``), and the name is
        kept, so per-chromosome search output — and therefore a
        partitioned backend's slice of a routed response — is identical
        to the full assembly's.  Unknown names raise ``ValueError``.
        """
        wanted = set(names)
        missing = wanted - set(self._by_name)
        if missing:
            raise ValueError(
                f"assembly {self.name!r} has no chromosome(s) "
                f"{sorted(missing)}")
        return Assembly(self.name, [c for c in self.chromosomes
                                    if c.name in wanted])

    def fetch(self, chrom: str, start: int, end: int) -> np.ndarray:
        """Sequence window ``[start, end)`` of one chromosome."""
        seq = self._by_name[chrom].sequence
        if not 0 <= start <= end <= seq.size:
            raise IndexError(
                f"window [{start}, {end}) outside {chrom!r} "
                f"of length {seq.size}")
        return seq[start:end]

    # -- chunking ---------------------------------------------------------

    def chunks(self, chunk_size: int, pattern_length: int
               ) -> Iterator[Chunk]:
        """Yield device-sized chunks with ``pattern_length - 1`` overlap.

        Every site start position of every chromosome appears in exactly
        one chunk's ``scan_length`` region, and each chunk carries enough
        trailing context for a full pattern at its last scanned position.
        """
        if pattern_length <= 0:
            raise ValueError(
                f"pattern length must be positive, got {pattern_length}")
        if chunk_size < 2 * pattern_length:
            raise ValueError(
                f"chunk size {chunk_size} too small for pattern length "
                f"{pattern_length} (need at least {2 * pattern_length})")
        overlap = pattern_length - 1
        for chrom in self.chromosomes:
            seq = chrom.sequence
            n = seq.size
            if n < pattern_length:
                continue
            start = 0
            while start < n - overlap:
                end = min(start + chunk_size, n)
                scan_end = min(end - overlap, n - overlap)
                scan_length = scan_end - start
                if scan_length <= 0:
                    break
                yield Chunk(chrom=chrom.name, start=start,
                            data=seq[start:end], scan_length=scan_length)
                start = scan_end

    def chunk_count(self, chunk_size: int, pattern_length: int) -> int:
        return sum(1 for _ in self.chunks(chunk_size, pattern_length))

    def __repr__(self) -> str:
        return (f"Assembly({self.name!r}, chromosomes="
                f"{len(self.chromosomes)}, bases={self.total_length})")
