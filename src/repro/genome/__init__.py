"""Genome substrate: FASTA I/O, assemblies + chunking, synthetic
hg19/hg38 stand-ins, and the 2-bit sequence encoding."""

from .assembly import Assembly, Chromosome, Chunk
from .fasta import (FastaError, FastaRecord, iter_fasta, parse_fasta_str,
                    read_fasta, sequence_to_array, write_fasta)
from .statistics import (AssemblyStats, GapRun, assembly_stats,
                         gap_fraction, gc_content, gc_windows, n_runs,
                         pam_density)
from .synthetic import (ALPHA_SATELLITE_MONOMER, HG38_SATELLITE_MONOMER,
                        GenomeProfile,
                        HG19_PROFILE, HG19_SIZES, HG38_PROFILE, HG38_SIZES,
                        PROFILES, synthesize_chromosome, synthetic_assembly)
from .twobit import (TwoBitSequence, base_at, compression_ratio, decode,
                     encode)

__all__ = [
    "ALPHA_SATELLITE_MONOMER", "Assembly", "AssemblyStats", "Chromosome",
    "Chunk", "GapRun", "assembly_stats", "gap_fraction", "gc_content",
    "gc_windows", "n_runs", "pam_density",
    "HG38_SATELLITE_MONOMER",
    "FastaError", "FastaRecord", "GenomeProfile", "HG19_PROFILE",
    "HG19_SIZES", "HG38_PROFILE", "HG38_SIZES", "PROFILES",
    "TwoBitSequence", "base_at", "compression_ratio", "decode", "encode",
    "iter_fasta", "parse_fasta_str", "read_fasta", "sequence_to_array",
    "synthesize_chromosome", "synthetic_assembly", "write_fasta",
]
