"""Synthetic hg19/hg38-like genome assemblies.

The paper evaluates on the UCSC hg19 and hg38 human assemblies (~3 Gbp
each), which we cannot ship or download.  This module generates seeded,
deterministic stand-ins whose *workload-relevant* structure follows the
real builds:

* chromosome count and relative sizes follow the real size tables
  (scaled by ``scale``);
* base composition is ~41 % GC with local GC variation;
* hg19-profile chromosomes carry larger assembly gaps (runs of ``N`` at
  centromeres/telomeres, ~7 % of bases), like the real hg19;
* hg38-profile chromosomes model what the GRCh38 update actually changed
  for this workload: most centromeric gaps are replaced by
  alpha-satellite-like repeat arrays (modeled on the 171-bp monomer),
  which are searchable sequence with *elevated candidate density* for
  NGG-type PAM scans.  This is why hg38 runs slower than hg19 in the
  paper's Table VIII despite being the "corrected" build.

The generator is pure numpy and deterministic for a given
``(profile, scale, seed)`` triple.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..observability import tracing
from .assembly import Assembly, Chromosome

# Real chromosome sizes (bp), UCSC hg19 and hg38, chr1..22, X, Y.
HG19_SIZES: Dict[str, int] = {
    "chr1": 249_250_621, "chr2": 243_199_373, "chr3": 198_022_430,
    "chr4": 191_154_276, "chr5": 180_915_260, "chr6": 171_115_067,
    "chr7": 159_138_663, "chr8": 146_364_022, "chr9": 141_213_431,
    "chr10": 135_534_747, "chr11": 135_006_516, "chr12": 133_851_895,
    "chr13": 115_169_878, "chr14": 107_349_540, "chr15": 102_531_392,
    "chr16": 90_354_753, "chr17": 81_195_210, "chr18": 78_077_248,
    "chr19": 59_128_983, "chr20": 63_025_520, "chr21": 48_129_895,
    "chr22": 51_304_566, "chrX": 155_270_560, "chrY": 59_373_566,
}

HG38_SIZES: Dict[str, int] = {
    "chr1": 248_956_422, "chr2": 242_193_529, "chr3": 198_295_559,
    "chr4": 190_214_555, "chr5": 181_538_259, "chr6": 170_805_979,
    "chr7": 159_345_973, "chr8": 145_138_636, "chr9": 138_394_717,
    "chr10": 133_797_422, "chr11": 135_086_622, "chr12": 133_275_309,
    "chr13": 114_364_328, "chr14": 107_043_718, "chr15": 101_991_189,
    "chr16": 90_338_345, "chr17": 83_257_441, "chr18": 80_373_285,
    "chr19": 58_617_616, "chr20": 64_444_167, "chr21": 46_709_983,
    "chr22": 50_818_468, "chrX": 156_040_895, "chrY": 57_227_415,
}

#: Alpha-satellite consensus-like 171-bp monomer.
ALPHA_SATELLITE_MONOMER = (
    "AATGGAAATATCTTCCTATAGAAACTAGACAGGATGGTTGGAAACACTCTTTTTGTAGAA"
    "TCTGCAAGTGGACATTTGGAGGGCTTTGAGGCCTATGGTGGAAAAGGAAATATCTTCACA"
    "TAAAAACTAGACAGAAGCCGGTTCAACTGGCCTTTGGAGGCCTTCGTTGGA"
)

#: GRCh38 replaced hg19's centromeric gaps with modeled satellite arrays
#: (alpha satellite, HSat2/3) and filled previously-gapped pericentric
#: repeats.  For an NRG-PAM scan that sequence is far denser in candidate
#: sites than random DNA.  This synthetic strand-symmetric consensus
#: (revcomp-closed under the NRG test) has ~0.44 candidate sites/bp
#: versus ~0.19 for random 41 %-GC sequence, standing in for the PAM-dense
#: repeat classes hg38 added.
HG38_SATELLITE_MONOMER = "AGGAGGCCT"


@dataclass(frozen=True)
class GenomeProfile:
    """Parameters controlling synthetic assembly structure."""

    name: str
    sizes: Dict[str, int]
    gc_content: float
    #: Fraction of each chromosome that is 'N' gap.
    gap_fraction: float
    #: Fraction of each chromosome that is satellite repeat array.
    satellite_fraction: float
    #: Monomer the satellite arrays tile.
    satellite_monomer: str = ALPHA_SATELLITE_MONOMER
    #: Telomere gap length as a fraction of chromosome length.
    telomere_fraction: float = 0.002


HG19_PROFILE = GenomeProfile(
    name="hg19", sizes=HG19_SIZES, gc_content=0.41,
    gap_fraction=0.10, satellite_fraction=0.0)

HG38_PROFILE = GenomeProfile(
    name="hg38", sizes=HG38_SIZES, gc_content=0.41,
    gap_fraction=0.01, satellite_fraction=0.12,
    satellite_monomer=HG38_SATELLITE_MONOMER)

PROFILES: Dict[str, GenomeProfile] = {
    "hg19": HG19_PROFILE,
    "hg38": HG38_PROFILE,
}

_BASES = np.frombuffer(b"ACGT", dtype=np.uint8)
_N = ord("N")


def _random_bases(rng: np.random.Generator, n: int,
                  gc_content: float) -> np.ndarray:
    """Random A/C/G/T with the requested GC fraction."""
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    return rng.choice(_BASES, size=n, p=[at, gc, gc, at])


def _satellite_array(rng: np.random.Generator, n: int,
                     monomer_text: str) -> np.ndarray:
    """A satellite array: tandem monomers with ~2 % divergence."""
    monomer = np.frombuffer(monomer_text.encode("ascii"), dtype=np.uint8)
    reps = n // monomer.size + 1
    arr = np.tile(monomer, reps)[:n].copy()
    n_mut = max(1, int(0.02 * n))
    sites = rng.integers(0, n, size=n_mut)
    arr[sites] = rng.choice(_BASES, size=n_mut)
    return arr


def synthesize_chromosome(name: str, length: int,
                          profile: GenomeProfile,
                          rng: np.random.Generator) -> Chromosome:
    """Build one chromosome: telomeres, arms, centromere gap/satellite."""
    if length < 1000:
        raise ValueError(f"chromosome length {length} too small to "
                         "synthesize structure")
    seq = np.empty(length, dtype=np.uint8)
    telomere = max(10, int(profile.telomere_fraction * length))
    seq[:telomere] = _N
    seq[length - telomere:] = _N
    gap_len = int(profile.gap_fraction * length)
    sat_len = int(profile.satellite_fraction * length)
    centro_len = gap_len + sat_len
    centro_start = length // 2 - centro_len // 2
    # Arms: random sequence with mild GC wobble per block.
    arm_regions = [(telomere, centro_start),
                   (centro_start + centro_len, length - telomere)]
    for start, end in arm_regions:
        pos = start
        while pos < end:
            block = min(1 << 16, end - pos)
            gc = profile.gc_content + rng.normal(0.0, 0.03)
            gc = min(max(gc, 0.25), 0.60)
            seq[pos:pos + block] = _random_bases(rng, block, gc)
            pos += block
    # Centromere: gap run then satellite array (hg38 keeps mostly
    # satellite; hg19 is mostly gap).
    seq[centro_start:centro_start + gap_len] = _N
    if sat_len:
        sat_start = centro_start + gap_len
        seq[sat_start:sat_start + sat_len] = _satellite_array(
            rng, sat_len, profile.satellite_monomer)
    return Chromosome(name, seq)


# ---------------------------------------------------------------------------
# On-disk assembly cache
# ---------------------------------------------------------------------------

#: Bump when the generator changes in a way that alters output, so stale
#: cache entries are never reused.
CACHE_FORMAT_VERSION = 1

#: Environment switches: ``REPRO_GENOME_CACHE=off`` disables the cache,
#: ``REPRO_GENOME_CACHE_DIR`` overrides the cache directory.
CACHE_ENV = "REPRO_GENOME_CACHE"
CACHE_DIR_ENV = "REPRO_GENOME_CACHE_DIR"

_DISABLE_VALUES = ("off", "0", "no", "false")


def genome_cache_enabled() -> bool:
    """Whether the on-disk cache is active (env switch honoured)."""
    return os.environ.get(CACHE_ENV, "").lower() not in _DISABLE_VALUES


def genome_cache_dir() -> str:
    """The cache directory (env override honoured; not created here)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache",
                        "repro-genomes")


def _cache_path(cache_dir: str, profile: str, scale: float, seed: int,
                names: Sequence[str]) -> str:
    key = (f"v{CACHE_FORMAT_VERSION}|{profile}|{scale!r}|{seed}|"
           + ",".join(names))
    digest = hashlib.sha256(key.encode("ascii")).hexdigest()[:16]
    return os.path.join(cache_dir,
                        f"{profile}-s{scale}-r{seed}-{digest}.npz")


def _cache_load(path: str, names: Sequence[str],
                expected_lengths: Dict[str, int]
                ) -> Optional[List[Chromosome]]:
    """Load a cache entry, validating shape before trusting it.

    A cache file is shared, best-effort state: it may have been written
    by a different generator version, truncated mid-write, or clobbered
    by another tool.  Any entry whose arrays are not 1-D ``uint8`` of
    the expected per-chromosome length is rejected wholesale (returns
    None → regenerate) rather than poisoning every downstream search.
    """
    try:
        with np.load(path) as archive:
            chroms = []
            for name in names:
                if name not in archive.files:
                    return None  # stale entry from an older key/subset
                array = archive[name]
                if (array.dtype != np.uint8 or array.ndim != 1
                        or array.size != expected_lengths[name]):
                    return None
                chroms.append(Chromosome(name, array))
            return chroms
    except Exception:
        return None  # missing or corrupt entry; regenerate


def _cache_store(path: str, chroms: Sequence[Chromosome]) -> None:
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # Suffix must stay ".npz" or np.savez silently writes elsewhere.
        fd, tmp = tempfile.mkstemp(suffix=".tmp.npz",
                                   dir=os.path.dirname(path))
        os.close(fd)
        try:
            np.savez(tmp, **{c.name: c.sequence for c in chroms})
            os.replace(tmp, path)  # atomic vs concurrent writers
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    except OSError:
        pass  # cache is best-effort; generation already succeeded


def synthetic_assembly(profile: str = "hg19", scale: float = 0.001,
                       seed: int = 42,
                       chromosomes: Optional[Sequence[str]] = None,
                       cache: Optional[bool] = None
                       ) -> Assembly:
    """Generate a scaled synthetic assembly.

    Parameters
    ----------
    profile:
        ``"hg19"`` or ``"hg38"``.
    scale:
        Fraction of real chromosome sizes to synthesize (default 0.001,
        i.e. a ~3.1 Mbp genome; use larger scales for benchmarking).
    seed:
        RNG seed.  The same seed yields base-identical arms for both
        profiles where their structure overlaps, isolating the structural
        differences between builds.
    chromosomes:
        Optional subset of chromosome names to generate.
    cache:
        Reuse/populate the on-disk cache keyed by
        ``(profile, scale, seed, chromosomes)``.  ``None`` (default)
        defers to the ``REPRO_GENOME_CACHE`` environment switch; the
        cache directory honours ``REPRO_GENOME_CACHE_DIR``.
    """
    try:
        prof = PROFILES[profile]
    except KeyError:
        raise KeyError(f"unknown profile {profile!r}; "
                       f"choose from {sorted(PROFILES)}") from None
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    names = list(prof.sizes) if chromosomes is None else list(chromosomes)
    use_cache = genome_cache_enabled() if cache is None else cache
    assembly_name = f"{profile}-synthetic-{scale}"
    expected_lengths: Dict[str, int] = {}
    for name in names:
        try:
            real_size = prof.sizes[name]
        except KeyError:
            raise KeyError(f"profile {profile!r} has no chromosome "
                           f"{name!r}") from None
        expected_lengths[name] = max(1000, int(real_size * scale))
    path = None
    if use_cache:
        path = _cache_path(genome_cache_dir(), profile, scale, seed,
                           names)
        cached = _cache_load(path, names, expected_lengths)
        tracing.instant("genome_cache", cat="cache", profile=profile,
                        scale=scale, hit=cached is not None)
        if cached is not None:
            return Assembly(assembly_name, cached)
    chroms: List[Chromosome] = []
    for name in names:
        # Independent stream per chromosome so subsets are reproducible
        # (crc32 rather than hash(): str hashing is salted per process).
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, zlib.crc32(name.encode("ascii"))]))
        chroms.append(synthesize_chromosome(name, expected_lengths[name],
                                            prof, rng))
    if use_cache and path is not None:
        _cache_store(path, chroms)
    return Assembly(assembly_name, chroms)
