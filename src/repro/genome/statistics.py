"""Sequence statistics used to validate synthetic genomes.

These are the measurements behind the synthetic-assembly design choices
(DESIGN.md §2): GC content and its local variation, assembly-gap (``N``
run) structure, and PAM-site density.  They run over any
:class:`~repro.genome.assembly.Assembly`, so the same code validates the
stand-ins and would characterize real FASTA data if present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from ..core.patterns import MASK_TABLE, compile_pattern
from .assembly import Assembly, Chromosome
from .fasta import sequence_to_array

_GC = np.frombuffer(b"GC", dtype=np.uint8)
_ACGT = np.frombuffer(b"ACGT", dtype=np.uint8)
_N = ord("N")


def gc_content(sequence: Union[np.ndarray, str, bytes]) -> float:
    """GC fraction over A/C/G/T bases (gaps excluded)."""
    arr = sequence_to_array(sequence)
    acgt = arr[np.isin(arr, _ACGT)]
    if acgt.size == 0:
        return 0.0
    return float(np.isin(acgt, _GC).mean())


def gc_windows(sequence: Union[np.ndarray, str, bytes],
               window: int = 10_000) -> np.ndarray:
    """Per-window GC fractions (windows with no A/C/G/T report NaN)."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    arr = sequence_to_array(sequence)
    out: List[float] = []
    for start in range(0, arr.size, window):
        block = arr[start:start + window]
        acgt = block[np.isin(block, _ACGT)]
        out.append(float(np.isin(acgt, _GC).mean())
                   if acgt.size else float("nan"))
    return np.array(out)


@dataclass(frozen=True)
class GapRun:
    """One maximal run of ``N`` bases."""

    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length


def n_runs(sequence: Union[np.ndarray, str, bytes],
           min_length: int = 1) -> List[GapRun]:
    """Maximal runs of ``N`` of at least ``min_length`` bases."""
    arr = sequence_to_array(sequence)
    is_n = (arr == _N).astype(np.int8)
    if not is_n.any():
        return []
    boundaries = np.diff(np.concatenate(([0], is_n, [0])))
    starts = np.flatnonzero(boundaries == 1)
    ends = np.flatnonzero(boundaries == -1)
    return [GapRun(int(s), int(e - s))
            for s, e in zip(starts, ends) if e - s >= min_length]


def gap_fraction(sequence: Union[np.ndarray, str, bytes]) -> float:
    arr = sequence_to_array(sequence)
    if arr.size == 0:
        return 0.0
    return float((arr == _N).mean())


def pam_density(sequence: Union[np.ndarray, str, bytes],
                pattern: str = "NNNNNNNNNNNNNNNNNNNNNRG") -> float:
    """Fraction of positions that are PAM-pattern candidates (either
    strand), the quantity that drives comparer workload."""
    arr = sequence_to_array(sequence)
    compiled = compile_pattern(pattern)
    plen = compiled.plen
    if arr.size < plen:
        return 0.0
    positions = np.arange(arr.size - plen + 1, dtype=np.int64)
    selected = np.zeros(positions.size, dtype=bool)
    for offset in (0, plen):
        checked = compiled.comp_index[offset:offset + plen]
        checked = checked[checked >= 0].astype(np.int64)
        if checked.size == 0:
            selected[:] = True
            break
        gmask = MASK_TABLE[arr[positions[:, None] + checked[None, :]]]
        pmask = MASK_TABLE[compiled.comp[checked + offset]]
        selected |= (((gmask & pmask[None, :]) != 0)
                     & (gmask != 15)).all(axis=1)
    return float(selected.mean())


@dataclass(frozen=True)
class AssemblyStats:
    """Summary statistics of one assembly."""

    name: str
    total_length: int
    gap_fraction: float
    gc_content: float
    pam_density: float
    largest_gap: int
    chromosome_count: int


def assembly_stats(assembly: Assembly,
                   pattern: str = "NNNNNNNNNNNNNNNNNNNNNRG"
                   ) -> AssemblyStats:
    """Whole-assembly statistics (the numbers DESIGN.md §2 quotes)."""
    total = assembly.total_length
    gaps = 0
    gc_num = 0
    gc_den = 0
    largest = 0
    density_num = 0.0
    density_den = 0
    for chrom in assembly:
        arr = chrom.sequence
        gaps += int((arr == _N).sum())
        acgt = arr[np.isin(arr, _ACGT)]
        gc_num += int(np.isin(acgt, _GC).sum())
        gc_den += acgt.size
        runs = n_runs(arr)
        if runs:
            largest = max(largest, max(run.length for run in runs))
        positions = max(0, arr.size - len(pattern) + 1)
        if positions:
            density_num += pam_density(arr, pattern) * positions
            density_den += positions
    return AssemblyStats(
        name=assembly.name,
        total_length=total,
        gap_fraction=gaps / total if total else 0.0,
        gc_content=gc_num / gc_den if gc_den else 0.0,
        pam_density=density_num / density_den if density_den else 0.0,
        largest_gap=largest,
        chromosome_count=len(assembly.chromosomes))
