"""FASTA reading and writing.

Cas-OFFinder's host program "reads genome sequence data in single- or
multi-sequence data format [and] parses the data files with an
open-source parser library" (Section II.A).  This module is that parser
substrate: a from-scratch FASTA reader/writer supporting multi-record
files, arbitrary line wrapping, comments, gzip-compressed input and
streaming iteration, with sequences materialized as numpy ``uint8``
arrays of ASCII codes (the representation every kernel consumes).
"""

from __future__ import annotations

import gzip
import io
import os
import zlib
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple, Union

import numpy as np

PathLike = Union[str, os.PathLike]


class FastaError(ValueError):
    """Raised for malformed FASTA input."""


@dataclass
class FastaRecord:
    """One FASTA record: ``>name description`` plus its sequence bytes."""

    name: str
    sequence: np.ndarray            # uint8 ASCII codes
    description: str = ""

    def __post_init__(self):
        self.sequence = np.asarray(self.sequence, dtype=np.uint8)

    def __len__(self) -> int:
        return self.sequence.size

    def decode(self) -> str:
        """The sequence as a Python string."""
        return self.sequence.tobytes().decode("ascii")

    def upper(self) -> "FastaRecord":
        """Return a copy with soft-masked (lowercase) bases upper-cased."""
        return FastaRecord(self.name, _to_upper(self.sequence),
                           self.description)


def _to_upper(seq: np.ndarray) -> np.ndarray:
    out = seq.copy()
    lower = (out >= ord("a")) & (out <= ord("z"))
    out[lower] -= 32
    return out


def sequence_to_array(sequence: Union[str, bytes, np.ndarray]) -> np.ndarray:
    """Convert a sequence in any accepted form to a uint8 ASCII array."""
    if isinstance(sequence, np.ndarray):
        return np.asarray(sequence, dtype=np.uint8)
    if isinstance(sequence, str):
        sequence = sequence.encode("ascii")
    return np.frombuffer(sequence, dtype=np.uint8).copy()


def _open_text(path: PathLike) -> io.TextIOBase:
    path = os.fspath(path)
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="ascii")
    return open(path, "r", encoding="ascii")


def iter_fasta(source: Union[PathLike, io.TextIOBase]
               ) -> Iterator[FastaRecord]:
    """Stream records from a FASTA file, path or open text handle.

    Accepts ``;`` comment lines (original FASTA dialect) and blank lines.
    Raises :class:`FastaError` on sequence data before the first header,
    on headers with empty names, on records with no sequence lines, and
    on truncated or corrupt (e.g. mid-member gzip EOF) input — always
    naming the record being read, never leaking a bare ``EOFError`` or
    yielding a silently empty record.
    """
    if isinstance(source, (str, os.PathLike)):
        with _open_text(source) as handle:
            yield from iter_fasta(handle)
            return
    name = None
    description = ""
    parts: List[bytes] = []

    def flush() -> FastaRecord:
        if not parts:
            raise FastaError(
                f"FASTA record {name!r} has no sequence lines")
        return FastaRecord(name, _concat(parts), description)

    iterator = iter(source)
    lineno = 0
    while True:
        try:
            line = next(iterator)
        except StopIteration:
            break
        except (EOFError, gzip.BadGzipFile, zlib.error,
                OSError) as exc:
            where = (f"while reading record {name!r}"
                     if name is not None else "before the first record")
            raise FastaError(
                f"truncated or corrupt FASTA input {where}: "
                f"{exc}") from exc
        except UnicodeDecodeError as exc:
            where = (f"in record {name!r}" if name is not None
                     else "before the first record")
            raise FastaError(
                f"undecodable FASTA input {where}: {exc}") from exc
        lineno += 1
        line = line.rstrip("\r\n")
        if not line or line.startswith(";"):
            continue
        if line.startswith(">"):
            if name is not None:
                yield flush()
            header = line[1:].strip()
            if not header:
                raise FastaError(f"line {lineno}: empty FASTA header")
            name, _, description = header.partition(" ")
            parts = []
        else:
            if name is None:
                raise FastaError(
                    f"line {lineno}: sequence data before first '>' header")
            cleaned = line.replace(" ", "").replace("\t", "")
            if not cleaned.isascii():
                raise FastaError(f"line {lineno}: non-ASCII sequence data")
            parts.append(cleaned.encode("ascii"))
    if name is not None:
        yield flush()


def _concat(parts: List[bytes]) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=np.uint8)
    return np.frombuffer(b"".join(parts), dtype=np.uint8).copy()


def read_fasta(source: Union[PathLike, io.TextIOBase]) -> List[FastaRecord]:
    """Read all records of a FASTA file into memory."""
    return list(iter_fasta(source))


def parse_fasta_str(text: str) -> List[FastaRecord]:
    """Parse FASTA records from an in-memory string."""
    return read_fasta(io.StringIO(text))


def write_fasta(records: List[FastaRecord],
                destination: Union[PathLike, io.TextIOBase],
                line_width: int = 60) -> None:
    """Write records to a FASTA file, wrapping sequence lines."""
    if line_width <= 0:
        raise ValueError(f"line width must be positive, got {line_width}")
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="ascii") as handle:
            write_fasta(records, handle, line_width)
            return
    for record in records:
        header = record.name
        if record.description:
            header = f"{header} {record.description}"
        destination.write(f">{header}\n")
        data = record.sequence.tobytes().decode("ascii")
        for start in range(0, len(data), line_width):
            destination.write(data[start:start + line_width] + "\n")
