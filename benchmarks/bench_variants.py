"""Variant-search benchmark: diff-layer overlay vs full re-index.

Measures the payoff of the variant tentpole's central claim: a
haplotype differs from the reference by a handful of bases, so
re-scanning and re-packing only the *touched* chunks — and riding the
resident reference index plus those patch entries through ONE batched
comparer pass — beats the obvious implementation, which splices each
haplotype into a complete genome, rebuilds a full
:class:`~repro.service.GenomeSiteIndex` per haplotype, and diffs the
query results.

* ``naive``: per haplotype, eagerly splice every chromosome, run
  ``GenomeSiteIndex.build`` over the spliced assembly, query it, and
  diff projected hits against the reference hits.
* ``overlay``: one :func:`repro.variants.search_variants` call for all
  K haplotypes together.

Both sides produce the same gained/lost event set (checked, or the
benchmark aborts), and both record ``comparer_stats`` deltas so the
report *proves* the launch structure: the overlay run shows exactly
one comparer batch scanning ``reference_chunks + patched_chunks``
entries; the naive run pays a full finder re-scan per haplotype plus
K+1 comparer batches.  ``host.cpus`` is recorded so single-core
containers read honestly.  The report lands in
``BENCH_VARIANTS.json``.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_variants.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.core.config import Query
from repro.genome.assembly import Assembly, Chromosome
from repro.genome.synthetic import synthetic_assembly
from repro.service import GenomeSiteIndex
from repro.variants import (EVENT_FIELDS, HaplotypeOverlay,
                            decode_haplotypes, search_variants)

PATTERN = "NNNNNNNNNNNNNNNNNNNNNRG"


def _random_haplotypes(assembly, count: int, variants_per: int,
                       seed: int):
    """Deterministic SNV/indel mixes drawn from the assembly's bases."""
    rng = np.random.default_rng(seed)
    rows = []
    for hap_i in range(count):
        variants = []
        for chrom in assembly.chromosomes:
            seq = chrom.sequence
            positions = np.sort(rng.choice(
                len(seq) - 64, size=variants_per, replace=False))
            cursor = -10
            for vi, position in enumerate(positions):
                position = int(position)
                if position < cursor + 8:
                    continue
                kind = ["snv", "del", "ins"][(hap_i + vi) % 3]
                if kind == "snv":
                    ref = seq[position:position + 1].tobytes() \
                        .decode("ascii")
                    alt = "G" if ref != "G" else "A"
                elif kind == "del":
                    ref = seq[position:position + 3].tobytes() \
                        .decode("ascii")
                    alt = ref[0] if ref[0] != "N" else "A"
                else:
                    ref = seq[position:position + 1].tobytes() \
                        .decode("ascii")
                    alt = ref + "ACG" if ref != "N" else "A"
                variants.append([chrom.name, position, ref, alt])
                cursor = position + len(ref)
        rows.append({"name": f"hap{hap_i}", "variants": variants})
    return decode_haplotypes(rows)


def _naive_events(index, assembly, queries, haplotypes):
    """Full-splice baseline: K complete re-indexes, then project+diff."""
    ref_hits = index.query_batch(list(queries))
    keys = set()
    for haplotype in haplotypes:
        by_chrom = {}
        for variant in haplotype.variants:
            by_chrom.setdefault(variant.chrom, []).append(variant)
        chroms = []
        overlays = {}
        for chromosome in assembly.chromosomes:
            overlay = HaplotypeOverlay(
                chromosome.name, chromosome.sequence,
                by_chrom.get(chromosome.name, []))
            overlays[chromosome.name] = overlay
            chroms.append(Chromosome(
                chromosome.name,
                overlay.fetch(0, overlay.length).copy()))
        hap_index = GenomeSiteIndex.build(
            Assembly("naive-" + haplotype.name, chroms), index.pattern,
            chunk_size=index.chunk_size)
        hap_hits = hap_index.query_batch(list(queries))
        for chrom, overlay in overlays.items():
            if not overlay.variants:
                continue
            for qi, query in enumerate(queries):
                ref_keys = {(h.position, h.strand, h.site,
                             h.mismatches)
                            for h in ref_hits[qi] if h.chrom == chrom}
                projected = {(overlay.map_hap_to_ref(h.position),
                              h.strand, h.site, h.mismatches)
                             for h in hap_hits[qi]
                             if h.chrom == chrom}
                for key in projected - ref_keys:
                    keys.add((haplotype.name, "gained",
                              query.sequence, chrom) + key)
                for key in ref_keys - projected:
                    keys.add((haplotype.name, "lost",
                              query.sequence, chrom) + key)
    return keys


def _overlay_keys(result):
    idx = {name: i for i, name in enumerate(EVENT_FIELDS)}
    return {(row[idx["haplotype"]], row[idx["change"]],
             row[idx["query"]], row[idx["chrom"]],
             row[idx["position"]], row[idx["strand"]],
             row[idx["site"]], row[idx["mismatches"]])
            for row in result.events}


def run_bench(scale: float, chunk_size: int, haplotype_count: int,
              variants_per: int, mismatches: int,
              repeats: int) -> dict:
    assembly = synthetic_assembly("hg19", scale=scale, seed=42)
    build_began = time.perf_counter()
    index = GenomeSiteIndex.build(assembly, PATTERN,
                                  chunk_size=chunk_size)
    build_s = time.perf_counter() - build_began

    queries = [Query("N" * 23, 0),
               Query("GACGTCAAGGTTCCATTGCACNN", mismatches)]
    haplotypes = _random_haplotypes(assembly, haplotype_count,
                                    variants_per, seed=7)
    total_variants = sum(len(h.variants) for h in haplotypes)

    # Naive: full splice + re-index + query per haplotype, every run.
    before = index.comparer_stats()
    began = time.perf_counter()
    for _ in range(repeats):
        naive_keys = _naive_events(index, assembly, queries,
                                   haplotypes)
    naive_s = (time.perf_counter() - began) / repeats
    naive_ref_batches = (index.comparer_stats()["batches"]
                         - before["batches"]) // repeats

    # Overlay: one search_variants call covers all K haplotypes.
    before = index.comparer_stats()
    began = time.perf_counter()
    for _ in range(repeats):
        result = search_variants(index, queries, haplotypes)
    overlay_s = (time.perf_counter() - began) / repeats
    after = index.comparer_stats()
    overlay_batches = (after["batches"] - before["batches"]) // repeats
    overlay_scanned = (after["entries_scanned"]
                       - before["entries_scanned"]) // repeats

    if _overlay_keys(result) != naive_keys:
        raise SystemExit("benchmark invariant violated: overlay and "
                         "naive full-splice event sets diverged")
    return {
        "host": {"cpus": os.cpu_count()},
        "workload": {
            "profile": "hg19", "scale": scale, "seed": 42,
            "pattern": PATTERN, "chunk_size": chunk_size,
            "haplotypes": haplotype_count,
            "variants_total": total_variants,
            "queries": len(queries), "mismatches": mismatches,
            "chunks": index.chunk_count, "sites": index.site_count,
            "index_build_s": build_s, "repeats": repeats,
            "events": len(result.events),
        },
        "naive": {
            "wall_s": naive_s,
            "index_builds_per_run": haplotype_count,
            # The naive side's comparer batches against the *reference*
            # index only; its K rebuilt indexes pay their own scans.
            "reference_comparer_batches": naive_ref_batches,
        },
        "overlay": {
            "wall_s": overlay_s,
            "comparer_batches": overlay_batches,
            "entries_scanned": overlay_scanned,
            "reference_chunks": result.reference_chunks,
            "patched_chunks": result.patched_chunks,
        },
        "events_identical": True,
        "speedup_overlay": (naive_s / overlay_s
                            if overlay_s > 0 else None),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.0002,
                        help="synthetic hg19 scale (~620 kbp)")
    parser.add_argument("--chunk-size", type=int, default=1 << 16,
                        help="index chunk size in bases")
    parser.add_argument("--haplotypes", type=int, default=4,
                        help="haplotype diff layers per search")
    parser.add_argument("--variants-per", type=int, default=3,
                        help="variants drawn per chromosome per "
                             "haplotype")
    parser.add_argument("--mismatches", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurement repetitions (wall times are "
                             "per-repeat means)")
    parser.add_argument("-o", "--output",
                        default=os.path.join(os.path.dirname(__file__),
                                             "..",
                                             "BENCH_VARIANTS.json"))
    args = parser.parse_args(argv)
    report = run_bench(scale=args.scale, chunk_size=args.chunk_size,
                       haplotype_count=args.haplotypes,
                       variants_per=args.variants_per,
                       mismatches=args.mismatches,
                       repeats=args.repeats)
    path = os.path.abspath(args.output)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    workload = report["workload"]
    naive = report["naive"]
    overlay = report["overlay"]
    print(f"{workload['haplotypes']} haplotypes, "
          f"{workload['variants_total']} variants, "
          f"{workload['events']} events over {workload['chunks']} "
          f"chunks ({workload['sites']} sites)")
    print(f"naive:   {naive['wall_s']*1000:8.1f} ms "
          f"({naive['index_builds_per_run']} full index rebuilds "
          f"per run)")
    print(f"overlay: {overlay['wall_s']*1000:8.1f} ms "
          f"({overlay['comparer_batches']} comparer batch scanning "
          f"{overlay['entries_scanned']} entries = "
          f"{overlay['reference_chunks']} reference + "
          f"{overlay['patched_chunks']} patches)")
    print(f"speedup: {report['speedup_overlay']:.2f}x")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
