"""Table VII: major specifications of the evaluation GPUs."""

from repro.analysis.reporting import format_table
from repro.devices.specs import TABLE7_HEADER, table7_rows


def test_table7_device_specs(benchmark):
    rows = benchmark(table7_rows)
    lookup = {row[0]: row for row in rows}
    assert lookup["RVII"][4] == 3840
    assert lookup["MI60"][1] == 32
    assert lookup["MI100"][6] == 1228.0
    print()
    print(format_table(TABLE7_HEADER, rows,
                       title="Table VII — GPU specifications"))
