"""Section IV.B's profiling claims: the comparer kernel accounts for
~98 % of total kernel time and 50-80 % of elapsed time.

Checked two ways: on the modeled full-genome runs (the paper's setting)
and on the measured wall times of the actual Python pipeline (where the
same hotspot structure must appear)."""

from repro.analysis.profiling import profile_launches, profile_modeled
from repro.core.config import example_request
from repro.core.pipeline import search
from repro.devices.specs import PAPER_GPUS


def test_hotspot_modeled(benchmark, measured_profiles):
    def compute():
        return {
            (name, dataset): profile_modeled(spec, workload)
            for dataset, workload in measured_profiles.items()
            for name, spec in PAPER_GPUS.items()}

    profiles = benchmark(compute)
    print()
    for (device, dataset), profile in sorted(profiles.items()):
        print(f"{device:6} {dataset}: comparer = "
              f"{profile.comparer_share_of_kernel:.1%} of kernel time, "
              f"{profile.comparer_share_of_elapsed:.1%} of elapsed")
        assert profile.comparer_share_of_kernel > 0.95
        assert 0.40 < profile.comparer_share_of_elapsed < 0.85


def test_hotspot_measured_wall_times(benchmark, bench_assembly):
    request = example_request()

    def run():
        return search(bench_assembly, request, chunk_size=1 << 19)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    profile = profile_launches(result.launches)
    share = profile.share_of_kernel_time("comparer")
    print(f"\nmeasured comparer share of kernel wall time: {share:.1%}")
    assert profile.hotspot().name == "comparer"
    assert share > 0.5
